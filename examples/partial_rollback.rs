//! Partial rollback on converging Heatdis — the paper's §VI.D.2 result:
//! "a nearly 2× speedup of recovery from just keeping the in-progress data
//! on surviving ranks".
//!
//! Runs the converging heat solver three ways — failure-free, full-rollback
//! recovery, and partial-rollback recovery — and compares iteration counts
//! and recompute time.
//!
//! Run with: `cargo run --release --example partial_rollback`

use std::sync::Arc;

use layered_resilience::apps::Heatdis;
use layered_resilience::cluster::{Cluster, ClusterConfig};
use layered_resilience::resilience::{run_experiment, ExperimentConfig, Strategy};
use layered_resilience::simmpi::FaultPlan;

fn main() {
    // Small grid (convergence is O(N²) Jacobi sweeps).
    let app = Heatdis::converging(2 * 8 * 32 * 16, 32, 8000).with_eps(0.2);
    let ccfg = ClusterConfig {
        nodes: 5, // 4 active + 1 spare
        ..ClusterConfig::default()
    };
    let cluster = Cluster::new(ccfg);

    let cfg = |strategy: Strategy| ExperimentConfig {
        backend: Default::default(),
        strategy,
        spares: 1,
        checkpoints: 6,
        max_relaunches: 4,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry: None,
    };

    let free = run_experiment(
        &cluster,
        &app,
        &cfg(Strategy::FenixKokkosResilience),
        Arc::new(FaultPlan::none()),
    );
    println!(
        "failure-free:      converged in {:>5} iterations, wall {:.3}s",
        free.iterations,
        free.wall.as_secs_f64()
    );

    let kill_at = free.iterations * 3 / 4;
    let full = run_experiment(
        &cluster,
        &app,
        &cfg(Strategy::FenixKokkosResilience),
        Arc::new(FaultPlan::kill_at(1, "iter", kill_at)),
    );
    println!(
        "full rollback:     converged in {:>5} iterations, wall {:.3}s, recompute {:.3}s (failure @ {kill_at})",
        full.iterations,
        full.wall.as_secs_f64(),
        full.breakdown.recompute.as_secs_f64()
    );

    let partial = run_experiment(
        &cluster,
        &app,
        &cfg(Strategy::PartialRollback),
        Arc::new(FaultPlan::kill_at(1, "iter", kill_at)),
    );
    println!(
        "partial rollback:  converged in {:>5} iterations, wall {:.3}s, recompute {:.3}s",
        partial.iterations,
        partial.wall.as_secs_f64(),
        partial.breakdown.recompute.as_secs_f64()
    );

    let full_extra = full.iterations.saturating_sub(free.iterations);
    let partial_extra = partial.iterations.saturating_sub(free.iterations);
    if partial_extra > 0 {
        println!(
            "\nextra iterations to recover: full {} vs partial {} ({:.2}× less work)",
            full_extra,
            partial_extra,
            full_extra as f64 / partial_extra as f64
        );
    } else {
        println!("\nextra iterations to recover: full {full_extra} vs partial {partial_extra}");
    }
}
