//! Heatdis under the full integrated stack (Fenix + Kokkos Resilience +
//! VeloC), with a mid-run rank failure — the paper's primary benchmark.
//!
//! Prints the paper-style cost breakdown for a failure-free run and a run
//! with one injected failure, for both the integrated system and the
//! relaunch-based baseline, so the Fenix savings in the "Other" category
//! are directly visible.
//!
//! Run with: `cargo run --release --example heatdis_resilient`

use std::sync::Arc;

use layered_resilience::apps::Heatdis;
use layered_resilience::cluster::{Cluster, ClusterConfig};
use layered_resilience::resilience::{run_experiment, ExperimentConfig, RunRecord, Strategy};
use layered_resilience::simmpi::FaultPlan;

fn print_record(tag: &str, rec: &RunRecord) {
    println!("── {tag}");
    for (name, secs) in rec.breakdown.rows() {
        if secs > 1e-6 {
            println!("   {name:<28} {secs:>9.4} s");
        }
    }
    println!(
        "   {:<28} {:>9.4} s   (relaunches: {}, repairs: {})",
        "TOTAL (wall)",
        rec.wall.as_secs_f64(),
        rec.relaunches,
        rec.repairs
    );
}

fn main() {
    let iterations = 60;
    let per_rank_mb = 4.0;
    let app = Heatdis::fixed((per_rank_mb * 1e6) as usize, 512, iterations);

    let cfg = |strategy: Strategy, spares: usize| ExperimentConfig {
        backend: Default::default(),
        strategy,
        spares,
        checkpoints: 6,
        max_relaunches: 4,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry: None,
    };

    println!("Heatdis: {per_rank_mb} MB/rank, {iterations} iterations, 6 checkpoints\n");

    for strategy in [
        Strategy::KokkosResilience,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
    ] {
        let (nodes, spares) = if strategy.uses_fenix() {
            (5, 1)
        } else {
            (4, 0)
        };
        let ccfg = ClusterConfig {
            nodes,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::new(ccfg);

        let free = run_experiment(
            &cluster,
            &app,
            &cfg(strategy, spares),
            Arc::new(FaultPlan::none()),
        );
        print_record(&format!("{strategy} — no failure"), &free);

        // Fail rank 2 at ~95% of the 4th checkpoint interval.
        let interval = iterations / 6;
        let kill_at = 4 * interval + (interval as f64 * 0.95) as u64;
        let failed = run_experiment(
            &cluster,
            &app,
            &cfg(strategy, spares),
            Arc::new(FaultPlan::kill_at(2, "iter", kill_at)),
        );
        print_record(
            &format!("{strategy} — one failure @ iter {kill_at}"),
            &failed,
        );
        println!(
            "   failure cost: {:+.4} s\n",
            failed.wall.as_secs_f64() - free.wall.as_secs_f64()
        );
    }
}
