//! The future-work single-initialization API (paper §VII.A), with the IMR
//! data backend: one `resilient_main` call replaces the separate Fenix and
//! Kokkos Resilience initializations of the quickstart example, and
//! checkpoints live purely in peer memory — no filesystem at all.
//!
//! Run with: `cargo run --example integrated_api`

use std::sync::Arc;

use layered_resilience::cluster::{Cluster, ClusterConfig, TimeScale};
use layered_resilience::fenix::ExhaustPolicy;
use layered_resilience::kokkos::View;
use layered_resilience::kokkos_resilience::CheckpointFilter;
use layered_resilience::resilience::{resilient_main, IntegratedBackend, IntegratedConfig};
use layered_resilience::simmpi::{FaultPlan, MpiResult, ReduceOp, Universe, UniverseConfig};

fn main() {
    let ccfg = ClusterConfig {
        nodes: 5, // 4 active + 1 spare
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::new(ccfg);

    // Kill rank 2 at iteration 13, after the v11 checkpoint.
    let plan = Arc::new(FaultPlan::kill_at(2, "iter", 13));

    let report = Universe::launch(
        &cluster,
        UniverseConfig::default(),
        plan,
        |ctx| -> MpiResult<()> {
            let field: View<f64> = View::new_1d("field", 4096);
            let cfg = IntegratedConfig {
                name: "demo".into(),
                spares: 1,
                filter: CheckpointFilter::EveryN(4),
                backend: IntegratedBackend::Imr { policy: None },
                aliases: vec![],
                on_exhaustion: ExhaustPolicy::Abort,
                partial_rollback: false,
            };
            let ctx = &*ctx;
            let summary = resilient_main(ctx, cfg, |scope| {
                let start = scope.latest_version("loop")?.map_or(0, |v| v + 1);
                println!(
                    "rank {} role {:?}: starting at iteration {start} (repairs so far: {})",
                    scope.comm().rank(),
                    scope.role(),
                    scope.repair_count()
                );
                for i in start..20 {
                    ctx.fault_point("iter", i)?;
                    scope.checkpoint("loop", i, || {
                        {
                            let mut f = field.write();
                            for x in f.iter_mut() {
                                *x = 0.9 * *x + 0.1 * (i as f64);
                            }
                        }
                        let norm = field.read()[0];
                        let _ = scope.comm().allreduce_scalar(norm, ReduceOp::Max)?;
                        Ok(())
                    })?;
                }
                Ok(())
            })?;
            if summary.executed_body {
                println!(
                    "rank {} finished: {} repair(s), no filesystem touched",
                    ctx.rank(),
                    summary.repairs
                );
            }
            Ok(())
        },
    );

    println!(
        "\nvictims: {:?}; PFS blobs written: {}",
        report.killed_ranks(),
        cluster.pfs().list("").len()
    );
    assert_eq!(
        cluster.pfs().list("demo").len(),
        0,
        "IMR backend keeps checkpoints out of the filesystem"
    );
}
