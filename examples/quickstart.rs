//! Quickstart: the paper's Figure 4 pattern on a toy iterative solver.
//!
//! Launches a simulated 4-rank MPI job plus one spare, wraps the iteration
//! loop in a Kokkos Resilience checkpoint region under Fenix process
//! recovery, kills rank 1 partway through, and shows the run completing
//! without a job restart.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use layered_resilience::cluster::{Cluster, ClusterConfig, TimeScale};
use layered_resilience::fenix::{self, ExhaustPolicy, FenixConfig, Role};
use layered_resilience::kokkos::View;
use layered_resilience::kokkos_resilience::{
    BackendKind, CheckpointFilter, Context, ContextConfig,
};
use layered_resilience::simmpi::{FaultPlan, MpiResult, ReduceOp, Universe, UniverseConfig};

fn main() {
    // A modeled 5-node cluster (4 active ranks + 1 spare).
    let cfg = ClusterConfig {
        nodes: 5,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::new(cfg);

    // Kill world rank 1 at iteration 13 — ~95% of the way between the
    // checkpoints at iterations 9 and 14, like the paper's failure setup.
    let plan = Arc::new(FaultPlan::kill_at(1, "iter", 13));

    let report = Universe::launch(
        &cluster,
        UniverseConfig::default(),
        plan,
        |ctx| -> MpiResult<()> {
            let fenix_cfg = FenixConfig {
                spares: 1,
                on_exhaustion: ExhaustPolicy::Abort,
            };
            // Application state outliving repairs (survivors keep it).
            let data: View<f64> = View::new_1d("solution", 1024);
            let kr: std::cell::RefCell<Option<Context>> = std::cell::RefCell::new(None);
            let ctx_ref = &*ctx;

            fenix::run(ctx_ref.world(), fenix_cfg, |_fx, comm, role| {
                // Figure 4: make_context on Initial, reset(res_comm) after.
                if kr.borrow().is_none() {
                    *kr.borrow_mut() = Some(Context::new(
                        ctx_ref.cluster(),
                        comm.clone(),
                        ContextConfig {
                            name: "quickstart".into(),
                            filter: CheckpointFilter::EveryN(5),
                            backend: BackendKind::VelocSingle,
                            aliases: vec![],
                        },
                    ));
                } else {
                    kr.borrow().as_ref().unwrap().reset(comm.clone());
                }
                let kr = kr.borrow();
                let kr = kr.as_ref().unwrap();
                println!(
                    "rank {} (world {}) entering as {:?}",
                    comm.rank(),
                    comm.my_global(),
                    role
                );

                let latest = kr.latest_version("loop")?;
                let start = latest.map_or(0, |v| v + 1);
                if role != Role::Initial {
                    println!(
                        "rank {} resuming from checkpoint v{:?} at iteration {start}",
                        comm.rank(),
                        latest
                    );
                }
                for i in start..20 {
                    ctx_ref.fault_point("iter", i)?;
                    kr.checkpoint("loop", i, || {
                        // The "work": relax toward the rank average.
                        {
                            let mut d = data.write();
                            for x in d.iter_mut() {
                                *x = 0.5 * *x + 0.5 * (i as f64 + comm.rank() as f64);
                            }
                        }
                        let sum = comm.allreduce_scalar(data.read()[0], ReduceOp::Sum)?;
                        let _ = sum;
                        Ok(())
                    })?;
                }
                kr.checkpoint_wait();
                Ok(())
            })
            .map(|summary| {
                if summary.executed_body {
                    println!(
                        "rank {} done: {} repair(s), final role {:?}",
                        ctx_ref.rank(),
                        summary.repairs,
                        summary.final_role
                    );
                }
            })
        },
    );

    let killed = report.killed_ranks();
    println!("\ninjected failures: ranks {killed:?}");
    println!(
        "job survived without relaunch: {}",
        !report.aborted && report.outcomes.iter().filter(|o| o.result.is_ok()).count() >= 4
    );
}
