//! Run the full §V.A strategy matrix on one Heatdis configuration and print
//! a side-by-side comparison — the repository's equivalent of the paper's
//! Figure 1 table brought to life.
//!
//! Run with: `cargo run --release --example strategy_matrix`

use std::sync::Arc;

use layered_resilience::apps::Heatdis;
use layered_resilience::cluster::{Cluster, ClusterConfig};
use layered_resilience::resilience::{run_experiment, ExperimentConfig, Strategy};
use layered_resilience::simmpi::FaultPlan;

fn main() {
    let iterations = 48;
    let app = Heatdis::fixed(8 * 1_000_000, 512, iterations);
    let kill_at = 37; // ~95% between checkpoints 4 and 5 (interval 8)

    println!(
        "Heatdis, 8 MB/rank, {iterations} iterations, 6 checkpoints, failure at iter {kill_at}\n"
    );
    println!(
        "{:<20} {:>10} {:>10} {:>9} {:>9} {:>11} {:>9}",
        "strategy", "no-fail s", "fail s", "cost s", "ckpt s", "relaunches", "repairs"
    );

    for strategy in [
        Strategy::Unprotected,
        Strategy::VelocOnly,
        Strategy::KokkosResilience,
        Strategy::FenixVeloc,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
    ] {
        let (nodes, spares) = if strategy.uses_fenix() {
            (5, 1)
        } else {
            (4, 0)
        };
        let ccfg = ClusterConfig {
            nodes,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::new(ccfg);
        let cfg = ExperimentConfig {
            backend: Default::default(),
            strategy,
            spares,
            checkpoints: 6,
            max_relaunches: 4,
            imr_policy: None,
            redundancy: None,
            fresh_storage: true,
            telemetry: None,
        };
        let free = run_experiment(&cluster, &app, &cfg, Arc::new(FaultPlan::none()));
        let failed = run_experiment(
            &cluster,
            &app,
            &cfg,
            Arc::new(FaultPlan::kill_at(2, "iter", kill_at)),
        );
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>9.3} {:>9.3} {:>11} {:>9}",
            strategy.label(),
            free.wall.as_secs_f64(),
            failed.wall.as_secs_f64(),
            failed.wall.as_secs_f64() - free.wall.as_secs_f64(),
            failed.breakdown.checkpoint_fn.as_secs_f64(),
            failed.relaunches,
            failed.repairs
        );
    }

    println!("\nreading guide (paper's qualitative results):");
    println!(
        " * relaunch strategies pay multi-second failure costs (teardown + restart + reinit);"
    );
    println!(" * Fenix strategies recover in place for a fraction of that;");
    println!(" * IMR's checkpoint function is cheap at small data and scales with size;");
    println!(" * checkpointing overhead itself is small next to recovery savings.");
}
