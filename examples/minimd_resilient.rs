//! MiniMD under the integrated framework — the paper's "more real-world
//! sized example of implementing resilience".
//!
//! Runs a weak-scaled Lennard-Jones simulation with the full Fenix + Kokkos
//! Resilience + VeloC stack, injects one failure, prints the Figure 6 phase
//! breakdown, and reports the Figure 7 view-classification statistics the
//! automatic capture produced.
//!
//! Run with: `cargo run --release --example minimd_resilient`

use std::sync::Arc;

use layered_resilience::apps::MiniMd;
use layered_resilience::cluster::{Cluster, ClusterConfig};
use layered_resilience::kokkos_resilience::{
    BackendKind, CheckpointFilter, Context, ContextConfig, ViewClass,
};
use layered_resilience::resilience::{
    run_experiment, Bookkeeper, ExperimentConfig, IterativeApp, Strategy,
};
use layered_resilience::simmpi::{FaultPlan, Profile, Universe, UniverseConfig};

fn main() {
    let app = MiniMd::new([3, 3, 3], 40);
    let cfg = ExperimentConfig {
        backend: Default::default(),
        strategy: Strategy::FenixKokkosResilience,
        spares: 1,
        checkpoints: 5,
        max_relaunches: 4,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry: None,
    };
    let ccfg = ClusterConfig {
        nodes: 5, // 4 active + 1 spare
        ..ClusterConfig::default()
    };
    let cluster = Cluster::new(ccfg);

    println!(
        "MiniMD: {} atoms/rank on 4 ranks + 1 spare, 40 steps, 5 checkpoints\n",
        app.atoms_per_rank()
    );

    let free = run_experiment(&cluster, &app, &cfg, Arc::new(FaultPlan::none()));
    println!("── failure-free run");
    for (name, secs) in free.breakdown.rows() {
        if secs > 1e-6 {
            println!("   {name:<28} {secs:>9.4} s");
        }
    }

    let failed = run_experiment(
        &cluster,
        &app,
        &cfg,
        Arc::new(FaultPlan::kill_at(2, "iter", 30)),
    );
    println!(
        "── with one failure at step 30 (repairs: {})",
        failed.repairs
    );
    for (name, secs) in failed.breakdown.rows() {
        if secs > 1e-6 {
            println!("   {name:<28} {secs:>9.4} s");
        }
    }
    println!(
        "   failure cost: {:+.4} s\n",
        failed.wall.as_secs_f64() - free.wall.as_secs_f64()
    );

    // Figure 7: what did automatic view detection find?
    let report = Universe::launch(
        &cluster,
        UniverseConfig::default(),
        Arc::new(FaultPlan::none()),
        |ctx| {
            if ctx.rank() != 0 {
                return Ok(());
            }
            let single = MiniMd::new([3, 3, 3], 1);
            let comm = ctx.world().clone();
            // A 1-rank sub-communicator for the standalone statistics pass.
            let solo = layered_resilience::simmpi::Comm::from_group(
                Arc::clone(ctx.router()),
                layered_resilience::simmpi::router::Router::derive_comm_id(0, 0x57A7),
                0,
                Arc::new(vec![0]),
                0,
            );
            let bk = Bookkeeper::new(Arc::new(Profile::new()));
            let mut st = single.state_for(&solo);
            let kr = Context::new(
                ctx.cluster(),
                solo.clone(),
                ContextConfig {
                    name: "fig7".into(),
                    filter: CheckpointFilter::Never,
                    backend: BackendKind::VelocSingle,
                    aliases: single.alias_labels(),
                },
            );
            use layered_resilience::resilience::RankApp;
            kr.checkpoint("loop", 0, || st.step(&solo, 0, &bk))?;
            let stats = kr.region_stats("loop").unwrap();
            println!("── view inventory (Figure 7 statistics)");
            for class in [
                ViewClass::Checkpointed,
                ViewClass::Alias,
                ViewClass::Skipped,
            ] {
                println!(
                    "   {class:?}: {:>2} views, {:>9} bytes ({:>5.1}% of total)",
                    stats.count(class),
                    stats.bytes(class),
                    100.0 * stats.fraction(class)
                );
            }
            println!("   total view objects: {}", stats.total_views());
            let _ = comm;
            Ok(())
        },
    );
    assert!(report.outcomes[0].result.is_ok());
}
