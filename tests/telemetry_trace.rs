//! Telemetry integration: a fault-injected Fenix + Kokkos-Resilience run
//! must leave a trace whose failure events appear in causal order
//! (inject → kill → detect → revoke → agree → repair → restart), and the
//! exporters must produce parseable JSONL and a well-formed Chrome
//! `trace_event` document from that same run.

use std::collections::HashMap;
use std::sync::Arc;

use layered_resilience::apps::Heatdis;
use layered_resilience::cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
use layered_resilience::resilience::{run_experiment, ExperimentConfig, Strategy};
use layered_resilience::simmpi::FaultPlan;
use layered_resilience::telemetry::{export, Json, Telemetry, TelemetryConfig, TraceSnapshot};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

/// One fault-injected Fenix/KR Heatdis run, traced. The kill at iteration 7
/// lands between checkpoints (interval 4 → versions at 3, 7, 11), so the
/// recovery must restore from storage rather than recompute from scratch.
fn traced_failure_run() -> TraceSnapshot {
    let tel = Telemetry::new(TelemetryConfig::default());
    let c = cluster(5); // 4 active + 1 spare
    let rec = run_experiment(
        &c,
        &Heatdis::fixed(2 * 8 * 16 * 8, 16, 12),
        &ExperimentConfig {
            strategy: Strategy::FenixKokkosResilience,
            spares: 1,
            checkpoints: 3,
            max_relaunches: 2,
            imr_policy: None,
            redundancy: None,
            fresh_storage: true,
            telemetry: Some(tel.clone()),
            backend: simmpi::Backend::default(),
        },
        Arc::new(FaultPlan::kill_at(1, "iter", 7)),
    );
    assert_eq!(rec.failures, 1, "the planned kill must have fired");
    tel.snapshot()
}

#[test]
fn fenix_failure_run_emits_causal_chain() {
    let snap = traced_failure_run();
    assert_eq!(snap.dropped, 0, "ring must not overflow on a small run");

    // The snapshot merge sorts by time: the JSONL file is chronological.
    for w in snap.events.windows(2) {
        assert!(w[0].t_ns <= w[1].t_ns, "snapshot must be time-sorted");
    }

    // Every link of the paper's failure chain, in causal order. Each later
    // kind's first occurrence is preceded (on some rank) by the earlier
    // kind, so first-occurrence timestamps must be non-decreasing.
    let chain = [
        "fault_injected",
        "rank_killed",
        "failure_detected",
        "revoke",
        "agree",
        "repair_begin",
        "repair_end",
        "restart_begin",
        "restart_end",
    ];
    let first = |kind: &str| {
        snap.first_ns(kind)
            .unwrap_or_else(|| panic!("trace has no `{kind}` event"))
    };
    for w in chain.windows(2) {
        assert!(
            first(w[0]) <= first(w[1]),
            "`{}` (t={}) must not come after `{}` (t={})",
            w[0],
            first(w[0]),
            w[1],
            first(w[1])
        );
    }

    // Recovery side effects: the spare took a role and the region restored.
    assert!(first("role_changed") >= first("repair_begin"));
    assert!(first("region_restore") >= first("repair_end"));
    // The run kept checkpointing before and after the failure.
    assert!(snap.of_kind("region_commit").len() >= 2);
}

#[test]
fn failure_run_jsonl_is_one_object_per_line_and_chronological() {
    let snap = traced_failure_run();
    let jsonl = export::to_jsonl(&snap);
    assert_eq!(jsonl.lines().count(), snap.events.len());
    let mut last_t = 0.0f64;
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each line must be a JSON object: {line}"
        );
        for key in ["\"t_ns\":", "\"rank\":", "\"layer\":", "\"kind\":"] {
            assert!(line.contains(key), "line missing {key}: {line}");
        }
        // Extract the leading t_ns number to confirm file-level ordering.
        let t: f64 = line
            .trim_start_matches("{\"t_ns\":")
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("t_ns must be first and numeric");
        assert!(t >= last_t, "JSONL must be chronological");
        last_t = t;
    }
}

/// Structural validation of the Chrome `trace_event` export: required keys
/// per phase type, one metadata record per rank track, and balanced `B`/`E`
/// span brackets on every track.
#[test]
fn failure_run_chrome_trace_is_well_formed() {
    fn get<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
        match v {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn str_of<'a>(v: &'a Json, key: &str) -> &'a str {
        match get(v, key) {
            Some(Json::Str(s)) => s,
            other => panic!("`{key}` must be a string, got {other:?}"),
        }
    }
    fn num_of(v: &Json, key: &str) -> f64 {
        match get(v, key) {
            Some(Json::Num(x)) => *x,
            other => panic!("`{key}` must be a number, got {other:?}"),
        }
    }

    let snap = traced_failure_run();
    let doc = export::to_chrome_trace(&snap);
    let events = match get(&doc, "traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("root must carry a traceEvents array, got {other:?}"),
    };
    assert!(!events.is_empty());

    let mut depth: HashMap<u64, i64> = HashMap::new();
    let mut tracks = 0usize;
    for e in events {
        let ph = str_of(e, "ph");
        let tid = num_of(e, "tid") as u64;
        num_of(e, "pid");
        match ph {
            "M" => {
                assert_eq!(str_of(e, "name"), "thread_name");
                tracks += 1;
            }
            "B" | "E" | "i" => {
                assert!(!str_of(e, "name").is_empty());
                assert!(num_of(e, "ts") >= 0.0);
                if ph == "B" {
                    *depth.entry(tid).or_insert(0) += 1;
                } else if ph == "E" {
                    let d = depth.entry(tid).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "track {tid}: E without matching B");
                }
            }
            other => panic!("unexpected phase type `{other}`"),
        }
    }
    assert!(tracks >= 5, "one metadata record per rank track");
    for (tid, d) in depth {
        assert_eq!(d, 0, "track {tid}: unbalanced span brackets");
    }
    // Round-trips through the serializer without losing the envelope.
    let text = doc.to_json();
    assert!(text.starts_with("{\"traceEvents\":["));
    assert!(text.ends_with('}'));
}
