//! Cross-crate integration tests through the umbrella crate: the full
//! stack assembled the way a downstream user would.

use std::sync::Arc;

use layered_resilience::apps::Heatdis;
use layered_resilience::cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
use layered_resilience::fenix::{self, ExhaustPolicy, FenixConfig, Role};
use layered_resilience::kokkos::View;
use layered_resilience::kokkos_resilience::{
    BackendKind, CheckpointFilter, Context, ContextConfig,
};
use layered_resilience::resilience::{run_experiment, ExperimentConfig, Strategy};
use layered_resilience::simmpi::{FaultPlan, MpiResult, ReduceOp, Universe, UniverseConfig};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

/// The Figure 4 pattern, hand-assembled (as in examples/quickstart.rs),
/// surviving two failures with two spares.
#[test]
fn figure4_pattern_survives_two_failures() {
    let c = cluster(6); // 4 active + 2 spares
    let plan = Arc::new(FaultPlan::kill_at(1, "iter", 7).and_kill(2, "iter", 13));
    let report = Universe::launch(
        &c,
        UniverseConfig::default(),
        plan,
        |ctx| -> MpiResult<()> {
            let data: View<f64> = View::new_1d("state", 256);
            let kr: std::cell::RefCell<Option<Context>> = std::cell::RefCell::new(None);
            let ctx = &*ctx;
            fenix::run(
                ctx.world(),
                FenixConfig {
                    spares: 2,
                    on_exhaustion: ExhaustPolicy::Abort,
                },
                |_fx, comm, role| {
                    if kr.borrow().is_none() {
                        *kr.borrow_mut() = Some(Context::new(
                            ctx.cluster(),
                            comm.clone(),
                            ContextConfig {
                                name: "fig4".into(),
                                filter: CheckpointFilter::EveryN(4),
                                backend: BackendKind::VelocSingle,
                                aliases: vec![],
                            },
                        ));
                    } else {
                        kr.borrow().as_ref().unwrap().reset(comm.clone());
                    }
                    let kr_ref = kr.borrow();
                    let kr = kr_ref.as_ref().unwrap();
                    let latest = kr.latest_version("loop")?;
                    let start = latest.map_or(0, |v| v + 1);
                    if role != Role::Initial {
                        assert!(latest.is_some(), "checkpoints must exist by the failures");
                    }
                    for i in start..20 {
                        ctx.fault_point("iter", i)?;
                        kr.checkpoint("loop", i, || {
                            data.write()[0] = i as f64;
                            let s = comm.allreduce_scalar(1u64, ReduceOp::Sum)?;
                            assert_eq!(s, 4, "resilient communicator keeps its size");
                            Ok(())
                        })?;
                    }
                    kr.checkpoint_wait();
                    Ok(())
                },
            )
            .map(|summary| {
                if summary.executed_body {
                    assert!(summary.repairs >= 1);
                }
            })
        },
    );
    let mut killed = report.killed_ranks();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 2]);
    for o in &report.outcomes {
        if !killed.contains(&o.rank) {
            assert!(o.result.is_ok(), "rank {}: {:?}", o.rank, o.result);
        }
    }
}

/// Spare exhaustion aborts the job cleanly (no hang), as Fenix's default
/// policy dictates.
#[test]
fn spare_exhaustion_aborts_cleanly() {
    let c = cluster(4);
    let plan = Arc::new(FaultPlan::kill_at(0, "iter", 3).and_kill(1, "iter", 6));
    let rec = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_experiment(
            &c,
            &Heatdis::fixed(2 * 8 * 16 * 8, 16, 12),
            &ExperimentConfig {
                backend: Default::default(),
                strategy: Strategy::FenixKokkosResilience,
                spares: 1, // one spare, two failures
                checkpoints: 3,
                max_relaunches: 2,
                imr_policy: None,
                redundancy: None,
                fresh_storage: true,
                telemetry: None,
            },
            plan,
        )
    }));
    // The driver panics on unrecoverable outcomes — the important property
    // is clean termination (the catch_unwind returning at all), not hanging.
    assert!(rec.is_err(), "exhaustion should surface as a hard failure");
}

/// The whole strategy matrix completes on a single shared cluster when
/// storage is wiped between experiments.
#[test]
fn strategy_matrix_shares_a_cluster() {
    let c = cluster(6);
    let app = Heatdis::fixed(2 * 8 * 32 * 8, 32, 18);
    let mut digests = Vec::new();
    for strategy in [
        Strategy::Unprotected,
        Strategy::VelocOnly,
        Strategy::KokkosResilience,
        Strategy::FenixVeloc,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
    ] {
        let rec = run_experiment(
            &c,
            &app,
            &ExperimentConfig {
                backend: Default::default(),
                strategy,
                spares: if strategy.uses_fenix() { 2 } else { 0 },
                checkpoints: 3,
                max_relaunches: 2,
                imr_policy: None,
                redundancy: None,
                fresh_storage: true,
                telemetry: None,
            },
            Arc::new(FaultPlan::none()),
        );
        digests.push((strategy, rec.digest));
    }
    // Fenix runs use 4 active ranks (6 - 2 spares); non-Fenix use 6. The
    // digests must agree within each group.
    let fenix: Vec<_> = digests
        .iter()
        .filter(|(s, _)| s.uses_fenix())
        .map(|(_, d)| *d)
        .collect();
    let plain: Vec<_> = digests
        .iter()
        .filter(|(s, _)| !s.uses_fenix())
        .map(|(_, d)| *d)
        .collect();
    assert!(fenix.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
    assert!(plain.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
}

/// Checkpoint storage persists across simulated relaunches on the same
/// cluster (the property relaunch-based recovery depends on).
#[test]
fn storage_survives_relaunch_but_not_node_failure() {
    let c = cluster(2);
    c.pfs()
        .write("persist/x", bytes::Bytes::from_static(b"pfs"));
    c.scratch()
        .write(0, "persist/x", bytes::Bytes::from_static(b"scratch"));

    // A full universe launch/teardown does not touch storage.
    let report = Universe::launch(
        &c,
        UniverseConfig::default(),
        Arc::new(FaultPlan::none()),
        |_ctx| Ok(()),
    );
    assert!(report.all_ok());
    assert!(c.pfs().exists("persist/x"));
    assert!(c.scratch().exists(0, "persist/x"));

    // A node failure purges that node's scratch only.
    let report = Universe::launch(
        &c,
        UniverseConfig::default(),
        Arc::new(FaultPlan::kill_at(0, "boom", 0)),
        |ctx| {
            ctx.fault_point("boom", 0)?;
            Ok(())
        },
    );
    assert_eq!(report.killed_ranks(), vec![0]);
    assert!(c.pfs().exists("persist/x"), "PFS survives node failure");
    assert!(
        !c.scratch().exists(0, "persist/x"),
        "scratch lost with node"
    );
}
