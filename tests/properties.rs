//! Property-based tests (proptest) on core data structures and invariants.

use bytes::Bytes;
use layered_resilience::apps::heatdis::jacobi_sweep;
use layered_resilience::apps::minimd::atoms::{generate_slab_atoms, Slab};
use layered_resilience::fenix::ImrPolicy;
use layered_resilience::kokkos::capture::CaptureSession;
use layered_resilience::kokkos::View;
use layered_resilience::kokkos_resilience::CheckpointFilter;
use layered_resilience::simmpi::pod;
use layered_resilience::simmpi::ReduceOp;
use layered_resilience::veloc::serial;
use proptest::prelude::*;

proptest! {
    /// POD slice ↔ bytes is an exact roundtrip for arbitrary f64 bit
    /// patterns (including NaNs and infinities).
    #[test]
    fn pod_roundtrip_f64(xs in proptest::collection::vec(any::<u64>(), 0..256)) {
        let xs: Vec<f64> = xs.into_iter().map(f64::from_bits).collect();
        let b = pod::to_bytes(&xs);
        let ys: Vec<f64> = pod::vec_from_bytes(&b);
        prop_assert_eq!(xs.len(), ys.len());
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Checkpoint blob pack/unpack is an exact roundtrip for arbitrary
    /// region sets.
    #[test]
    fn checkpoint_blob_roundtrip(
        regions in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..128)),
            0..16
        )
    ) {
        let regions: Vec<(u32, Bytes)> = regions
            .into_iter()
            .map(|(id, data)| (id, Bytes::from(data)))
            .collect();
        let blob = serial::pack(&regions);
        prop_assert_eq!(serial::unpack(&blob), Some(regions));
    }

    /// Truncating a packed blob anywhere must fail cleanly, never panic.
    #[test]
    fn truncated_blob_never_panics(
        regions in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64)),
            1..8
        ),
        cut_fraction in 0.0f64..1.0
    ) {
        let regions: Vec<(u32, Bytes)> = regions
            .into_iter()
            .map(|(id, data)| (id, Bytes::from(data)))
            .collect();
        let blob = serial::pack(&regions);
        let cut = ((blob.len() as f64) * cut_fraction) as usize;
        if cut < blob.len() {
            prop_assert_eq!(serial::unpack(&blob.slice(0..cut)), None);
        }
    }

    /// Reductions match their sequential definitions element-wise.
    #[test]
    fn reduce_ops_match_reference(
        a in proptest::collection::vec(-1e6f64..1e6, 1..64),
        b_seed in proptest::collection::vec(-1e6f64..1e6, 1..64)
    ) {
        let n = a.len().min(b_seed.len());
        let a = &a[..n];
        let b = &b_seed[..n];
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let mut acc = a.to_vec();
            op.apply(&mut acc, b);
            for i in 0..n {
                let expect = match op {
                    ReduceOp::Sum => a[i] + b[i],
                    ReduceOp::Min => a[i].min(b[i]),
                    ReduceOp::Max => a[i].max(b[i]),
                };
                prop_assert_eq!(acc[i], expect);
            }
        }
    }

    /// Jacobi sweeps obey the discrete maximum principle: every output
    /// value stays within the input range.
    #[test]
    fn jacobi_maximum_principle(
        rows in 1usize..6,
        cols in 1usize..8,
        seed in proptest::collection::vec(0.0f64..100.0, 1..300)
    ) {
        let len = (rows + 2) * cols;
        let src: Vec<f64> = (0..len).map(|i| seed[i % seed.len()]).collect();
        let mut dst = vec![0.0; len];
        jacobi_sweep(&src, &mut dst, rows, cols);
        let (lo, hi) = src.iter().fold((f64::MAX, f64::MIN), |(a, b), &x| (a.min(x), b.max(x)));
        for r in 1..=rows {
            for c_ in 0..cols {
                let v = dst[r * cols + c_];
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }

    /// IMR buddy policies are proper matchings: holder/source are inverse
    /// bijections and never map a rank to itself (for size ≥ 2).
    #[test]
    fn imr_policies_are_bijective(size_half in 1usize..32) {
        let n = size_half * 2; // even, valid for both policies
        for policy in [ImrPolicy::Pair, ImrPolicy::Ring] {
            let mut seen = vec![false; n];
            for r in 0..n {
                let h = policy.holder_of(r, n);
                prop_assert!(h < n);
                prop_assert_ne!(h, r);
                prop_assert_eq!(policy.source_of(h, n), r);
                prop_assert!(!seen[h], "holder collision");
                seen[h] = true;
            }
        }
    }

    /// Capture-session deduplication never double-counts an allocation's
    /// bytes and preserves every distinct view object.
    #[test]
    fn capture_dedup_counts(n_views in 1usize..24, dup_every in 1usize..6) {
        let views: Vec<View<u64>> =
            (0..n_views).map(|i| View::new_1d(format!("v{i}"), 8)).collect();
        let dups: Vec<View<u64>> = views
            .iter()
            .step_by(dup_every)
            .map(|v| v.duplicate_handle("dup"))
            .collect();
        let s = CaptureSession::new();
        s.record(|| {
            for v in &views {
                let _ = v.read();
            }
            for d in &dups {
                let _ = d.read();
            }
            // Repeat accesses must not inflate anything.
            for v in &views {
                let _ = v.read();
            }
        });
        let uniq = s.unique_views();
        prop_assert_eq!(uniq.len(), views.len() + dups.len());
        let distinct_allocs: std::collections::HashSet<u64> =
            uniq.iter().map(|r| r.meta.alloc_id).collect();
        prop_assert_eq!(distinct_allocs.len(), n_views);
    }

    /// `CheckpointFilter::for_total` produces at least the requested number
    /// of checkpoints (never fewer) and never more than one per iteration.
    #[test]
    fn checkpoint_filter_counts(iterations in 1u64..500, count in 1u64..50) {
        let f = CheckpointFilter::for_total(iterations, count);
        let fired = (0..iterations).filter(|&i| f.should_checkpoint(i)).count() as u64;
        prop_assert!(fired >= count.min(iterations));
        prop_assert!(fired <= iterations);
    }

    /// FCC slab generation: atom count is exact, ids are globally unique,
    /// and every atom lies inside its rank's slab.
    #[test]
    fn fcc_slabs_partition_ids(ranks in 1usize..5, cx in 1usize..4, cy in 1usize..4, cz in 1usize..4) {
        let cells = [cx, cy, cz];
        let mut all_ids = Vec::new();
        for r in 0..ranks {
            let slab = Slab::new(r, ranks, cells);
            let atoms = generate_slab_atoms(r, ranks, cells);
            prop_assert_eq!(atoms.len(), 4 * cx * cy * cz);
            for a in &atoms {
                prop_assert!(a.pos[0] >= slab.xlo - 1e-12 && a.pos[0] < slab.xhi);
                all_ids.push(a.id);
            }
        }
        let n = all_ids.len();
        all_ids.sort_unstable();
        all_ids.dedup();
        prop_assert_eq!(all_ids.len(), n, "duplicate atom ids across ranks");
    }

    /// View snapshot/restore is an exact roundtrip under arbitrary writes.
    #[test]
    fn view_snapshot_roundtrip(data in proptest::collection::vec(any::<u64>(), 1..200)) {
        let v = View::from_vec("p", data.clone());
        let snap = v.snapshot_bytes();
        v.fill(0);
        v.restore_bytes(&snap);
        prop_assert_eq!(&*v.read_uncaptured(), &data);
    }
}
