//! Offline stand-in for the `crossbeam` crate (channel subset only).
//!
//! Built on the workspace's model-aware `parking_lot` shim rather than
//! `std::sync::mpsc`, so channel sends and receives are schedule points for
//! the deterministic model checker (`shims/loom` + `crates/modelcheck`) —
//! the VeloC flush backend's job queue is explored without the production
//! code knowing anything about the model.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::Arc;

    use parking_lot::{Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake a receiver blocked on an empty queue so it can
                // observe disconnection.
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock();
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            self.0.cv.notify_all();
            Ok(())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().receiver_alive = false;
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                // lint: sanction(blocks): blocking channel receive — that is
                // the shim's contract; the DES layer replaces the channel
                // wholesale. audited 2026-08.
                self.0.cv.wait(&mut st);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            // lint: sanction(blocks): blocking iteration delegates to recv;
            // same channel contract. audited 2026-08.
            std::iter::from_fn(|| self.recv().ok())
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // No `T: Debug` bound so `.expect(..)` works on any payload.
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_returns_payload() {
        let (tx, rx) = unbounded();
        drop(rx);
        let SendError(v) = tx.send(7).unwrap_err();
        assert_eq!(v, 7);
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
