//! Offline stand-in for the `crossbeam` crate (channel subset only),
//! implemented on `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(|| self.recv().ok())
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // No `T: Debug` bound so `.expect(..)` works on any payload.
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
