//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace benches use: `Criterion`,
//! `benchmark_group` with the `sample_size` / `measurement_time` /
//! `warm_up_time` builders, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is plain
//! wall-clock: warm up for `warm_up_time`, then take `sample_size`
//! samples (each sized to roughly fill `measurement_time`) and report
//! the median per-iteration time. No statistics beyond that — the goal
//! is comparable relative numbers without any external dependency.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; holds the default sampling settings.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        self.run(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = if self.name.is_empty() {
            id.label
        } else {
            format!("{}/{}", self.name, id.label)
        };
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(label);
    }
}

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Warm up, then sample `routine` and record per-iteration times.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also estimates the per-iteration cost so each sample
        // can batch enough iterations to dominate timer resolution.
        // lint: sanction(wall-clock): the bench harness measures real time
        // by design; never on a rank path. audited 2026-08.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        // lint: sanction(wall-clock): bench harness timing. audited 2026-08.
        let per_iter = warm_start.elapsed().div_f64(warm_iters as f64);

        let budget = self.measurement_time.div_f64(self.sample_size as f64);
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget.as_secs_f64() / per_iter.as_secs_f64())
                .ceil()
                .max(1.0) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            // lint: sanction(wall-clock): bench harness sample timing; real
            // time is the measurement itself. audited 2026-08.
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                // lint: sanction(wall-clock): bench harness sample timing.
                // audited 2026-08.
                .push(start.elapsed().div_f64(iters_per_sample as f64));
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<56} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().unwrap();
        println!(
            "{label:<56} median {:>12} [{} .. {}] ({} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// `name/parameter` identifier for parameterised benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepted for API compatibility; this shim does not report throughput.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $crate::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
