//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny API subset it actually uses, implemented on
//! `std::sync`. Semantics match parking_lot where the codebase relies on
//! them: locks are non-poisoning (a panicked holder does not wedge peers)
//! and `Condvar::wait` takes the guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Non-poisoning mutex with the parking_lot API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard for [`Mutex`]. The inner `Option` lets [`Condvar::wait`] move the
/// std guard out and back through a `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Non-poisoning reader-writer lock with the parking_lot API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable whose `wait` reacquires through a `&mut` guard,
/// parking_lot style.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Result of a timed wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7, "non-poisoning semantics");
    }
}
