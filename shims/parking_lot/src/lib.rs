//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny API subset it actually uses, implemented on
//! `std::sync`. Semantics match parking_lot where the codebase relies on
//! them: locks are non-poisoning (a panicked holder does not wedge peers)
//! and `Condvar::wait` takes the guard by `&mut`.
//!
//! # Model-awareness
//!
//! These primitives double as the interception layer for the workspace's
//! deterministic model checker (`shims/loom` + `crates/modelcheck`). Inside
//! a model run ([`loom::rt::is_modeled`]), acquisition is decided by a
//! *model gate* — a lazily allocated atomic owned by the lock — through
//! [`loom::rt::block_until`], so every acquire and every condvar wait is a
//! schedule point the explorer controls, and blocked tasks are visible to
//! its deadlock detector. The `std` primitive underneath is still taken
//! (uncontended, since the gate serializes model tasks), which keeps the
//! data protected even if uncontrolled threads coexist with a model run.
//! Outside a model run, the gate is never allocated and each operation adds
//! one thread-local read to the plain `std` path.
//!
//! Model condvars use an *epoch* counter instead of real parking: `notify_*`
//! bumps the epoch and a modeled `wait` blocks until the epoch moves. Both
//! `notify_one` and `notify_all` wake every modeled waiter — a legal
//! spurious wakeup under the condvar contract, and one the explorer
//! exploits to exercise waiter re-check loops.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use loom::rt;

/// Acquire a mutex-style model gate. Returns `None` when the calling thread
/// is not (or no longer) part of a model run.
fn gate_acquire(gate: &Arc<AtomicBool>) -> Option<Arc<AtomicBool>> {
    loop {
        let g = Arc::clone(gate);
        match rt::block_until(Box::new(move || !g.load(Ordering::Relaxed)), false) {
            rt::Wake::Detached => return None,
            _ => {
                // We hold the token here, and this swap performs no model
                // yield, so gate checks are atomic w.r.t. other tasks.
                if !gate.swap(true, Ordering::Relaxed) {
                    return Some(Arc::clone(gate));
                }
            }
        }
    }
}

/// Non-poisoning mutex with the parking_lot API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    gate: OnceLock<Arc<AtomicBool>>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            gate: OnceLock::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn gate(&self) -> &Arc<AtomicBool> {
        self.gate.get_or_init(|| Arc::new(AtomicBool::new(false)))
    }

    fn model_acquire(&self) -> Option<Arc<AtomicBool>> {
        if !rt::is_modeled() {
            return None;
        }
        gate_acquire(self.gate())
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let gate = self.model_acquire();
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            gate,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let gate = if rt::is_modeled() {
            rt::yield_point();
            let gate = self.gate();
            if gate.swap(true, Ordering::Relaxed) {
                return None; // a model task holds it
            }
            Some(Arc::clone(gate))
        } else {
            None
        };
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: Some(g),
                gate,
            }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                lock: self,
                inner: Some(e.into_inner()),
                gate,
            }),
            Err(std::sync::TryLockError::WouldBlock) => {
                if let Some(g) = gate {
                    g.store(false, Ordering::Relaxed);
                }
                None
            }
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard for [`Mutex`]. The inner `Option` lets [`Condvar::wait`] move the
/// std guard out and back through a `&mut` borrow; `gate` records model
/// ownership so drop and condvar release go through the scheduler.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    gate: Option<Arc<AtomicBool>>,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock before the model gate so a promoted model
        // waiter finds both free.
        drop(self.inner.take());
        if let Some(g) = self.gate.take() {
            g.store(false, Ordering::Relaxed);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader/writer model gate: at most one writer, else any number of readers.
#[derive(Default)]
struct RwGate {
    writer: AtomicBool,
    readers: AtomicUsize,
}

/// Non-poisoning reader-writer lock with the parking_lot API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    gate: OnceLock<Arc<RwGate>>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            gate: OnceLock::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    fn gate(&self) -> &Arc<RwGate> {
        self.gate.get_or_init(|| Arc::new(RwGate::default()))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut model = None;
        if rt::is_modeled() {
            let gate = Arc::clone(self.gate());
            loop {
                let g = Arc::clone(&gate);
                match rt::block_until(Box::new(move || !g.writer.load(Ordering::Relaxed)), false) {
                    rt::Wake::Detached => break,
                    _ => {
                        if !gate.writer.load(Ordering::Relaxed) {
                            gate.readers.fetch_add(1, Ordering::Relaxed);
                            model = Some(gate);
                            break;
                        }
                    }
                }
            }
        }
        RwLockReadGuard {
            inner: Some(self.inner.read().unwrap_or_else(|e| e.into_inner())),
            gate: model,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let mut model = None;
        if rt::is_modeled() {
            let gate = Arc::clone(self.gate());
            loop {
                let g = Arc::clone(&gate);
                match rt::block_until(
                    Box::new(move || {
                        !g.writer.load(Ordering::Relaxed) && g.readers.load(Ordering::Relaxed) == 0
                    }),
                    false,
                ) {
                    rt::Wake::Detached => break,
                    _ => {
                        if !gate.writer.load(Ordering::Relaxed)
                            && gate.readers.load(Ordering::Relaxed) == 0
                        {
                            gate.writer.store(true, Ordering::Relaxed);
                            model = Some(gate);
                            break;
                        }
                    }
                }
            }
        }
        RwLockWriteGuard {
            inner: Some(self.inner.write().unwrap_or_else(|e| e.into_inner())),
            gate: model,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    gate: Option<Arc<RwGate>>,
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(g) = self.gate.take() {
            g.readers.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    gate: Option<Arc<RwGate>>,
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(g) = self.gate.take() {
            g.writer.store(false, Ordering::Relaxed);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable whose `wait` reacquires through a `&mut` guard,
/// parking_lot style.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    epoch: OnceLock<Arc<AtomicU64>>,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            epoch: OnceLock::new(),
        }
    }

    fn epoch(&self) -> &Arc<AtomicU64> {
        self.epoch.get_or_init(|| Arc::new(AtomicU64::new(0)))
    }

    /// Shared wait body; returns whether the wait timed out.
    fn wait_inner<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Option<std::time::Duration>,
    ) -> bool {
        if guard.gate.is_some() && rt::is_modeled() {
            let lock = guard.lock;
            let epoch = Arc::clone(self.epoch());
            let e0 = epoch.load(Ordering::Relaxed);
            // Release: std lock first, then the model gate (mirrors drop).
            drop(guard.inner.take());
            if let Some(g) = guard.gate.take() {
                g.store(false, Ordering::Relaxed);
            }
            let ep = Arc::clone(&epoch);
            let wake = rt::block_until(
                Box::new(move || ep.load(Ordering::Relaxed) != e0),
                timeout.is_some(),
            );
            guard.gate = lock.model_acquire();
            guard.inner = Some(lock.inner.lock().unwrap_or_else(|e| e.into_inner()));
            return wake == rt::Wake::TimedOut;
        }
        let inner = guard.inner.take().expect("guard present");
        match timeout {
            None => {
                // lint: sanction(blocks): condvar wait is this shim's
                // contract; callers carry their own sanctions or fixes.
                // audited 2026-08.
                guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
                false
            }
            Some(t) => {
                // lint: sanction(blocks): bounded condvar wait; same shim
                // contract. audited 2026-08.
                let (inner, result) = self
                    .inner
                    .wait_timeout(inner, t)
                    .unwrap_or_else(|e| e.into_inner());
                guard.inner = Some(inner);
                result.timed_out()
            }
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_inner(guard, None);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        WaitTimeoutResult(self.wait_inner(guard, Some(timeout)))
    }

    pub fn notify_one(&self) {
        if let Some(e) = self.epoch.get() {
            e.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some(e) = self.epoch.get() {
            e.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.notify_all();
    }
}

/// Result of a timed wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7, "non-poisoning semantics");
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
