//! Thread facade: `spawn`/`Builder`/`JoinHandle` that create controlled
//! tasks inside a model run and plain `std` threads outside one.
//!
//! Also hosts the [`fail_next_spawn`] test hook, which makes the next
//! `Builder::spawn` on this thread return an `io::Error` — the only portable
//! way to exercise spawn-failure degradation paths (veloc falls back to
//! synchronous flushing).

use std::cell::Cell;
use std::io;
use std::sync::{Arc, Condvar, Mutex};

use crate::rt;

thread_local! {
    static FAIL_NEXT_SPAWN: Cell<bool> = const { Cell::new(false) };
}

/// Make the next [`Builder::spawn`] (or [`spawn`]) on the calling thread
/// fail with an `io::Error` instead of creating a thread. Test hook for
/// spawn-failure degradation paths.
pub fn fail_next_spawn() {
    FAIL_NEXT_SPAWN.with(|f| f.set(true));
}

struct ResultCell<T> {
    slot: Mutex<Option<std::thread::Result<T>>>,
    cv: Condvar,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model(Arc<ResultCell<T>>),
}

pub struct JoinHandle<T>(Inner<T>);

impl<T: Send + 'static> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result (`Err` carries
    /// the panic payload, as with `std`).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            // lint: sanction(blocks): join is this type's contract; the
            // model branch routes through the scheduler. audited 2026-08.
            Inner::Std(h) => h.join(),
            Inner::Model(cell) => {
                let c = Arc::clone(&cell);
                // Modeled join: block until the result lands. On detach this
                // returns immediately and the real condvar below takes over.
                let _ = rt::block_until(Box::new(move || c.slot.lock().unwrap().is_some()), false);
                let mut slot = cell.slot.lock().unwrap();
                loop {
                    if let Some(r) = slot.take() {
                        return r;
                    }
                    // lint: sanction(blocks): detach fallback for modeled
                    // join; bounded by task completion. audited 2026-08.
                    slot = cell.cv.wait(slot).unwrap();
                }
            }
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle(..)")
    }
}

/// Mirror of `std::thread::Builder` (name only).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    #[must_use]
    pub fn new() -> Builder {
        Builder { name: None }
    }

    #[must_use]
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if FAIL_NEXT_SPAWN.with(|x| x.replace(false)) {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "thread spawn failure injected by loom::thread::fail_next_spawn",
            ));
        }
        if rt::is_modeled() {
            let cell = Arc::new(ResultCell {
                slot: Mutex::new(None),
                cv: Condvar::new(),
            });
            let cell2 = Arc::clone(&cell);
            let spawned = rt::spawn_controlled(
                self.name,
                Box::new(move || {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
                        Ok(v) => {
                            *cell2.slot.lock().unwrap() = Some(Ok(v));
                            cell2.cv.notify_all();
                        }
                        Err(p) => {
                            // Publish a stringified payload so joiners never
                            // hang, then re-throw so the runtime records the
                            // task failure with its schedule.
                            let msg: Box<dyn std::any::Any + Send> =
                                Box::new(rt::panic_message(p.as_ref()));
                            *cell2.slot.lock().unwrap() = Some(Err(msg));
                            cell2.cv.notify_all();
                            std::panic::resume_unwind(p);
                        }
                    }
                }),
            );
            if spawned {
                return Ok(JoinHandle(Inner::Model(cell)));
            }
            // Raced with detach: fall through to a real thread.
            unreachable!("is_modeled() held but spawn_controlled refused");
        }
        let mut b = std::thread::Builder::new();
        if let Some(n) = &self.name {
            b = b.name(n.clone());
        }
        // The modeled branch consumed `f` in its closure; keep the two arms
        // exclusive so the plain branch still owns `f`.
        // lint: sanction(spawns): the loom shim is the sanctioned OS-thread
        // seam outside a model run. audited 2026-08.
        b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
    }
}

/// `std::thread::spawn`, routed through the model when one is active.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// A schedule point with no memory effect (`std::thread::yield_now`).
pub fn yield_now() {
    rt::yield_point();
    std::thread::yield_now();
}
