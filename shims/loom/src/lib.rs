//! Offline stand-in for the `loom` model-checking facade.
//!
//! The real `loom` crate re-executes a closure under an exhaustively
//! enumerated scheduler, with shimmed `loom::sync` / `loom::thread` types
//! standing in for `std`'s. The container that grows this repo has no
//! registry access, so this shim rebuilds the part of that idea the
//! workspace needs, in the same shape:
//!
//! - [`sync::atomic`] and [`thread`] export drop-in facades over `std` that
//!   production crates (telemetry, veloc, simmpi) use directly. Outside a
//!   model run every operation costs one extra thread-local read.
//! - [`rt`] is the deterministic-execution runtime: one token, one runnable
//!   task at a time, a pluggable [`rt::Scheduler`] consulted at every
//!   intercepted operation. The workspace's `parking_lot` and `crossbeam`
//!   shims hook into it too, so locks, condvars, and channels are modeled
//!   without the production crates changing at all.
//! - `crates/modelcheck` drives [`rt::run_one`] with bounded-DFS and
//!   seeded-random schedulers to explore interleavings; see that crate for
//!   the exploration logic and the protocol test suites.
//!
//! Unlike the real loom this shim does not model weak memory (interleavings
//! are explored under sequential consistency) and does not checkpoint
//! `UnsafeCell` accesses; see DESIGN.md §9 for how the gap is covered.

pub mod rt;
pub mod thread;

pub mod sync {
    //! `loom::sync`: atomics (modeled) and `Arc` (passthrough).
    pub mod atomic {
        pub use crate::atomic::*;
    }
    pub use std::sync::Arc;
}

mod atomic;

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};

    // Passthrough behavior: outside a model run the facades are plain std.
    #[test]
    fn atomics_pass_through_outside_model() {
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        assert_eq!(a.swap(9, Ordering::SeqCst), 3);
        assert_eq!(
            a.compare_exchange(9, 11, Ordering::SeqCst, Ordering::SeqCst),
            Ok(9)
        );
    }

    #[test]
    fn threads_pass_through_outside_model() {
        let h = crate::thread::spawn(|| 41 + 1);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn fail_next_spawn_injects_error_once() {
        crate::thread::fail_next_spawn();
        assert!(crate::thread::Builder::new().spawn(|| ()).is_err());
        assert!(crate::thread::Builder::new().spawn(|| ()).is_ok());
    }

    // A minimal in-model smoke test with a trivial scheduler: always run the
    // lowest-id runnable task. The full exploration machinery lives in
    // crates/modelcheck; this just proves the token machine turns over.
    struct Fifo;
    impl crate::rt::Scheduler for Fifo {
        fn pick(
            &mut self,
            runnable: &[crate::rt::TaskId],
            _c: Option<crate::rt::TaskId>,
        ) -> crate::rt::TaskId {
            runnable[0]
        }
    }

    #[test]
    fn model_run_serializes_spawned_tasks() {
        let report = crate::rt::run_one(Box::new(Fifo), 10_000, || {
            let a = std::sync::Arc::new(AtomicU64::new(0));
            let a2 = std::sync::Arc::clone(&a);
            let h = crate::thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        assert!(
            report.failure.is_none(),
            "unexpected failure: {:?}",
            report.failure
        );
        assert!(!report.truncated);
        assert!(report.steps > 0);
        assert_eq!(report.task_names.len(), 2);
    }

    #[test]
    fn model_run_reports_task_panic_as_failure() {
        let report = crate::rt::run_one(Box::new(Fifo), 10_000, || {
            let h = crate::thread::spawn(|| panic!("boom in task"));
            let _ = h.join();
        });
        let msg = report.failure.expect("panic must surface as failure");
        assert!(msg.contains("boom in task"), "got: {msg}");
    }
}
