//! Atomic facade: `std::sync::atomic` types whose every access is a model
//! schedule point.
//!
//! Outside a model run each operation is the real `std` atomic op plus one
//! thread-local read — cheap enough to leave in production paths. Inside a
//! model run the runtime serializes tasks, so the op itself executes
//! data-race-free; the yield *before* it is what lets the scheduler
//! interleave other tasks around it. Orderings are passed through verbatim
//! (they are meaningful in production and to Miri; the model itself explores
//! sequentially consistent interleavings only — see DESIGN.md §9).

pub use std::sync::atomic::Ordering;

use crate::rt;

/// An ordering fence that is also a schedule point.
pub fn fence(order: Ordering) {
    rt::yield_point();
    std::sync::atomic::fence(order);
}

macro_rules! atomic_int {
    ($name:ident, $std:ident, $int:ty) => {
        #[derive(Debug, Default)]
        pub struct $name(std::sync::atomic::$std);

        impl $name {
            #[must_use]
            pub const fn new(v: $int) -> Self {
                Self(std::sync::atomic::$std::new(v))
            }

            pub fn load(&self, order: Ordering) -> $int {
                rt::yield_point();
                self.0.load(order)
            }

            pub fn store(&self, v: $int, order: Ordering) {
                rt::yield_point();
                self.0.store(v, order);
            }

            pub fn swap(&self, v: $int, order: Ordering) -> $int {
                rt::yield_point();
                self.0.swap(v, order)
            }

            pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                rt::yield_point();
                self.0.fetch_add(v, order)
            }

            pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                rt::yield_point();
                self.0.fetch_sub(v, order)
            }

            pub fn fetch_or(&self, v: $int, order: Ordering) -> $int {
                rt::yield_point();
                self.0.fetch_or(v, order)
            }

            pub fn fetch_and(&self, v: $int, order: Ordering) -> $int {
                rt::yield_point();
                self.0.fetch_and(v, order)
            }

            pub fn fetch_max(&self, v: $int, order: Ordering) -> $int {
                rt::yield_point();
                self.0.fetch_max(v, order)
            }

            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                rt::yield_point();
                self.0.compare_exchange(current, new, success, failure)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                rt::yield_point();
                self.0.compare_exchange(current, new, success, failure)
            }

            pub fn get_mut(&mut self) -> &mut $int {
                self.0.get_mut()
            }

            pub fn into_inner(self) -> $int {
                self.0.into_inner()
            }
        }
    };
}

atomic_int!(AtomicU32, AtomicU32, u32);
atomic_int!(AtomicU64, AtomicU64, u64);
atomic_int!(AtomicUsize, AtomicUsize, usize);
atomic_int!(AtomicI64, AtomicI64, i64);

#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    #[must_use]
    pub const fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }

    pub fn load(&self, order: Ordering) -> bool {
        rt::yield_point();
        self.0.load(order)
    }

    pub fn store(&self, v: bool, order: Ordering) {
        rt::yield_point();
        self.0.store(v, order);
    }

    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        rt::yield_point();
        self.0.swap(v, order)
    }

    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        rt::yield_point();
        self.0.fetch_or(v, order)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        rt::yield_point();
        self.0.compare_exchange(current, new, success, failure)
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.0.get_mut()
    }

    pub fn into_inner(self) -> bool {
        self.0.into_inner()
    }
}
