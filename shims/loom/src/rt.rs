//! The deterministic-execution runtime: a cooperative scheduler over real OS
//! threads.
//!
//! A *model run* ([`run_one`]) serializes every participating thread ("task")
//! through a single token: exactly one task executes application code at a
//! time, and every intercepted synchronization operation (atomic access,
//! mutex acquire, condvar wait, spawn, join) is a *schedule point* where the
//! token may move. A pluggable [`Scheduler`] decides which runnable task gets
//! the token at each point, so a driver (crates/modelcheck) can enumerate
//! interleavings deterministically — bounded DFS with replay, or seeded
//! random walks.
//!
//! Blocking is modeled with *ready predicates*: a task that cannot make
//! progress parks itself with a closure that reports whether it has become
//! runnable again ([`block_until`]). Predicates are re-evaluated at every
//! schedule point, so there are no lost wakeups in the model. Timed waits
//! (`wait_for`-style) are only "promoted" to timeouts when *no* task is
//! otherwise runnable — the standard trick that keeps timeout-based retry
//! loops from exploding the interleaving space while still letting them fire
//! when they are the only way forward.
//!
//! Failure handling: if any task panics, if no task can run (deadlock), or
//! if the step budget is exceeded, the run is *abandoned*. On abandonment
//! every task detaches from the model — subsequent intercepted operations
//! pass through to the real `std` primitives — so threads unwind or finish
//! natively and `run_one` can join them and report the failure with the full
//! schedule trace. Deadlocked tasks are unwound with a private panic payload
//! so they do not re-block on the real primitives.
//!
//! What is *not* modeled: weak memory. The runtime serializes execution, so
//! it explores interleavings under sequential consistency only. Memory
//! ordering bugs are covered separately (fences + audit comments, the lint
//! pass, optional Miri in CI) — see DESIGN.md §9.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Index of a task within one execution. Task 0 is always the closure passed
/// to [`run_one`]; subsequently spawned tasks get ids in spawn order, which
/// is deterministic given the schedule.
pub type TaskId = usize;

/// How a blocked task was resumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wake {
    /// The ready predicate held (or the task was never blocked).
    Ready,
    /// The task held a timed wait and was promoted because nothing else in
    /// the execution could run.
    TimedOut,
    /// The execution was abandoned; the task is no longer modeled and the
    /// caller should fall back to the real primitive (treat as a spurious
    /// wakeup).
    Detached,
}

/// One scheduling decision: which tasks could run, which was running, which
/// was chosen. The sequence of choices is the *schedule trace* — enough to
/// both replay an execution and enumerate its untried siblings.
#[derive(Clone, Debug)]
pub struct Choice {
    /// 1-based step index within the execution.
    pub step: u64,
    /// Runnable tasks at this point, ascending.
    pub runnable: Vec<TaskId>,
    /// The task that held the token, if it is still a candidate.
    pub current: Option<TaskId>,
    /// The task the scheduler picked.
    pub chosen: TaskId,
}

impl Choice {
    /// A choice is a *preemption* when the running task could have continued
    /// but the scheduler moved the token elsewhere. Preemption counts are
    /// what bounded DFS budgets.
    pub fn is_preemption(&self) -> bool {
        matches!(self.current, Some(c) if c != self.chosen)
    }
}

/// Scheduling policy for one execution.
///
/// `runnable` is non-empty and sorted ascending; `current` is the previously
/// running task if (and only if) it appears in `runnable`. The returned id
/// must be an element of `runnable`.
pub trait Scheduler: Send {
    fn pick(&mut self, runnable: &[TaskId], current: Option<TaskId>) -> TaskId;
}

enum Status {
    Runnable,
    Blocked {
        timed: bool,
        ready: Box<dyn FnMut() -> bool + Send>,
    },
    Finished,
}

struct Task {
    status: Status,
    name: String,
    woke_by_timeout: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Abandon {
    /// Panic or step-budget overrun: detached tasks finish natively.
    Failure,
    /// No task can ever run again: detached tasks must *unwind*, not
    /// re-block for real.
    Deadlock,
}

struct ExecState {
    tasks: Vec<Task>,
    current: TaskId,
    steps: u64,
    max_steps: u64,
    truncated: bool,
    trace: Vec<Choice>,
    failure: Option<String>,
    abandon: Option<Abandon>,
    unfinished: usize,
    scheduler: Box<dyn Scheduler>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Shared state of one model run. All transitions happen under `st`; `cv` is
/// broadcast on every transition and waiters re-check their own condition.
struct Execution {
    st: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, TaskId)>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind tasks out of a deadlocked model run. The
/// task is detached *before* the payload is thrown, so destructors that hit
/// intercepted primitives during the unwind pass through to `std` instead of
/// recursing into the dead model.
struct DeadlockUnwind;

/// True when the calling thread is a task of an active model run. All
/// facades use this as their fast path: one thread-local read in production.
pub fn is_modeled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn context() -> Option<(Arc<Execution>, TaskId)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn detach() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Execution {
    /// Pick the next task to run. Called with the state lock held by the
    /// task that holds the token (or is finishing). `me` is the caller if it
    /// is still runnable. Returns `false` when the run was abandoned or
    /// completed instead of scheduled.
    fn advance(&self, st: &mut ExecState, me: Option<TaskId>) -> bool {
        if st.abandon.is_some() {
            return false;
        }
        let mut runnable = Vec::new();
        for i in 0..st.tasks.len() {
            match &mut st.tasks[i].status {
                Status::Runnable => runnable.push(i),
                Status::Blocked { ready, .. } => {
                    if ready() {
                        st.tasks[i].status = Status::Runnable;
                        st.tasks[i].woke_by_timeout = false;
                        runnable.push(i);
                    }
                }
                Status::Finished => {}
            }
        }
        if runnable.is_empty() {
            // Timeout promotion: timed waits fire only when the execution
            // has no other way to make progress.
            for i in 0..st.tasks.len() {
                if matches!(st.tasks[i].status, Status::Blocked { timed: true, .. }) {
                    st.tasks[i].status = Status::Runnable;
                    st.tasks[i].woke_by_timeout = true;
                    runnable.push(i);
                }
            }
        }
        if runnable.is_empty() {
            if st.unfinished == 0 {
                self.cv.notify_all();
                return false; // execution complete
            }
            let blocked: Vec<&str> = st
                .tasks
                .iter()
                .filter(|t| matches!(t.status, Status::Blocked { .. }))
                .map(|t| t.name.as_str())
                .collect();
            st.failure = Some(format!(
                "deadlock: no runnable task; blocked: [{}]",
                blocked.join(", ")
            ));
            st.abandon = Some(Abandon::Deadlock);
            self.cv.notify_all();
            return false;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.truncated = true;
            if st.failure.is_none() {
                st.failure = Some(format!("step budget {} exceeded", st.max_steps));
            }
            st.abandon = Some(Abandon::Failure);
            self.cv.notify_all();
            return false;
        }
        let current = me.filter(|m| runnable.contains(m));
        let chosen = st.scheduler.pick(&runnable, current);
        debug_assert!(
            runnable.contains(&chosen),
            "scheduler picked a non-runnable task"
        );
        st.trace.push(Choice {
            step: st.steps,
            runnable,
            current,
            chosen,
        });
        st.current = chosen;
        self.cv.notify_all();
        true
    }

    /// Park until this task holds the token again (or the run is abandoned).
    fn wait_for_token(&self, me: TaskId) -> Wake {
        let mut st = self.st.lock().unwrap();
        loop {
            match st.abandon {
                Some(Abandon::Failure) => {
                    drop(st);
                    detach();
                    return Wake::Detached;
                }
                Some(Abandon::Deadlock) => {
                    drop(st);
                    detach();
                    std::panic::panic_any(DeadlockUnwind);
                }
                None => {}
            }
            if st.current == me && matches!(st.tasks[me].status, Status::Runnable) {
                let wake = if st.tasks[me].woke_by_timeout {
                    Wake::TimedOut
                } else {
                    Wake::Ready
                };
                st.tasks[me].woke_by_timeout = false;
                return wake;
            }
            // lint: sanction(blocks): the model-checker scheduler parks
            // every task except the one holding the token; blocking is how
            // the exploration serializes. audited 2026-08.
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// A schedule point: offer the token to the scheduler and wait to get it
/// back. No-op outside a model run.
pub fn yield_point() {
    let Some((exec, me)) = context() else { return };
    {
        let mut st = exec.st.lock().unwrap();
        exec.advance(&mut st, Some(me));
    }
    exec.wait_for_token(me);
}

/// Block the calling task until `ready` returns true, at a schedule point.
///
/// The predicate is evaluated with the runtime lock held at every subsequent
/// transition; it must only inspect plain shared state (e.g. `Arc`ed
/// atomics) and never call back into the runtime. With `timed`, the wait can
/// additionally be promoted to a timeout — but only when nothing else in the
/// execution is runnable. Outside a model run this returns
/// [`Wake::Detached`] immediately and the caller uses the real primitive.
///
/// Note that a `Ready` wake only means the predicate held at the moment this
/// task was *promoted*; other tasks may have run since. Callers must re-check
/// their actual condition in a loop, exactly as with a real condvar.
pub fn block_until(ready: Box<dyn FnMut() -> bool + Send>, timed: bool) -> Wake {
    let Some((exec, me)) = context() else {
        return Wake::Detached;
    };
    {
        let mut st = exec.st.lock().unwrap();
        st.tasks[me].status = Status::Blocked { timed, ready };
        st.tasks[me].woke_by_timeout = false;
        // `advance` re-evaluates predicates, so if ours already holds we are
        // immediately a candidate again — registering is still one schedule
        // point either way. Pass ourselves as the incumbent: if the predicate
        // is already true we re-enter `runnable`, and moving the token
        // elsewhere is then a *preemption* (budgeted), not a free switch —
        // otherwise every ready-at-block point branches the DFS for free and
        // the schedule tree explodes exponentially.
        exec.advance(&mut st, Some(me));
    }
    exec.wait_for_token(me)
}

/// Register the end of task `id`, recording a panic as an execution failure
/// (unless it is the runtime's own deadlock unwind).
fn finish_task(exec: &Execution, id: TaskId, panic: Option<Box<dyn std::any::Any + Send>>) {
    detach();
    let mut st = exec.st.lock().unwrap();
    st.tasks[id].status = Status::Finished;
    st.unfinished -= 1;
    if let Some(p) = panic {
        if !p.is::<DeadlockUnwind>() && st.failure.is_none() {
            st.failure = Some(format!(
                "task '{}' panicked: {}",
                st.tasks[id].name,
                panic_message(p.as_ref())
            ));
            st.abandon = Some(Abandon::Failure);
        }
    }
    if st.abandon.is_none() {
        exec.advance(&mut st, None);
    }
    // Wake everyone regardless: detachees, token waiters, and the drain
    // loop in `run_one` watching `unfinished`.
    exec.cv.notify_all();
}

/// Spawn `f` as a new controlled task of the calling task's execution.
/// Returns `false` (without running `f`) when the caller is not modeled —
/// the facade then falls back to `std::thread`.
pub fn spawn_controlled(name: Option<String>, f: Box<dyn FnOnce() + Send>) -> bool {
    let Some((exec, me)) = context() else {
        return false;
    };
    let id = {
        let mut st = exec.st.lock().unwrap();
        let id = st.tasks.len();
        st.tasks.push(Task {
            status: Status::Runnable,
            name: name.clone().unwrap_or_else(|| format!("task-{id}")),
            woke_by_timeout: false,
        });
        st.unfinished += 1;
        id
    };
    let exec2 = Arc::clone(&exec);
    // lint: sanction(spawns): one OS thread per modeled task — the
    // model-checker shim is the sanctioned OS-thread seam. audited 2026-08.
    let handle = std::thread::Builder::new()
        .name(name.unwrap_or_else(|| format!("loom-task-{id}")))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), id)));
            let exec3 = Arc::clone(&exec2);
            let result = catch_unwind(AssertUnwindSafe(move || {
                // First token (or immediate detach if already abandoned).
                let _ = exec3.wait_for_token(id);
                f();
            }));
            finish_task(&exec2, id, result.err());
        })
        .expect("spawn OS thread for modeled task");
    exec.st.lock().unwrap().os_handles.push(handle);
    let _ = me;
    // The spawn itself is a schedule point: the child may run first.
    yield_point();
    true
}

/// Everything `run_one` learned about one execution.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Schedule points taken.
    pub steps: u64,
    /// The full decision sequence (replayable).
    pub trace: Vec<Choice>,
    /// Why the run failed, if it did. `None` = clean completion.
    pub failure: Option<String>,
    /// The run hit the step budget (reported in `failure` too, but callers
    /// usually want to treat truncation as "inconclusive", not "bug").
    pub truncated: bool,
    /// Task names by id, for rendering traces.
    pub task_names: Vec<String>,
}

/// Run `f` once as task 0 of a fresh model run, scheduling every intercepted
/// operation through `scheduler`. Blocks until every spawned task has
/// finished (joining their OS threads), even on failure or abandonment.
pub fn run_one<F: FnOnce()>(scheduler: Box<dyn Scheduler>, max_steps: u64, f: F) -> ExecReport {
    assert!(
        !is_modeled(),
        "run_one called from inside a model run (nested model runs are not supported)"
    );
    let exec = Arc::new(Execution {
        st: Mutex::new(ExecState {
            tasks: vec![Task {
                status: Status::Runnable,
                name: "main".to_string(),
                woke_by_timeout: false,
            }],
            current: 0,
            steps: 0,
            max_steps,
            truncated: false,
            trace: Vec::new(),
            failure: None,
            abandon: None,
            unfinished: 1,
            scheduler,
            os_handles: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
    let result = catch_unwind(AssertUnwindSafe(f));
    finish_task(&exec, 0, result.err());
    let handles = {
        let mut st = exec.st.lock().unwrap();
        // Abandoned tasks finish natively (or unwind, for deadlocks), so
        // this drains in every outcome short of a genuine native hang.
        while st.unfinished > 0 {
            st = exec.cv.wait(st).unwrap();
        }
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    let st = exec.st.lock().unwrap();
    ExecReport {
        steps: st.steps,
        trace: st.trace.clone(),
        failure: st.failure.clone(),
        truncated: st.truncated,
        task_names: st.tasks.iter().map(|t| t.name.clone()).collect(),
    }
}
