//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// Something that can generate a random value of its output type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a full-domain generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-dynamic-range doubles (full bit patterns would be
        // mostly NaN/inf — tests wanting those build them from u64 bits).
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Element-count specification for [`vec`]: an exact length or a range.
pub trait SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.generate(rng)
    }
}

/// `collection::vec(element, size)` — a vector strategy.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_inclusive_exclusive() {
        let mut rng = TestRng::for_case(3, 0);
        for _ in 0..200 {
            let v = (5u64..7).generate(&mut rng);
            assert!(v == 5 || v == 6);
        }
    }

    #[test]
    fn negative_float_range() {
        let mut rng = TestRng::for_case(4, 0);
        for _ in 0..200 {
            let v = (-1e6f64..1e6).generate(&mut rng);
            assert!((-1e6..1e6).contains(&v));
        }
    }

    #[test]
    fn tuple_generates_both() {
        let mut rng = TestRng::for_case(5, 0);
        let (a, b): (u8, f64) = (any::<u8>(), 0.0f64..1.0).generate(&mut rng);
        let _ = a;
        assert!((0.0..1.0).contains(&b));
    }
}
