//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` assertions, [`strategy::any`],
//! integer/float range strategies, tuple strategies, and
//! [`collection::vec`]. Case generation is deterministic: every run draws
//! the same values for a given test name and case index, so failures are
//! reproducible without shrink/persistence machinery.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

/// Per-test configuration (case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is tuned for microsecond-scale properties;
        // several of ours launch whole rank universes, so stay modest.
        ProptestConfig { cases: 32 }
    }
}

/// FNV-1a over a test name: a stable per-test RNG seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f64..5.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..5.0).contains(&f));
        }

        #[test]
        fn vecs_obey_size(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case(1, 2);
        let mut b = crate::test_runner::TestRng::for_case(1, 2);
        let s = crate::strategy::vec(any::<u64>(), 8);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::test_runner::TestRng::for_case(9, 0);
        assert_eq!(
            crate::strategy::vec(0u32..10, 5).generate(&mut rng).len(),
            5
        );
    }
}
