//! Deterministic RNG for case generation (splitmix64).

/// A small deterministic generator; one instance per (test, case).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of a test with per-test `seed`.
    pub fn for_case(seed: u64, case: u64) -> Self {
        // Decorrelate neighbouring cases with a multiplicative bump.
        TestRng {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-case generation.
        // lint: sanction(non-det): seeded, replayable test-case RNG.
        // audited 2026-08.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // lint: sanction(non-det): seeded, replayable test-case RNG.
        // audited 2026-08.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = TestRng::for_case(7, 3);
        let mut b = TestRng::for_case(7, 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cases_decorrelated() {
        let mut a = TestRng::for_case(7, 0);
        let mut b = TestRng::for_case(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::for_case(1, 1);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
