//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] subset this workspace uses: a cheaply cloneable,
//! immutable, sliceable byte buffer. Cloning and slicing share one
//! `Arc<[u8]>` allocation; only construction copies.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable slice of an immutable, shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// The empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }

    /// Wrap a static slice (copies once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-slice sharing this buffer's storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            off: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == &other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let c = b.clone();
        assert_eq!(c, b);
        assert!(Arc::ptr_eq(&c.data, &s.data));
    }

    #[test]
    fn open_ranges() {
        let b = Bytes::from(vec![9u8; 4]);
        assert_eq!(b.slice(..).len(), 4);
        assert_eq!(b.slice(2..).len(), 2);
        assert_eq!(b.slice(..1).len(), 1);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        Bytes::from(vec![0u8; 2]).slice(0..3);
    }
}

/// Write-side trait matching the subset of `bytes::BufMut` the workspace
/// uses (little-endian integer puts and slice appends).
pub trait BufMut {
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable byte buffer that freezes into a [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod bytes_mut_tests {
    use super::*;

    #[test]
    fn put_and_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(7);
        b.put_u64_le(9);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 14);
        assert_eq!(&frozen[0..4], &7u32.to_le_bytes());
        assert_eq!(&frozen[12..], b"xy");
    }
}
