#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build + test pass
# (ROADMAP.md), chaos/modelcheck suites, and the checkpoint-pipeline
# benchmark gate. Run from anywhere inside the repo; fails fast.
#
# Every stage is wall-clock timed; the per-stage seconds and the artifact
# paths land in target/ci-summary.json (written even when a stage fails,
# covering the stages that ran). The summary's schema is validated by the
# tested Rust checker before the script declares success.
#
# CI_QUICK=1 skips the slow benchmark-regression gate and the 1k-rank DES
# scale smoke — an inner-loop mode; the full gate must pass before merge.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGE_JSON=""
CURRENT_STAGE=""
STAGE_START=0

now_ms() { date +%s%3N; }

begin() {
  CURRENT_STAGE="$1"
  STAGE_START=$(now_ms)
  echo "== $1 =="
}

end() {
  local dur_ms=$(( $(now_ms) - STAGE_START ))
  local entry
  entry=$(printf '{"name":"%s","seconds":%d.%03d}' \
    "$CURRENT_STAGE" $((dur_ms / 1000)) $((dur_ms % 1000)))
  STAGE_JSON="${STAGE_JSON:+$STAGE_JSON,}$entry"
  CURRENT_STAGE=""
}

write_summary() {
  local status=$?
  mkdir -p target
  {
    printf '{"ok":%s,"stages":[%s],"artifacts":{' \
      "$([ "$status" -eq 0 ] && echo true || echo false)" "$STAGE_JSON"
    printf '"lint_report":"target/lint-report.json",'
    printf '"lint_sarif":"target/lint-report.sarif",'
    printf '"lint_timings":"target/lint-timings.json",'
    printf '"effects_inventory":"target/effects-inventory.json",'
    printf '"effects_snapshot":"effects-inventory.json",'
    printf '"bench_results":"target/BENCH_checkpoint.json",'
    printf '"bench_baseline":"BENCH_checkpoint.json",'
    printf '"bench_redundancy_results":"target/BENCH_redundancy.json",'
    printf '"bench_redundancy_baseline":"BENCH_redundancy.json",'
    printf '"bench_sched_results":"target/BENCH_sched.json",'
    printf '"bench_sched_baseline":"BENCH_sched.json",'
    printf '"bench_restart_results":"target/BENCH_restart.json",'
    printf '"bench_restart_baseline":"BENCH_restart.json"'
    printf '}}\n'
  } > target/ci-summary.json
  echo "stage summary written to target/ci-summary.json"
}
trap write_summary EXIT

begin "cargo fmt --check"
cargo fmt --all -- --check
end

begin "cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings
end

begin "bench baselines sanity (committed BENCH_*.json)"
# Every committed baseline must parse as strict JSON, name its bench,
# carry all the configs the gate compares, and have no zero metrics —
# catching hand-edits or truncated files that would otherwise make the
# benchmark gate vacuously pass. Pure validation; no benchmark runs here.
cargo run -q -p bench --bin bench_compare -- check-baseline BENCH_*.json
end

begin "resilience-invariant lints (crates/lint)"
# Self-check first: proves every rule still fires on its fire fixture and
# stays silent on its clean twin, so a clean workspace scan means "no
# violations", not "linter rotted".
cargo run -q -p lint -- --self-check
# Workspace scan, in both resolution modes: fails on any diagnostic not
# justified in lint-baseline.txt — and on any stale baseline entry. The
# shallow scan keeps call resolution within each crate and emits the
# machine-readable artifacts (JSON report, SARIF 2.1.0 log, per-rule pass
# timings, and the interprocedural effects inventory — `effect-drift`
# inside the scan compares that inventory against the committed
# effects-inventory.json snapshot, so any new wall-clock/blocking/spawn/
# non-determinism site fails here until fixed or sanctioned); the
# LINT_DEEP=1 scan widens resolution across crate boundaries (slower,
# stricter) and must be just as clean.
cargo run -q -p lint -- \
  --report target/lint-report.json \
  --sarif target/lint-report.sarif \
  --timings target/lint-timings.json \
  --effects target/effects-inventory.json
LINT_DEEP=1 cargo run -q -p lint -- --root .
# The analyzer must also catch the seeded violations (panic-reach,
# protocol-typestate, collective-match, lock-order, blocking-while-locked,
# rank-path-effects) when mutants are opted in, and the seeded code must
# really compile:
cargo test -q -p lint --test mutant
cargo test -q -p fenix --features lint-mutants
cargo test -q -p simmpi --features lint-mutants
cargo test -q -p cluster --features lint-mutants
end

begin "tier-1: cargo build --release"
cargo build --release
end

begin "tier-1: cargo test -q"
cargo test -q
end

begin "chaos: smoke campaign + seeded integrity mutant"
# A short seeded campaign across all three resilience layers: every
# schedule must satisfy the differential oracle (bitwise-equal digest or a
# clean typed error — never a hang, panic, or incoherent timeline). Env
# knobs for deeper sweeps, e.g.:
#   CHAOS_SCHEDULES=200 CHAOS_SEED=7 scripts/ci.sh
cargo run -q --release -p harness --bin chaos -- \
  --schedules "${CHAOS_SCHEDULES:-30}" ${CHAOS_SEED:+--seed "$CHAOS_SEED"}
# The campaign must also catch the seeded checkpoint-integrity bug
# (chaos-mutants skips the CRC check) and shrink it to <=2 events:
cargo test -q -p chaos --features chaos-mutants
end

begin "sched: determinism battery + 1k-rank DES smoke"
# The deterministic scheduler's proof obligations: same seed => bitwise
# identical timeline/digest (proptest), DES-vs-threads verdict agreement
# on every committed chaos reproducer, and a full Heatdis + Fenix/KR run
# at SCALE_RANKS ranks (default 1,024) with one injected failure, replayed
# twice for bitwise equality. Deeper sweeps, e.g.:
#   SCALE_RANKS=4096 scripts/ci.sh
cargo test -q -p simmpi --test sched_props
cargo test -q -p chaos --test differential
if [ "${CI_QUICK:-0}" = "1" ]; then
  echo "CI_QUICK=1: skipping the ${SCALE_RANKS:-1024}-rank scale smoke"
else
  SCALE_RANKS="${SCALE_RANKS:-1024}" cargo test -q --release -p apps --test scale_smoke
fi
end

begin "redstore: codec proptests + multi-failure chaos smoke"
# Property suite: RS/XOR encode -> erase up to m shards -> decode
# round-trips bitwise at arbitrary payload sizes, and beyond-tolerance
# decode is a typed error, never a panic.
cargo test -q -p redstore
# Seeded multi-failure smoke, replayed through the differential oracle:
# a two-rank placement-group kill and a whole-node kill must complete
# bitwise-equal via the redundancy store, and the same node loss under
# explicitly co-located pair buddies must stay a clean typed error (the
# exact differential is asserted in crates/chaos/tests/scenarios.rs).
chaos_replay() {
  cargo run -q --release -p harness --bin chaos -- --schedule "$1"
}
chaos_replay "strategy=FenixRedstore spares=2 kill(rank=0,site=iter,at=5) kill(rank=1,site=iter,at=5)"
chaos_replay "strategy=FenixRedstore spares=2 rpn=2 nodekill(node=0,site=iter,at=5)"
chaos_replay "strategy=FenixImr spares=2 rpn=2 imr=pair nodekill(node=0,site=iter,at=5)"
end

begin "modelcheck: bounded interleaving exploration"
# The protocol suites (telemetry seqlock, veloc flush, pack pool, simmpi
# rendezvous) honour env overrides for deeper sweeps than the in-tree
# defaults, e.g.:
#   MC_PREEMPTION_BOUND=3 MC_DFS_CAP=500000 MC_RANDOM_EXECUTIONS=2000 scripts/ci.sh
# (raise MC_DFS_CAP alongside the bound or the exhaustiveness assertions
# will rightly fail on truncation.)
cargo test -q -p modelcheck --tests
end

begin "bench gate: checkpoint + redundancy + sched + restart"
# Re-measures the sync checkpoint pipeline (fails on a >15% median
# regression against the committed BENCH_checkpoint.json baseline, and
# asserts the incremental pipeline's >=5x claim at 1% dirty), the
# redundancy-tier codecs (low-water-mark medians vs BENCH_redundancy.json,
# plus XOR-cheaper-than-RS sanity), the DES scheduler hot paths, and the
# restart path (full restore + 8-frame chain walk vs BENCH_restart.json
# under RESTART_MAX_REGRESSION_PCT, plus the slice-by-16-beats-bitwise CRC
# claim). All comparisons run through the tested bench_compare helper; see
# scripts/bench_gate.sh for knobs.
if [ "${CI_QUICK:-0}" = "1" ]; then
  echo "CI_QUICK=1: skipping benchmark regression gate"
else
  scripts/bench_gate.sh
fi
end

begin "miri: UB check on the lock-free core (optional)"
if cargo miri --version >/dev/null 2>&1; then
  # Miri runs the seqlock/pod/router tests under the interpreter's memory
  # model; slow, so scoped to the crates with unsafe code or raw atomics.
  cargo miri test -p telemetry -p simmpi
else
  echo "cargo-miri not installed; skipping (rustup +nightly component add miri)"
fi
end

# Declare success only after the summary itself validates: write it now
# (the EXIT trap will rewrite the identical content afterwards) and run it
# through the schema checker — ok flag, named stages with non-negative
# seconds, string-valued artifact paths.
write_summary
cargo run -q -p bench --bin bench_compare -- check-summary target/ci-summary.json

echo "CI OK"
