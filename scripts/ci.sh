#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass
# (ROADMAP.md). Run from anywhere inside the repo; fails fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== resilience-invariant lints (crates/lint) =="
# Self-check first: proves every rule still fires on its fire fixture and
# stays silent on its clean twin, so a clean workspace scan means "no
# violations", not "linter rotted".
cargo run -q -p lint -- --self-check
# Workspace scan: fails on any diagnostic not justified in
# lint-baseline.txt; the machine-readable report is kept as a CI artifact.
# LINT_DEEP=1 widens call resolution across crate boundaries (slower,
# stricter — the default scan keeps resolution within each crate):
#   LINT_DEEP=1 scripts/ci.sh
cargo run -q -p lint -- --report target/lint-report.json
# The analyzer must also catch the seeded violation when mutants are
# opted in, and the seeded violation must really be a bug:
cargo test -q -p lint --test mutant
cargo test -q -p fenix --features lint-mutants

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== chaos: smoke campaign + seeded integrity mutant =="
# A short seeded campaign across all three resilience layers: every
# schedule must satisfy the differential oracle (bitwise-equal digest or a
# clean typed error — never a hang, panic, or incoherent timeline). Env
# knobs for deeper sweeps, e.g.:
#   CHAOS_SCHEDULES=200 CHAOS_SEED=7 scripts/ci.sh
cargo run -q --release -p harness --bin chaos -- \
  --schedules "${CHAOS_SCHEDULES:-30}" ${CHAOS_SEED:+--seed "$CHAOS_SEED"}
# The campaign must also catch the seeded checkpoint-integrity bug
# (chaos-mutants skips the CRC check) and shrink it to <=2 events:
cargo test -q -p chaos --features chaos-mutants

echo "== modelcheck: bounded interleaving exploration =="
# The protocol suites (telemetry seqlock, veloc flush, simmpi rendezvous)
# honour env overrides for deeper sweeps than the in-tree defaults, e.g.:
#   MC_PREEMPTION_BOUND=3 MC_DFS_CAP=500000 MC_RANDOM_EXECUTIONS=2000 scripts/ci.sh
# (raise MC_DFS_CAP alongside the bound or the exhaustiveness assertions
# will rightly fail on truncation).
cargo test -q -p modelcheck --tests

echo "== miri: UB check on the lock-free core (optional) =="
if cargo miri --version >/dev/null 2>&1; then
  # Miri runs the seqlock/pod/router tests under the interpreter's memory
  # model; slow, so scoped to the crates with unsafe code or raw atomics.
  cargo miri test -p telemetry -p simmpi
else
  echo "cargo-miri not installed; skipping (rustup +nightly component add miri)"
fi

echo "CI OK"
