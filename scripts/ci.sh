#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass
# (ROADMAP.md). Run from anywhere inside the repo; fails fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "CI OK"
