#!/usr/bin/env bash
# Benchmark-regression gate. Each section runs one bench target, which
# writes a machine-readable target/BENCH_*.json, then delegates every
# decision — regression percentages, speedup claims, JSON validity — to
# the tested Rust helper (`cargo run -p bench --bin bench_compare`,
# logic + unit tests in crates/bench/src/gate.rs). The script only
# sequences the runs and handles first-run baseline creation.
#
# Sections and their committed baselines (repo root):
#   checkpoint pipeline  BENCH_checkpoint.json  (median_ns, MAX_REGRESSION_PCT,   default 15)
#   redundancy tier      BENCH_redundancy.json  (min_ns,    RED_MAX_REGRESSION_PCT,  default 30)
#   DES scheduler        BENCH_sched.json       (median_ns, SCHED_MAX_REGRESSION_PCT, default 30)
#   restart latency      BENCH_restart.json     (median_ns, RESTART_MAX_REGRESSION_PCT, default 30)
#
# Claims asserted beyond regression bounds:
#   - incremental@1% checkpoint >= MIN_SPEEDUP_X (default 5) faster than full-pack;
#   - XOR n+1 encode cheaper than RS n+2 (GF(256) must not leak into XOR);
#   - slice-by-16 CRC faster than the bitwise oracle it replaced.
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-15}"
MIN_SPEEDUP_X="${MIN_SPEEDUP_X:-5}"
RED_MAX_REGRESSION_PCT="${RED_MAX_REGRESSION_PCT:-30}"
SCHED_MAX_REGRESSION_PCT="${SCHED_MAX_REGRESSION_PCT:-30}"
RESTART_MAX_REGRESSION_PCT="${RESTART_MAX_REGRESSION_PCT:-30}"

BC() { cargo run -q -p bench --bin bench_compare -- "$@"; }

# Run one bench target and compare its fresh JSON against the committed
# baseline; on the first run (no baseline) commit the fresh numbers instead.
gate_section() { # title target baseline metric max_pct configs
  local title="$1" target="$2" baseline="$3" metric="$4" max_pct="$5" configs="$6"
  local fresh="target/${baseline}"
  echo "== bench: ${title} =="
  cargo bench -q -p bench --bench "$target"
  [ -f "$fresh" ] || { echo "bench gate: $fresh was not produced" >&2; exit 1; }
  if [ ! -f "$baseline" ]; then
    cp "$fresh" "$baseline"
    echo "bench gate: no committed baseline; committed fresh numbers to $baseline"
    return 0
  fi
  BC compare "$baseline" "$fresh" \
    --metric "$metric" --max-pct "$max_pct" --configs "$configs"
}

gate_section "checkpoint pipeline" checkpoint_pipeline BENCH_checkpoint.json \
  median_ns "$MAX_REGRESSION_PCT" \
  full_pack,incremental_1pct,incremental_25pct,incremental_100pct
# Headline claim: the sync checkpoint at 1-of-100-regions-dirty must be
# >= MIN_SPEEDUP_X times faster than the full-pack pipeline.
BC assert-faster target/BENCH_checkpoint.json incremental_1pct full_pack \
  --metric median_ns --min-x "$MIN_SPEEDUP_X"
echo "bench gate: OK (checkpoint)"

# The redundancy codecs gate on the low-water mark (min_ns) — the least
# scheduler-sensitive estimator for microsecond-scale operations — with a
# wider budget, since their medians sit where run-to-run jitter is large.
# The recovery_* medians in the JSON are recorded but not gated (they time
# a collective across rank threads).
gate_section "redundancy tier" redundancy BENCH_redundancy.json \
  min_ns "$RED_MAX_REGRESSION_PCT" \
  encode_k2,reconstruct_k2,encode_k3,reconstruct_k3,encode_xor4,reconstruct_xor4,encode_rs4_2,reconstruct_rs4_2
# Sanity claim: XOR n+1 encode must be cheaper than RS n+2 — if GF(256)
# math sneaks into the XOR path this trips long before any percentage.
BC assert-faster target/BENCH_redundancy.json encode_xor4 encode_rs4_2 \
  --metric min_ns --min-x 1
echo "bench gate: OK (redundancy)"

# The ring_* configs time a whole Universe launch (thread spawn +
# scheduler), hence the wider budget.
gate_section "DES scheduler" sched BENCH_sched.json \
  median_ns "$SCHED_MAX_REGRESSION_PCT" \
  baton_handoff,ring_16,ring_64
echo "bench gate: OK (sched)"

# Restart latency: full-frame restore, the 8-frame chain walk in its
# parallel (4-worker) and sequential configurations — the multi-core
# scaling pair — and the CRC kernel itself. bytes_restored and the
# read/verify/apply stage medians ride along in the JSON for the
# EXPERIMENTS.md latency budget.
gate_section "restart latency" restart_latency BENCH_restart.json \
  median_ns "$RESTART_MAX_REGRESSION_PCT" \
  restart_full,restart_chain8,restart_chain8_seq,crc_bitwise_1m,crc_slice16_1m
# Tentpole claim: the slice-by-16 CRC must beat the bitwise implementation
# it replaced (kept in-tree solely as the proptest oracle).
BC assert-faster target/BENCH_restart.json crc_slice16_1m crc_bitwise_1m \
  --metric median_ns --min-x 1
echo "bench gate: OK (restart)"

echo "bench gate: OK"
