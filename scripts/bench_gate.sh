#!/usr/bin/env bash
# Benchmark-regression gate for the synchronous checkpoint pipeline.
#
# Runs crates/bench/benches/checkpoint_pipeline.rs, which writes
# target/BENCH_checkpoint.json (median ns + bytes written per config), then:
#
#   1. proves the incremental pipeline's headline claim — the sync
#      checkpoint at 1-of-100-regions-dirty must be >= MIN_SPEEDUP_X times
#      faster than the full-pack pipeline;
#   2. compares every config's median against the committed baseline
#      (BENCH_checkpoint.json at the repo root) and fails on a regression
#      beyond MAX_REGRESSION_PCT;
#   3. on the first run (no committed baseline) commits the fresh numbers
#      as the baseline instead of failing.
#
# Knobs: MAX_REGRESSION_PCT (default 15), MIN_SPEEDUP_X (default 5).
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-15}"
MIN_SPEEDUP_X="${MIN_SPEEDUP_X:-5}"
BASELINE="BENCH_checkpoint.json"
FRESH="target/BENCH_checkpoint.json"

echo "== bench: checkpoint pipeline =="
cargo bench -q -p bench --bench checkpoint_pipeline

[ -f "$FRESH" ] || { echo "bench gate: $FRESH was not produced" >&2; exit 1; }

# median_ns for a config name out of one of the one-entry-per-line JSONs.
median_of() { # file config
  sed -n "s/.*\"name\":\"$2\",\"median_ns\":\([0-9]*\).*/\1/p" "$1"
}

# min_ns variant — the redundancy codec configs gate on the low-water mark,
# the least scheduler-sensitive estimator for microsecond-scale operations.
min_of() { # file config
  sed -n "s/.*\"name\":\"$2\",\"min_ns\":\([0-9]*\).*/\1/p" "$1"
}

full=$(median_of "$FRESH" full_pack)
inc1=$(median_of "$FRESH" incremental_1pct)
[ -n "$full" ] && [ -n "$inc1" ] || {
  echo "bench gate: fresh results missing full_pack/incremental_1pct" >&2
  exit 1
}

speedup=$((full / inc1))
echo "bench gate: full-pack ${full} ns vs incremental@1% ${inc1} ns (${speedup}x)"
if [ "$((inc1 * MIN_SPEEDUP_X))" -gt "$full" ]; then
  echo "bench gate: FAIL — incremental@1% must be >= ${MIN_SPEEDUP_X}x faster than full-pack" >&2
  exit 1
fi

if [ ! -f "$BASELINE" ]; then
  cp "$FRESH" "$BASELINE"
  echo "bench gate: no committed baseline; committed fresh numbers to $BASELINE"
  echo "bench gate: OK (baseline created)"
  exit 0
fi

fail=0
for cfg in full_pack incremental_1pct incremental_25pct incremental_100pct; do
  base=$(median_of "$BASELINE" "$cfg")
  now=$(median_of "$FRESH" "$cfg")
  if [ -z "$base" ] || [ -z "$now" ]; then
    echo "bench gate: config $cfg missing from baseline or fresh run" >&2
    fail=1
    continue
  fi
  limit=$((base * (100 + MAX_REGRESSION_PCT) / 100))
  if [ "$now" -gt "$limit" ]; then
    echo "bench gate: FAIL — $cfg regressed: ${now} ns > ${limit} ns (baseline ${base} ns +${MAX_REGRESSION_PCT}%)" >&2
    fail=1
  else
    echo "bench gate: $cfg ${now} ns (baseline ${base} ns, limit ${limit} ns)"
  fi
done
[ "$fail" -eq 0 ] || exit 1
echo "bench gate: OK"

# ---------------------------------------------------------------------------
# Redundancy-tier gate: encode/reconstruct medians per mode (k2, k3, XOR
# n+1, RS n+2) against the committed BENCH_redundancy.json baseline. The
# recovery_* medians in the JSON are recorded but not gated — they time a
# collective across rank threads, which is scheduler-noisy. The codec
# medians sit in the microsecond range where run-to-run jitter is wider
# than the checkpoint pipeline's, so this section has its own knob
# (RED_MAX_REGRESSION_PCT, default 30).
echo "== bench: redundancy tier =="
RED_MAX_REGRESSION_PCT="${RED_MAX_REGRESSION_PCT:-30}"
RED_BASELINE="BENCH_redundancy.json"
RED_FRESH="target/BENCH_redundancy.json"
cargo bench -q -p bench --bench redundancy

[ -f "$RED_FRESH" ] || { echo "bench gate: $RED_FRESH was not produced" >&2; exit 1; }

# Sanity claim: the XOR n+1 codec must encode cheaper than RS n+2 — if
# GF(256) math sneaks into the XOR path this trips long before 15%.
xor=$(min_of "$RED_FRESH" encode_xor4)
rs=$(min_of "$RED_FRESH" encode_rs4_2)
[ -n "$xor" ] && [ -n "$rs" ] || {
  echo "bench gate: fresh results missing encode_xor4/encode_rs4_2" >&2
  exit 1
}
echo "bench gate: encode xor4 ${xor} ns vs rs4.2 ${rs} ns"
if [ "$xor" -gt "$rs" ]; then
  echo "bench gate: FAIL — XOR parity encode should be cheaper than RS" >&2
  exit 1
fi

if [ ! -f "$RED_BASELINE" ]; then
  cp "$RED_FRESH" "$RED_BASELINE"
  echo "bench gate: no committed baseline; committed fresh numbers to $RED_BASELINE"
  echo "bench gate: OK (redundancy baseline created)"
  exit 0
fi

fail=0
for cfg in encode_k2 reconstruct_k2 encode_k3 reconstruct_k3 \
           encode_xor4 reconstruct_xor4 encode_rs4_2 reconstruct_rs4_2; do
  base=$(min_of "$RED_BASELINE" "$cfg")
  now=$(min_of "$RED_FRESH" "$cfg")
  if [ -z "$base" ] || [ -z "$now" ]; then
    echo "bench gate: config $cfg missing from baseline or fresh run" >&2
    fail=1
    continue
  fi
  limit=$((base * (100 + RED_MAX_REGRESSION_PCT) / 100))
  if [ "$now" -gt "$limit" ]; then
    echo "bench gate: FAIL — $cfg regressed: ${now} ns > ${limit} ns (baseline ${base} ns +${RED_MAX_REGRESSION_PCT}%)" >&2
    fail=1
  else
    echo "bench gate: $cfg ${now} ns (baseline ${base} ns, limit ${limit} ns)"
  fi
done
[ "$fail" -eq 0 ] || exit 1
echo "bench gate: OK (redundancy)"

# ---------------------------------------------------------------------------
# DES scheduler gate: baton hand-off floor and schedules-per-second against
# the committed BENCH_sched.json baseline. The ring_* configs time a whole
# Universe launch (thread spawn + scheduler), so this section carries its
# own, wider knob (SCHED_MAX_REGRESSION_PCT, default 30).
echo "== bench: DES scheduler =="
SCHED_MAX_REGRESSION_PCT="${SCHED_MAX_REGRESSION_PCT:-30}"
SCHED_BASELINE="BENCH_sched.json"
SCHED_FRESH="target/BENCH_sched.json"
cargo bench -q -p bench --bench sched

[ -f "$SCHED_FRESH" ] || { echo "bench gate: $SCHED_FRESH was not produced" >&2; exit 1; }

if [ ! -f "$SCHED_BASELINE" ]; then
  cp "$SCHED_FRESH" "$SCHED_BASELINE"
  echo "bench gate: no committed baseline; committed fresh numbers to $SCHED_BASELINE"
  echo "bench gate: OK (sched baseline created)"
  exit 0
fi

fail=0
for cfg in baton_handoff ring_16 ring_64; do
  base=$(median_of "$SCHED_BASELINE" "$cfg")
  now=$(median_of "$SCHED_FRESH" "$cfg")
  if [ -z "$base" ] || [ -z "$now" ]; then
    echo "bench gate: config $cfg missing from baseline or fresh run" >&2
    fail=1
    continue
  fi
  limit=$((base * (100 + SCHED_MAX_REGRESSION_PCT) / 100))
  if [ "$now" -gt "$limit" ]; then
    echo "bench gate: FAIL — $cfg regressed: ${now} ns > ${limit} ns (baseline ${base} ns +${SCHED_MAX_REGRESSION_PCT}%)" >&2
    fail=1
  else
    echo "bench gate: $cfg ${now} ns (baseline ${base} ns, limit ${limit} ns)"
  fi
done
[ "$fail" -eq 0 ] || exit 1
echo "bench gate: OK (sched)"
