//! Scratch review test: after a generation-collision abandon, does the slot
//! ever accept records again?

use std::sync::Arc;

use modelcheck::Explorer;
use telemetry::event::RECORD_WORDS;
use telemetry::EventRing;

#[test]
fn slot_recovers_after_collision() {
    let report = Explorer::with_bound(2).explore(|| {
        let ring = Arc::new(EventRing::new(2));
        let r2 = Arc::clone(&ring);
        let t = loom::thread::spawn(move || r2.push([1; RECORD_WORDS]));
        ring.push([2; RECORD_WORDS]);
        ring.push([3; RECORD_WORDS]);
        t.join().unwrap();
        // Quiescent: 3 pushes happened (some may have been abandoned).
        assert_eq!(ring.pushed(), 3);
        // Now, with no concurrency at all, push three more records. The last
        // two (h=4 -> slot 0, h=5 -> slot 1) are the newest; a healthy ring
        // must retain both.
        ring.push([7; RECORD_WORDS]);
        ring.push([8; RECORD_WORDS]);
        ring.push([9; RECORD_WORDS]);
        let vals: Vec<u64> = ring.snapshot().iter().map(|w| w[0]).collect();
        assert_eq!(vals, vec![8, 9], "newest records lost: {vals:?}");
    });
    if let Some(f) = &report.failure {
        panic!("DEAD SLOT DEMONSTRATED:\n{}", f.render());
    }
}
