//! Exploration of the parallel checkpoint-pack pool (`veloc::pool`): the
//! caller thread drains the shared queue concurrently with its spawned
//! workers, then joins them and unwraps the shared state. The queue and
//! result locks plus the spawn/join protocol all run on the model-aware
//! shims, so every interleaving of "who pops which item" is explored.

use modelcheck::Explorer;
use veloc::pool::map_parallel;

/// Two workers (caller + one spawned) racing over three items: under every
/// schedule each item is computed exactly once, lands in its own slot, and
/// the join leaves the caller holding the only `Arc` reference.
#[test]
fn pack_pool_completes_under_all_schedules() {
    let report = Explorer::with_bound(2)
        .from_env()
        .check("veloc pack pool fork/join", || {
            let out = map_parallel(vec![10u64, 20, 30], 2, |x| x + 1);
            assert_eq!(out, vec![Some(11), Some(21), Some(31)]);
        });
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
    assert_eq!(report.truncated, 0);
}

/// A refused spawn shrinks the pool to the caller thread alone; the queue
/// still drains completely under every schedule.
#[test]
fn pack_pool_degrades_when_spawn_is_refused() {
    let report = Explorer::with_bound(2)
        .from_env()
        .check("veloc pack pool degraded", || {
            loom::thread::fail_next_spawn();
            let out = map_parallel(vec![1u32, 2, 3, 4], 2, |x| x * 3);
            assert_eq!(out, vec![Some(3), Some(6), Some(9), Some(12)]);
        });
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
    assert_eq!(report.truncated, 0);
}
