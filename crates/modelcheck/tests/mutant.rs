//! Negative control for the seqlock suite: a deliberately broken push
//! (publish the even "write complete" sequence *before* filling the words,
//! behind the `mc-mutants` feature) must be caught by the explorer.
//!
//! This is the demonstration the ISSUE asks for — if the ordering in
//! `EventRing::push` ever regressed this way, `tests/seqlock.rs` would fail
//! the same way this test expects its mutant twin to fail.

use std::sync::Arc;

use modelcheck::Explorer;
use telemetry::event::RECORD_WORDS;
use telemetry::EventRing;

#[test]
fn publish_before_fill_mutant_is_caught() {
    let failure =
        Explorer::with_bound(2)
            .from_env()
            .explore_expect_failure("seqlock mutant", || {
                let ring = Arc::new(EventRing::new(2));
                let r2 = Arc::clone(&ring);
                let t = loom::thread::spawn(move || {
                    r2.push_publish_before_fill([7; RECORD_WORDS]);
                });
                for w in ring.snapshot() {
                    // Under the mutant a reader can validate the slot while the
                    // words are stale (all zeros) or half-written — both are torn
                    // reads the real protocol excludes.
                    assert!(
                        w.iter().all(|&x| x == 7),
                        "torn record: {w:?} (validated before the words were filled)"
                    );
                }
                t.join().unwrap();
            });
    assert!(
        failure.message.contains("torn record"),
        "expected a torn-read assertion, got: {}",
        failure.message
    );
    // The failing schedule preempts the writer mid-publish: it exists and
    // replays deterministically (Failure::render shows it on a real failure).
    assert!(!failure.schedule.is_empty());
}
