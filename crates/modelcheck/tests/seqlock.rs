//! Exhaustive exploration of the telemetry ring's per-slot seqlock,
//! including wraparound and generation reuse (ISSUE protocol (a)).
//!
//! Capacity is forced down to 2 so three pushes already recycle slot 0 at a
//! higher generation — the regime where a stale-generation validation bug
//! would hand a reader a half-overwritten record.

use std::sync::Arc;

use modelcheck::Explorer;
use telemetry::event::RECORD_WORDS;
use telemetry::EventRing;

fn assert_coherent(w: &[u64; RECORD_WORDS]) {
    assert!(w.iter().all(|&x| x == w[0]), "torn record: {w:?}");
}

/// One writer wraps the ring while the main task snapshots mid-stream.
/// Every observable record must be coherent, and the quiescent state must
/// have exact counters: 3 pushed, 1 evicted, survivors [2, 3] in order.
#[test]
fn snapshot_is_never_torn_across_wraparound() {
    let report = Explorer::with_bound(2)
        .from_env()
        .check("seqlock wraparound", || {
            let ring = Arc::new(EventRing::new(2));
            let r2 = Arc::clone(&ring);
            let t = loom::thread::spawn(move || {
                for v in 1..=3u64 {
                    r2.push([v; RECORD_WORDS]);
                }
            });
            // Concurrent snapshot: records may be skipped (mid-overwrite) but
            // never torn, and what survives is oldest-first monotone.
            let seen: Vec<u64> = ring
                .snapshot()
                .iter()
                .map(|w| {
                    assert_coherent(w);
                    assert!((1..=3).contains(&w[0]), "impossible value: {}", w[0]);
                    w[0]
                })
                .collect();
            assert!(seen.windows(2).all(|p| p[0] < p[1]), "unordered: {seen:?}");
            t.join().unwrap();
            // Quiescent: exact drop accounting and exact survivors.
            assert_eq!(ring.pushed(), 3);
            assert_eq!(ring.dropped(), 1);
            let survivors: Vec<u64> = ring.snapshot().iter().map(|w| w[0]).collect();
            assert_eq!(survivors, vec![2, 3]);
        });
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
    assert_eq!(report.truncated, 0);
}

/// Two writers race for slots while the main task reads: generation reuse
/// with contended `head`. No duplicated claims, no torn records, exact
/// pushed count.
#[test]
fn two_writers_reuse_generations_coherently() {
    let report = Explorer::with_bound(1)
        .from_env()
        .check("seqlock two writers", || {
            let ring = Arc::new(EventRing::new(2));
            let (a, b) = (Arc::clone(&ring), Arc::clone(&ring));
            let ta = loom::thread::spawn(move || a.push([11; RECORD_WORDS]));
            let tb = loom::thread::spawn(move || {
                b.push([22; RECORD_WORDS]);
                b.push([33; RECORD_WORDS]);
            });
            for w in ring.snapshot() {
                assert_coherent(&w);
                assert!([11, 22, 33].contains(&w[0]), "impossible value: {}", w[0]);
            }
            ta.join().unwrap();
            tb.join().unwrap();
            assert_eq!(ring.pushed(), 3, "every claim is counted exactly once");
            assert_eq!(ring.dropped(), 1);
            for w in ring.snapshot() {
                assert_coherent(&w);
            }
        });
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
    assert_eq!(report.truncated, 0);
}
