//! Exploration of the VeloC asynchronous-flush protocol (ISSUE protocol
//! (b)): the backend worker thread vs `checkpoint`/`checkpoint_wait` vs
//! teardown. The channel, pending counter, and condvar all run on the
//! model-aware shims, so enqueue → flush → wait → drop is explored end to
//! end; the cluster uses `TimeScale::instant()` so no modeled time passes.

use bytes::Bytes;
use cluster::{Cluster, ClusterConfig, TimeScale};
use modelcheck::Explorer;
use telemetry::Recorder;
use veloc::{ActiveBackend, Client, Config, Mode, VecRegion};

fn cluster(nodes: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

/// Enqueue a flush, wait for it, tear the backend down. Under every
/// schedule the blob lands on the PFS before `wait` returns and nothing is
/// outstanding afterwards.
#[test]
fn flush_wait_teardown_is_clean() {
    let report = Explorer::with_bound(2)
        .from_env()
        .check("veloc flush/wait/drop", || {
            let c = cluster(1);
            let b = ActiveBackend::spawn(c.clone(), 0).expect("no spawn fault injected");
            b.enqueue_flush(
                "ck/v1/r0".into(),
                Bytes::from_static(b"payload"),
                "ck".into(),
                1,
                Recorder::disabled(),
            );
            b.wait();
            assert_eq!(b.outstanding(), 0, "wait returned with work outstanding");
            assert_eq!(
                &c.pfs().read("ck/v1/r0").expect("flush must have landed").0[..],
                b"payload"
            );
            drop(b);
        });
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
    assert_eq!(report.truncated, 0);
}

/// Teardown with the flush still in flight: drop must drain, never discard,
/// under every interleaving of the worker and the dropping thread.
#[test]
fn drop_drains_in_flight_flush_under_all_schedules() {
    let report = Explorer::with_bound(2)
        .from_env()
        .check("veloc drop drains", || {
            let c = cluster(1);
            {
                let b = ActiveBackend::spawn(c.clone(), 0).expect("no spawn fault injected");
                b.enqueue_flush(
                    "ck/v1/r0".into(),
                    Bytes::from_static(b"x"),
                    "ck".into(),
                    1,
                    Recorder::disabled(),
                );
            }
            assert!(
                c.pfs().exists("ck/v1/r0"),
                "acknowledged checkpoint lost on teardown"
            );
        });
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
    assert_eq!(report.truncated, 0);
}

/// Full client: checkpoint (which begins with an implicit checkpoint_wait
/// on the previous flush), a second checkpoint racing the first flush, then
/// restart after the drain. The restored bytes must come from the newest
/// acknowledged checkpoint under every schedule.
#[test]
fn checkpoint_restart_races_the_flush_thread() {
    let report = Explorer::with_bound(1)
        .from_env()
        .check("veloc checkpoint vs flush", || {
            let c = cluster(1);
            let cl = Client::init(
                c.clone(),
                0,
                Config {
                    mode: Mode::Single,
                    async_flush: true,
                },
            );
            assert!(cl.async_flush_active());
            let r = VecRegion::new(vec![1u64]);
            cl.protect(0, std::sync::Arc::new(r.clone()));
            cl.checkpoint("ck", 1).unwrap();
            *r.lock() = vec![2u64];
            cl.checkpoint("ck", 2).unwrap();
            cl.checkpoint_wait();
            assert_eq!(cl.latest_version("ck"), Some(2));
            *r.lock() = vec![0u64];
            cl.restart("ck", 2).unwrap();
            assert_eq!(*r.lock(), vec![2u64]);
            cl.finalize();
        });
    assert_eq!(report.truncated, 0);
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
}
