//! Exploration of the simmpi rendezvous/agreement protocol under
//! mid-operation process kill (ISSUE protocol (c)): two participants enter
//! a fault-tolerant agreement over a three-rank group while the third rank
//! is killed concurrently. ULFM semantics require both survivors to
//! complete — with the failure acknowledged — under every interleaving of
//! the contribution, the kill, and the combine/publish steps.

use std::sync::Arc;

use bytes::Bytes;
use cluster::{Cluster, ClusterConfig, TimeScale};
use modelcheck::Explorer;
use simmpi::rendezvous::{purpose, RendezvousKey};
use simmpi::router::Router;

fn router(n: usize) -> Arc<Router> {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    Router::new(Cluster::new(cfg))
}

fn key() -> RendezvousKey {
    RendezvousKey {
        comm: 0,
        epoch: 0,
        purpose: purpose::AGREE,
        seq: 1,
    }
}

fn sum_combine(parts: &[(usize, Bytes)]) -> Bytes {
    let s: u64 = parts
        .iter()
        .map(|(_, b)| u64::from_le_bytes(b[..8].try_into().unwrap()))
        .sum();
    Bytes::copy_from_slice(&s.to_le_bytes())
}

fn contrib(v: u64) -> Bytes {
    Bytes::copy_from_slice(&v.to_le_bytes())
}

/// The ISSUE scenario: ranks 0 and 1 rendezvous over group [0, 1, 2] while
/// rank 2 is killed mid-operation. Both must return Ok with
/// `failures_observed == [2]`, the combined value must include exactly the
/// two live contributions, and the table entry must be retired.
///
/// Rank 0 runs on a spawned task; rank 1's agreement runs on the main task
/// after it issues the kill, so rank 0's contribution races both the kill
/// and the combine/publish step. (Two tasks, not three: non-preemptive
/// context switches at blocking points branch freely, so a third task makes
/// the bounded DFS intractable without adding coverage here.)
#[test]
fn survivors_complete_when_third_rank_is_killed_mid_operation() {
    let report = Explorer::with_bound(2)
        .from_env()
        .check("rendezvous under kill", || {
            let r = router(3);
            let group = [0usize, 1, 2];
            let r0 = Arc::clone(&r);
            let t = loom::thread::spawn(move || {
                r0.rendezvous(key(), 0, &group, contrib(10), sum_combine)
            });
            // The kill races rank 0's contribution and the combine.
            r.kill(2);
            let mine = r
                .rendezvous(key(), 1, &group, contrib(11), sum_combine)
                .expect("survivor must complete");
            let theirs = t.join().unwrap().expect("survivor must complete");
            for out in [mine, theirs] {
                assert_eq!(
                    u64::from_le_bytes(out.value[..8].try_into().unwrap()),
                    21,
                    "combined value must hold exactly the live contributions"
                );
                assert_eq!(out.failures_observed, vec![2]);
            }
            assert_eq!(r.agreements_in_flight(), 0, "entry must be retired");
        });
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
    assert_eq!(report.truncated, 0);
}

/// Killing a *participant* mid-operation: the victim observes `Killed`, the
/// survivor completes with the failure acknowledged — under every schedule,
/// including the one where the victim contributes, the kill lands, and the
/// survivor combines the (still valid) dead rank's contribution.
#[test]
fn killed_participant_unblocks_and_survivor_completes() {
    let report = Explorer::with_bound(1)
        .from_env()
        .check("rendezvous participant kill", || {
            let r = router(2);
            let group = [0usize, 1];
            let r1 = Arc::clone(&r);
            let victim = loom::thread::spawn(move || {
                r1.rendezvous(key(), 1, &group, contrib(5), sum_combine)
            });
            r.kill(1);
            let survivor = r.rendezvous(key(), 0, &group, contrib(7), sum_combine);
            let out = survivor.expect("survivor must complete");
            assert_eq!(out.failures_observed, vec![1]);
            // The dead rank's contribution, if deposited before the kill, is
            // still legal input; the sum is 7 or 12 but never garbage.
            let v = u64::from_le_bytes(out.value[..8].try_into().unwrap());
            assert!(v == 7 || v == 12, "impossible combined value {v}");
            match victim.join().unwrap() {
                // Either the victim completed before its death was published...
                Ok(out) => assert_eq!(out.failures_observed, vec![1]),
                // ...or it observed its own death.
                Err(e) => assert_eq!(e, simmpi::MpiError::Killed),
            }
        });
    assert!(report.exhaustive, "expected exhaustive DFS: {report:?}");
    assert_eq!(report.truncated, 0);
}
