//! Self-tests of the exploration machinery itself: known-racy and
//! known-deadlocking programs must be caught, clean programs must pass
//! exhaustively, and everything must be deterministic for a fixed seed.

use std::sync::Arc;

use loom::sync::atomic::{AtomicU64, Ordering};
use modelcheck::Explorer;
use parking_lot::Mutex;

/// Classic lost update: two tasks do a non-atomic read-modify-write. A
/// single preemption between the load and the store loses one increment.
#[test]
fn finds_lost_update_with_one_preemption() {
    let failure = Explorer::with_bound(1).explore_expect_failure("lost update", || {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let t = loom::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(
        failure.message.contains("lost update"),
        "got: {}",
        failure.message
    );
    assert!(!failure.schedule.is_empty());
}

/// The same program with an atomic RMW is correct — and the exploration
/// must prove it exhaustively within the bound.
#[test]
fn atomic_increment_is_clean_and_exhaustive() {
    let report = Explorer::with_bound(2).check("atomic increment", || {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let t = loom::thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.exhaustive, "expected exhaustive DFS, got {report:?}");
    assert!(report.executions > 1, "must explore more than one schedule");
    assert_eq!(report.truncated, 0);
}

/// ABBA lock ordering: one preemption between the two acquires deadlocks.
/// The runtime must detect it (no runnable task) rather than hang.
#[test]
fn detects_abba_deadlock() {
    let failure = Explorer::with_bound(1).explore_expect_failure("ABBA deadlock", || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        });
        let _ga = a.lock();
        let _gb = b.lock();
        drop(_gb);
        drop(_ga);
        t.join().unwrap();
    });
    assert!(
        failure.message.contains("deadlock"),
        "expected deadlock report, got: {}",
        failure.message
    );
}

/// A condvar consumer with a timed retry loop must terminate: the timeout
/// is promoted only when nothing else can run, and the notify wakes it.
#[test]
fn condvar_handoff_is_clean() {
    let report = Explorer::with_bound(2).check("condvar handoff", || {
        let state = Arc::new((Mutex::new(false), parking_lot::Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = loom::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*state;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, std::time::Duration::from_millis(250));
        }
        drop(done);
        t.join().unwrap();
    });
    assert!(report.exhaustive);
    assert_eq!(report.truncated, 0);
}

/// Exploration is deterministic: same program, same knobs, same seed →
/// identical execution counts and failure schedule.
#[test]
fn exploration_is_deterministic_for_a_seed() {
    let run = || {
        let mut ex = Explorer::with_bound(1);
        ex.seed = 42;
        ex.explore(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&counter);
            let t = loom::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        })
    };
    let (r1, r2) = (run(), run());
    assert_eq!(r1.executions, r2.executions);
    let (f1, f2) = (r1.failure.unwrap(), r2.failure.unwrap());
    assert_eq!(f1.execution, f2.execution);
    assert_eq!(f1.schedule.len(), f2.schedule.len());
    for (c1, c2) in f1.schedule.iter().zip(f2.schedule.iter()) {
        assert_eq!(c1.chosen, c2.chosen);
        assert_eq!(c1.runnable, c2.runnable);
    }
}

/// The modeled channel (crossbeam shim) delivers everything exactly once
/// under every in-bound schedule.
#[test]
fn channel_delivery_is_exact_under_all_schedules() {
    let report = Explorer::with_bound(1).check("channel delivery", || {
        let (tx, rx) = crossbeam::channel::unbounded::<u32>();
        let t = loom::thread::spawn(move || {
            for v in 0..3 {
                tx.send(v).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, vec![0, 1, 2]);
        assert!(rx.try_recv().is_err(), "no duplicated deliveries");
    });
    assert!(report.exhaustive);
}
