//! Systematic interleaving exploration for the workspace's concurrent core.
//!
//! Drives the deterministic-execution runtime in `shims/loom` (which the
//! `parking_lot` / `crossbeam` shims and the `loom::sync::atomic` /
//! `loom::thread` facades hook into) with two schedulers:
//!
//! - **Bounded DFS** ([`DfsScheduler`]): depth-first enumeration of every
//!   schedule with at most [`Explorer::preemption_bound`] preemptions — the
//!   CHESS observation that almost all concurrency bugs manifest with one
//!   or two preemptions makes this both exhaustive-within-bound and
//!   tractable. Each execution records its decision trace; the explorer
//!   backtracks the deepest decision with an untried, in-budget sibling and
//!   replays that prefix.
//! - **Seeded random walks** ([`RandomScheduler`]): a splitmix64-seeded
//!   fallback sampling schedules *above* the preemption bound, so rare
//!   deep-preemption bugs still have a detection channel. Deterministic for
//!   a given [`Explorer::seed`].
//!
//! A failure (task panic, deadlock detected by the runtime, or an assertion
//! in the test closure) aborts exploration and is reported as a [`Failure`]
//! carrying the full schedule trace — enough to eyeball the interleaving or
//! replay it by prefix. The protocol suites live in `tests/`.

use loom::rt::{self, Choice, Scheduler, TaskId};

/// Continue the running task if it can continue, else the lowest runnable
/// id. The DFS's "no preemption" spine: prefixes only ever diverge from it
/// at explicitly chosen points, which is what makes replay cheap.
fn default_pick(runnable: &[TaskId], current: Option<TaskId>) -> TaskId {
    current.unwrap_or(runnable[0])
}

/// Replays a decision prefix, then follows the default policy.
pub struct DfsScheduler {
    prefix: Vec<TaskId>,
    step: usize,
}

impl DfsScheduler {
    #[must_use]
    pub fn new(prefix: Vec<TaskId>) -> Self {
        DfsScheduler { prefix, step: 0 }
    }
}

impl Scheduler for DfsScheduler {
    fn pick(&mut self, runnable: &[TaskId], current: Option<TaskId>) -> TaskId {
        let i = self.step;
        self.step += 1;
        if let Some(&want) = self.prefix.get(i) {
            if runnable.contains(&want) {
                return want;
            }
            // The program under test was nondeterministic beyond the
            // schedule (should not happen for modeled code); fall back to
            // the default policy rather than wedge.
        }
        default_pick(runnable, current)
    }
}

/// splitmix64: tiny, seedable, good enough for schedule sampling.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Picks uniformly-ish random runnable tasks, with a bias toward letting the
/// current task continue (long straight runs reach deep program points that
/// pure uniform choice rarely does).
pub struct RandomScheduler {
    rng: SplitMix64,
}

impl RandomScheduler {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SplitMix64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, runnable: &[TaskId], current: Option<TaskId>) -> TaskId {
        let r = self.rng.next();
        if let Some(c) = current {
            if r & 1 == 0 {
                return c;
            }
        }
        runnable[(r >> 1) as usize % runnable.len()]
    }
}

/// A failing execution, with everything needed to understand and replay it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Panic message / deadlock report from the runtime.
    pub message: String,
    /// 0-based index of the failing execution within the exploration.
    pub execution: usize,
    /// The schedule that produced it.
    pub schedule: Vec<Choice>,
    /// Task names by id, for rendering.
    pub task_names: Vec<String>,
}

impl Failure {
    /// Human-readable rendering: the message plus the preemption points of
    /// the failing schedule (full traces run to hundreds of forced steps;
    /// the preemptions are the informative part).
    #[must_use]
    pub fn render(&self) -> String {
        let name = |id: TaskId| {
            self.task_names
                .get(id)
                .map_or_else(|| format!("task-{id}"), Clone::clone)
        };
        let mut out = format!(
            "modelcheck failure (execution #{}):\n  {}\n  schedule ({} steps, switches shown):\n",
            self.execution,
            self.message,
            self.schedule.len()
        );
        for c in &self.schedule {
            if c.is_preemption() || c.current.is_none() {
                let from = c.current.map_or_else(|| "-".to_string(), name);
                out.push_str(&format!(
                    "    step {:>4}: {} -> {}  (runnable: {:?})\n",
                    c.step,
                    from,
                    name(c.chosen),
                    c.runnable
                ));
            }
        }
        out
    }
}

/// Outcome of one [`Explorer::explore`] call.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run (DFS + random).
    pub executions: usize,
    /// The DFS enumerated *every* schedule within the preemption bound
    /// (i.e. it terminated by exhaustion, not by the execution cap).
    pub exhaustive: bool,
    /// Executions cut short by the step budget (inconclusive, not failing).
    pub truncated: usize,
    /// First failure found, if any. Exploration stops at the first failure.
    pub failure: Option<Failure>,
    /// Longest schedule seen, for tuning step budgets.
    pub max_steps_seen: u64,
}

/// Exploration driver; all knobs are plain public fields.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Maximum preemptive context switches per schedule in the DFS phase.
    pub preemption_bound: usize,
    /// Cap on DFS executions; hitting it forfeits exhaustiveness.
    pub max_dfs_executions: usize,
    /// Random-walk executions run after the DFS phase.
    pub random_executions: usize,
    /// Seed for the random phase (the DFS phase is seed-independent).
    pub seed: u64,
    /// Per-execution schedule-point budget; overruns count as `truncated`.
    pub max_steps: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            preemption_bound: 2,
            max_dfs_executions: 20_000,
            random_executions: 200,
            seed: 0x5eed_cafe,
            max_steps: 50_000,
        }
    }
}

impl Explorer {
    /// The default exploration, downscoped to `bound` preemptions.
    #[must_use]
    pub fn with_bound(preemption_bound: usize) -> Self {
        Explorer {
            preemption_bound,
            ..Explorer::default()
        }
    }

    /// Apply `MC_PREEMPTION_BOUND` / `MC_DFS_CAP` / `MC_RANDOM_EXECUTIONS` /
    /// `MC_SEED` environment overrides (used by `scripts/ci.sh` to run the
    /// suite deeper than the in-tree defaults).
    #[must_use]
    pub fn from_env(mut self) -> Self {
        fn get(name: &str) -> Option<u64> {
            std::env::var(name).ok()?.parse().ok()
        }
        if let Some(v) = get("MC_PREEMPTION_BOUND") {
            self.preemption_bound = v as usize;
        }
        if let Some(v) = get("MC_DFS_CAP") {
            self.max_dfs_executions = v as usize;
        }
        if let Some(v) = get("MC_RANDOM_EXECUTIONS") {
            self.random_executions = v as usize;
        }
        if let Some(v) = get("MC_SEED") {
            self.seed = v;
        }
        self
    }

    /// Explore `f` under every in-bound schedule (then random walks), up to
    /// the configured caps. Stops at the first failure.
    pub fn explore<F: Fn()>(&self, f: F) -> Report {
        let mut report = Report {
            executions: 0,
            exhaustive: false,
            truncated: 0,
            failure: None,
            max_steps_seen: 0,
        };
        let mut prefix: Vec<TaskId> = Vec::new();
        loop {
            if report.executions >= self.max_dfs_executions {
                break; // DFS budget exhausted; not exhaustive
            }
            let exec = rt::run_one(
                Box::new(DfsScheduler::new(prefix.clone())),
                self.max_steps,
                &f,
            );
            let idx = report.executions;
            report.executions += 1;
            report.max_steps_seen = report.max_steps_seen.max(exec.steps);
            if exec.truncated {
                report.truncated += 1;
            } else if let Some(message) = exec.failure {
                report.failure = Some(Failure {
                    message,
                    execution: idx,
                    schedule: exec.trace,
                    task_names: exec.task_names,
                });
                return report;
            }
            match self.backtrack(&exec.trace) {
                Some(next) => prefix = next,
                None => {
                    report.exhaustive = true;
                    break;
                }
            }
        }
        // Random phase: sample above the bound (and past any DFS cap).
        for k in 0..self.random_executions {
            let exec = rt::run_one(
                Box::new(RandomScheduler::new(
                    self.seed ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                )),
                self.max_steps,
                &f,
            );
            let idx = report.executions;
            report.executions += 1;
            report.max_steps_seen = report.max_steps_seen.max(exec.steps);
            if exec.truncated {
                report.truncated += 1;
            } else if let Some(message) = exec.failure {
                report.failure = Some(Failure {
                    message,
                    execution: idx,
                    schedule: exec.trace,
                    task_names: exec.task_names,
                });
                return report;
            }
        }
        report
    }

    /// Explore and panic (with the rendered schedule) on failure — the
    /// affirmative form the protocol suites use.
    pub fn check<F: Fn()>(&self, what: &str, f: F) -> Report {
        let report = self.explore(f);
        if let Some(failure) = &report.failure {
            panic!("{what}: {}", failure.render());
        }
        report
    }

    /// Explore expecting a failure (mutant tests); panics if every schedule
    /// passes.
    pub fn explore_expect_failure<F: Fn()>(&self, what: &str, f: F) -> Failure {
        let report = self.explore(f);
        report.failure.unwrap_or_else(|| {
            panic!(
                "{what}: expected a failing interleaving, but {} executions passed (exhaustive: {})",
                report.executions, report.exhaustive
            )
        })
    }

    /// Find the deepest decision in `trace` with an untried sibling whose
    /// choice keeps the schedule within the preemption budget, and return
    /// the replay prefix taking it. `None` means the in-bound schedule tree
    /// is exhausted.
    ///
    /// Sibling order at each decision is canonical: the default pick first,
    /// then remaining runnable ids ascending — matching what a fresh replay
    /// of the prefix will reproduce, which is what makes DFS over replayed
    /// prefixes sound.
    fn backtrack(&self, trace: &[Choice]) -> Option<Vec<TaskId>> {
        let mut acc = 0usize;
        let cumulative: Vec<usize> = trace
            .iter()
            .map(|c| {
                if c.is_preemption() {
                    acc += 1;
                }
                acc
            })
            .collect();
        for i in (0..trace.len()).rev() {
            let c = &trace[i];
            if c.runnable.len() < 2 {
                continue;
            }
            let before = if i == 0 { 0 } else { cumulative[i - 1] };
            let default = default_pick(&c.runnable, c.current);
            let mut order: Vec<TaskId> = Vec::with_capacity(c.runnable.len());
            order.push(default);
            order.extend(c.runnable.iter().copied().filter(|&t| t != default));
            let pos = order
                .iter()
                .position(|&t| t == c.chosen)
                .expect("chosen task is runnable");
            for &cand in &order[pos + 1..] {
                let extra = usize::from(matches!(c.current, Some(cur) if cand != cur));
                if before + extra <= self.preemption_bound {
                    let mut next: Vec<TaskId> = trace[..i].iter().map(|c| c.chosen).collect();
                    next.push(cand);
                    return Some(next);
                }
            }
        }
        None
    }
}
