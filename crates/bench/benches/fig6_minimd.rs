//! Figure 6 benchmarks: MiniMD under the integrated framework across rank
//! counts, plus per-phase microbenchmarks (force kernel, neighbor build).

use std::sync::Arc;

use apps::minimd::{atoms, force, neighbor};
use apps::MiniMd;
use bench::bench_cluster;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience::{run_experiment, ExperimentConfig, Strategy};
use simmpi::FaultPlan;

fn fig6_framework_weak_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_minimd_weak_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for ranks in [2usize, 4] {
        for strategy in [Strategy::KokkosResilience, Strategy::FenixKokkosResilience] {
            let nodes = if strategy.uses_fenix() {
                ranks + 1
            } else {
                ranks
            };
            let cluster = bench_cluster(nodes);
            let app = MiniMd::new([3, 3, 3], 15);
            let cfg = ExperimentConfig {
                backend: Default::default(),
                strategy,
                spares: 1,
                checkpoints: 3,
                max_relaunches: 4,
                imr_policy: None,
                redundancy: None,
                fresh_storage: true,
                telemetry: None,
            };
            group.bench_with_input(
                BenchmarkId::new(strategy.label().replace(' ', "_"), ranks),
                &ranks,
                |b, _| b.iter(|| run_experiment(&cluster, &app, &cfg, Arc::new(FaultPlan::none()))),
            );
        }
    }
    group.finish();
}

fn phase_kernels(c: &mut Criterion) {
    // Standalone single-rank kernels: the compute behind the Force Compute
    // and Neighboring bars.
    let cells = [4usize, 4, 4];
    let slab = atoms::Slab::new(0, 1, cells);
    let init = atoms::generate_slab_atoms(0, 1, cells);
    let n = init.len();
    let mut x = vec![0.0f64; 3 * n];
    let ids: Vec<u64> = init.iter().map(|a| a.id).collect();
    for (i, a) in init.iter().enumerate() {
        x[3 * i..3 * i + 3].copy_from_slice(&a.pos);
    }
    let cutneigh = 2.8f64;
    let grid = neighbor::BinGrid::new(&slab, cutneigh);
    let cap = grid.suggested_bin_cap(atoms::DENSITY) * 2;
    let maxneigh = 192;
    let mut bc = vec![0u32; grid.total_bins()];
    let mut ba = vec![0u32; grid.total_bins() * cap];
    let mut ncount = vec![0u32; n];
    let mut nlist = vec![0u32; n * maxneigh];

    let mut group = c.benchmark_group("fig6_phase_kernels");
    group.bench_function("neighboring_bins_and_lists", |b| {
        b.iter(|| {
            neighbor::build_bins(&grid, &x, n, &mut bc, &mut ba, cap);
            neighbor::build_neighbors(
                &grid,
                &slab,
                &x,
                &ids,
                n,
                &bc,
                &ba,
                cap,
                cutneigh * cutneigh,
                &mut ncount,
                &mut nlist,
                maxneigh,
            )
        })
    });

    neighbor::build_bins(&grid, &x, n, &mut bc, &mut ba, cap);
    neighbor::build_neighbors(
        &grid,
        &slab,
        &x,
        &ids,
        n,
        &bc,
        &ba,
        cap,
        cutneigh * cutneigh,
        &mut ncount,
        &mut nlist,
        maxneigh,
    );
    let mut f = vec![0.0f64; 3 * n];
    group.bench_function("force_compute_lj", |b| {
        b.iter(|| force::compute_lj(&slab, &x, n, &ncount, &nlist, maxneigh, 6.25, &mut f))
    });
    group.finish();
}

criterion_group!(fig6, fig6_framework_weak_scaling, phase_kernels);
criterion_main!(fig6);
