//! Telemetry overhead on the Heatdis experiment loop.
//!
//! Three configurations of the same fault-free Fenix+KR Heatdis run:
//!
//! * `disabled` — `ExperimentConfig::telemetry = None`, the default. Every
//!   layer still holds `Recorder` handles; they must all short-circuit.
//!   Acceptance (ISSUE): ≤5% overhead vs. the pre-telemetry baseline,
//!   which this configuration *is* — compare against `traced` to see the
//!   cost the flag buys.
//! * `traced` — a live hub recording the event stream (MPI-call tracing
//!   still off, its own default).
//! * `traced_mpi_calls` — additionally records every MPI call, the
//!   high-volume worst case.

use std::sync::Arc;

use apps::Heatdis;
use bench::bench_cluster;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience::{run_experiment, ExperimentConfig, Strategy};
use simmpi::FaultPlan;
use telemetry::{Telemetry, TelemetryConfig};

fn heatdis_cfg(telemetry: Option<Telemetry>) -> ExperimentConfig {
    ExperimentConfig {
        backend: Default::default(),
        strategy: Strategy::FenixKokkosResilience,
        spares: 1,
        checkpoints: 6,
        max_relaunches: 2,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry,
    }
}

fn telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead_heatdis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    let make_tel = |mpi: bool| {
        Telemetry::new(TelemetryConfig {
            record_mpi_calls: mpi,
            ..TelemetryConfig::default()
        })
    };
    type TelFactory = Box<dyn Fn() -> Option<Telemetry>>;
    let variants: [(&str, TelFactory); 3] = [
        ("disabled", Box::new(|| None)),
        ("traced", Box::new(move || Some(make_tel(false)))),
        ("traced_mpi_calls", Box::new(move || Some(make_tel(true)))),
    ];

    for (name, telemetry) in &variants {
        let cluster = bench_cluster(5);
        let app = Heatdis::fixed(128 * 1024, 128, 30);
        group.bench_with_input(BenchmarkId::new("heatdis", name), name, |b, _| {
            b.iter(|| {
                // A fresh hub per iteration: rings stay bounded and the
                // registration cost is part of what the flag buys.
                let cfg = heatdis_cfg(telemetry());
                run_experiment(&cluster, &app, &cfg, Arc::new(FaultPlan::none()))
            })
        });
    }
    group.finish();
}

criterion_group!(overhead, telemetry_overhead);
criterion_main!(overhead);
