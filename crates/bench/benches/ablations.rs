//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * checkpoint-interval sweep ("flexibility is key": the optimal interval
//!   is application-dependent);
//! * IMR vs VeloC checkpoint commit cost against data size (the Figure 5
//!   crossover);
//! * spare-count sensitivity of the Fenix run loop;
//! * collective-operation cost on the simulated MPI (substrate baseline);
//! * single- vs collective-mode restart agreement.

use std::sync::Arc;

use apps::Heatdis;
use bench::bench_cluster;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience::{run_experiment, ExperimentConfig, Strategy};
use simmpi::{FaultPlan, ReduceOp, Universe, UniverseConfig};

fn checkpoint_interval_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_checkpoint_interval");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for checkpoints in [2u64, 6, 15] {
        let cluster = bench_cluster(5);
        let app = Heatdis::fixed(256 * 1024, 128, 30);
        let cfg = ExperimentConfig {
            backend: Default::default(),
            strategy: Strategy::FenixKokkosResilience,
            spares: 1,
            checkpoints,
            max_relaunches: 4,
            imr_policy: None,
            redundancy: None,
            fresh_storage: true,
            telemetry: None,
        };
        group.bench_with_input(
            BenchmarkId::new("checkpoints", checkpoints),
            &checkpoints,
            |b, _| b.iter(|| run_experiment(&cluster, &app, &cfg, Arc::new(FaultPlan::none()))),
        );
    }
    group.finish();
}

fn imr_vs_veloc_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_imr_vs_veloc_commit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for kb in [64usize, 512] {
        for strategy in [Strategy::FenixVeloc, Strategy::FenixImr] {
            let cluster = bench_cluster(5);
            let app = Heatdis::fixed(kb * 1024, 128, 12);
            let cfg = ExperimentConfig {
                backend: Default::default(),
                strategy,
                spares: 1,
                checkpoints: 6,
                max_relaunches: 4,
                imr_policy: None,
                redundancy: None,
                fresh_storage: true,
                telemetry: None,
            };
            group.bench_with_input(
                BenchmarkId::new(strategy.label().replace(' ', "_"), kb),
                &kb,
                |b, _| b.iter(|| run_experiment(&cluster, &app, &cfg, Arc::new(FaultPlan::none()))),
            );
        }
    }
    group.finish();
}

fn spare_count_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_spare_count");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for spares in [0usize, 1, 3] {
        let cluster = bench_cluster(4 + spares);
        let app = Heatdis::fixed(128 * 1024, 128, 20);
        let cfg = ExperimentConfig {
            backend: Default::default(),
            strategy: Strategy::FenixKokkosResilience,
            spares,
            checkpoints: 4,
            max_relaunches: 4,
            imr_policy: None,
            redundancy: None,
            fresh_storage: true,
            telemetry: None,
        };
        group.bench_with_input(BenchmarkId::new("spares", spares), &spares, |b, _| {
            b.iter(|| run_experiment(&cluster, &app, &cfg, Arc::new(FaultPlan::none())))
        });
    }
    group.finish();
}

fn collective_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_simmpi_collectives");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for ranks in [4usize, 8] {
        let cluster = bench_cluster(ranks);
        group.bench_with_input(BenchmarkId::new("allreduce_x100", ranks), &ranks, |b, _| {
            b.iter(|| {
                let report = Universe::launch(
                    &cluster,
                    UniverseConfig::default(),
                    Arc::new(FaultPlan::none()),
                    |ctx| {
                        let w = ctx.world();
                        for i in 0..100u64 {
                            w.allreduce_scalar(i + ctx.rank() as u64, ReduceOp::Sum)?;
                        }
                        Ok(())
                    },
                );
                assert!(report.all_ok());
            })
        });
    }
    group.finish();
}

fn restart_agreement_modes(c: &mut Criterion) {
    // Single mode + manual reduction (the paper's pattern) vs collective
    // VeloC agreement.
    use kokkos_resilience::{BackendKind, CheckpointFilter, Context, ContextConfig};

    let mut group = c.benchmark_group("ablation_restart_agreement");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for backend in [BackendKind::VelocSingle, BackendKind::VelocCollective] {
        let cluster = bench_cluster(4);
        group.bench_function(format!("{backend:?}"), |b| {
            b.iter(|| {
                let report = Universe::launch(
                    &cluster,
                    UniverseConfig::default(),
                    Arc::new(FaultPlan::none()),
                    |ctx| {
                        let kr = Context::new(
                            ctx.cluster(),
                            ctx.world().clone(),
                            ContextConfig {
                                name: "agree".into(),
                                filter: CheckpointFilter::Never,
                                backend,
                                aliases: vec![],
                            },
                        );
                        for _ in 0..20 {
                            kr.latest_version("loop")?;
                        }
                        Ok(())
                    },
                );
                assert!(report.all_ok());
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    checkpoint_interval_sweep,
    imr_vs_veloc_commit,
    spare_count_sensitivity,
    collective_baseline,
    restart_agreement_modes
);
criterion_main!(ablations);
