//! Restart-latency budget: full-frame restore vs an 8-frame delta-chain
//! walk (parallel and sequential payload verification), plus the CRC
//! kernel itself (slice-by-16 vs the bitwise oracle).
//!
//! Beyond the criterion console table, this bench writes
//! `target/BENCH_restart.json` — median nanoseconds, bytes restored, and
//! the per-stage read/verify/apply medians from [`veloc::RestartReport`] —
//! which `scripts/bench_gate.sh` compares against the committed baseline
//! (`BENCH_restart.json` at the repo root, knob `RESTART_MAX_REGRESSION_PCT`)
//! and uses to assert the slice-by-16 CRC is measurably faster than the
//! bitwise implementation it replaced. The chain8 vs chain8_seq pair is
//! the multi-core scaling configuration: identical work, worker fan-out 4
//! vs 1.

use std::sync::Arc;
use std::time::Instant;

use cluster::{Cluster, ClusterConfig, TimeScale};
use criterion::{black_box, Criterion};
use veloc::{serial, Client, Config, Mode, VecRegion};

/// Protected state: enough payload that chain verification clears the
/// parallel-restart threshold by a wide margin.
const REGIONS: usize = 32;
const REGION_BYTES: usize = 128 * 1024;
/// Delta frames stacked on the full base for the chain configs (8 frames
/// walked in total).
const CHAIN_DELTAS: usize = 7;
/// Regions dirtied before each delta checkpoint.
const DIRTY_PER_STEP: usize = 2;
/// Buffer size for the CRC kernel configs.
const CRC_BYTES: usize = 1024 * 1024;
/// Samples for the JSON medians (one restart per sample).
const JSON_SAMPLES: usize = 41;
const JSON_WARMUP: usize = 10;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: 1,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    })
}

struct Scenario {
    client: Client,
    version: u64,
    name: String,
}

impl Scenario {
    /// Build the checkpoint history a restart config replays: one full
    /// frame, plus `deltas` incremental frames each covering
    /// `DIRTY_PER_STEP` regions.
    fn new(cl: &Cluster, name: &str, deltas: usize) -> Self {
        let client = Client::init(
            cl.clone(),
            0,
            Config {
                mode: Mode::Single,
                async_flush: false,
            },
        );
        let regions: Vec<VecRegion<u8>> = (0..REGIONS)
            .map(|i| VecRegion::new(vec![i as u8; REGION_BYTES]))
            .collect();
        for (i, r) in regions.iter().enumerate() {
            client.protect(i as u32, Arc::new(r.clone()));
        }
        let mut version = 1;
        client.checkpoint(name, version).expect("full checkpoint");
        for step in 0..deltas {
            for r in regions.iter().skip(step % REGIONS).take(DIRTY_PER_STEP) {
                let mut g = r.lock();
                if let Some(b) = g.first_mut() {
                    *b = b.wrapping_add(1);
                }
            }
            version += 1;
            client.checkpoint(name, version).expect("delta checkpoint");
        }
        Scenario {
            client,
            version,
            name: name.to_owned(),
        }
    }

    fn restart(&self, workers: usize) -> veloc::RestartReport {
        self.client
            .restart_with_workers(&self.name, self.version, workers)
            .expect("restart")
    }
}

struct RestartStats {
    median_ns: u64,
    bytes_restored: u64,
    frames_walked: usize,
    read_ns: u64,
    verify_ns: u64,
    apply_ns: u64,
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median wall time of one restart, plus per-stage medians from the
/// report itself.
fn measure_restart(s: &Scenario, workers: usize) -> RestartStats {
    for _ in 0..JSON_WARMUP {
        s.restart(workers);
    }
    let mut wall = Vec::with_capacity(JSON_SAMPLES);
    let mut read = Vec::with_capacity(JSON_SAMPLES);
    let mut verify = Vec::with_capacity(JSON_SAMPLES);
    let mut apply = Vec::with_capacity(JSON_SAMPLES);
    let mut last = veloc::RestartReport::default();
    for _ in 0..JSON_SAMPLES {
        let t = Instant::now();
        let report = s.restart(workers);
        wall.push(black_box(t.elapsed().as_nanos() as u64));
        read.push(report.read_ns);
        verify.push(report.verify_ns);
        apply.push(report.apply_ns);
        last = report;
    }
    RestartStats {
        median_ns: median(&mut wall),
        bytes_restored: last.bytes_restored,
        frames_walked: last.frames_walked,
        read_ns: median(&mut read),
        verify_ns: median(&mut verify),
        apply_ns: median(&mut apply),
    }
}

/// Median wall time of one CRC pass over a `CRC_BYTES` buffer.
fn measure_crc(f: impl Fn(&[u8]) -> u32) -> u64 {
    let data: Vec<u8> = (0..CRC_BYTES).map(|i| (i * 31 + 7) as u8).collect();
    for _ in 0..3 {
        black_box(f(&data));
    }
    let mut samples: Vec<u64> = (0..JSON_SAMPLES)
        .map(|_| {
            let t = Instant::now();
            black_box(f(&data));
            t.elapsed().as_nanos() as u64
        })
        .collect();
    median(&mut samples)
}

fn main() {
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("restart_latency");
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(200))
            .measurement_time(std::time::Duration::from_millis(800));
        let cl = cluster();
        let full = Scenario::new(&cl, "bench-full", 0);
        group.bench_function("restart/full", |b| b.iter(|| full.restart(4)));
        let chain = Scenario::new(&cl, "bench-chain", CHAIN_DELTAS);
        group.bench_function("restart/chain8-par4", |b| b.iter(|| chain.restart(4)));
        group.bench_function("restart/chain8-seq", |b| b.iter(|| chain.restart(1)));
        let data: Vec<u8> = (0..CRC_BYTES).map(|i| (i * 31 + 7) as u8).collect();
        group.bench_function("crc32/slice16-1m", |b| b.iter(|| serial::crc32(&data)));
        group.bench_function("crc32/bitwise-1m", |b| {
            b.iter(|| serial::crc32_bitwise(&data))
        });
        group.finish();
    }

    // Independent measurement pass for the machine-readable gate input.
    let mut lines = Vec::new();
    let cl = cluster();
    let configs: [(&str, Scenario, usize); 3] = [
        ("restart_full", Scenario::new(&cl, "json-full", 0), 4),
        (
            "restart_chain8",
            Scenario::new(&cl, "json-chain", CHAIN_DELTAS),
            4,
        ),
        (
            "restart_chain8_seq",
            Scenario::new(&cl, "json-chain-seq", CHAIN_DELTAS),
            1,
        ),
    ];
    for (json_name, scenario, workers) in &configs {
        let stats = measure_restart(scenario, *workers);
        println!(
            "{json_name:<20} median {:>10} ns ({} frames, {} bytes; read {} / verify {} / apply {} ns)",
            stats.median_ns,
            stats.frames_walked,
            stats.bytes_restored,
            stats.read_ns,
            stats.verify_ns,
            stats.apply_ns
        );
        lines.push(format!(
            "  {{\"name\":\"{json_name}\",\"median_ns\":{},\"bytes_restored\":{},\"frames_walked\":{},\"read_ns\":{},\"verify_ns\":{},\"apply_ns\":{}}}",
            stats.median_ns,
            stats.bytes_restored,
            stats.frames_walked,
            stats.read_ns,
            stats.verify_ns,
            stats.apply_ns
        ));
    }
    for (json_name, f) in [
        (
            "crc_bitwise_1m",
            &serial::crc32_bitwise as &dyn Fn(&[u8]) -> u32,
        ),
        ("crc_slice16_1m", &serial::crc32),
    ] {
        let median_ns = measure_crc(f);
        println!("{json_name:<20} median {median_ns:>10} ns ({CRC_BYTES} bytes)");
        lines.push(format!(
            "  {{\"name\":\"{json_name}\",\"median_ns\":{median_ns},\"bytes_hashed\":{CRC_BYTES}}}"
        ));
    }
    let json = format!(
        "{{\"bench\":\"restart_latency\",\"regions\":{REGIONS},\"region_bytes\":{REGION_BYTES},\"chain_deltas\":{CHAIN_DELTAS},\"configs\":[\n{}\n]}}\n",
        lines.join(",\n")
    );
    // Benches run with CWD = the package dir; anchor at the workspace root
    // so the CI gate finds the artifact under the shared target/.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _unused = std::fs::create_dir_all(&out);
    let path = out.join("BENCH_restart.json");
    std::fs::write(&path, json).expect("write bench json");
    println!("bench json written to {}", path.display());
}
