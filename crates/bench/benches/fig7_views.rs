//! Figure 7 benchmarks: the cost of automatic view detection,
//! classification, and the checkpoint serialization it drives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kokkos::capture::CaptureSession;
use kokkos::View;

fn capture_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_capture");
    // Cost of accessing views with and without an active capture session —
    // the overhead automatic detection adds to a region's first execution.
    let views: Vec<View<f64>> = (0..61).map(|i| View::new_1d(format!("v{i}"), 64)).collect();
    group.bench_function("access_61_views_uncaptured", |b| {
        b.iter(|| {
            for v in &views {
                std::hint::black_box(v.read().len());
            }
        })
    });
    group.bench_function("access_61_views_captured", |b| {
        b.iter(|| {
            let s = CaptureSession::new();
            s.record(|| {
                for v in &views {
                    std::hint::black_box(v.read().len());
                }
            });
            std::hint::black_box(s.unique_views().len())
        })
    });
    group.finish();
}

fn classification_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_classification");
    for n_views in [16usize, 64, 256] {
        let views: Vec<View<u64>> = (0..n_views)
            .map(|i| View::new_1d(format!("v{i}"), 16))
            .collect();
        let dups: Vec<View<u64>> = views
            .iter()
            .step_by(3)
            .map(|v| v.duplicate_handle(format!("{}@dup", v.label())))
            .collect();
        group.bench_with_input(BenchmarkId::new("dedup", n_views), &n_views, |b, _| {
            b.iter(|| {
                let s = CaptureSession::new();
                s.record(|| {
                    for v in &views {
                        let _ = v.read();
                    }
                    for d in &dups {
                        let _ = d.read();
                    }
                });
                std::hint::black_box(s.unique_views().len())
            })
        });
    }
    group.finish();
}

fn snapshot_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_snapshot");
    for kb in [64usize, 1024] {
        let v: View<f64> = View::new_1d("big", kb * 128);
        group.bench_with_input(BenchmarkId::new("snapshot_kb", kb), &kb, |b, _| {
            b.iter(|| std::hint::black_box(v.snapshot_bytes().len()))
        });
    }
    group.finish();
}

criterion_group!(
    fig7,
    capture_overhead,
    classification_scaling,
    snapshot_cost
);
criterion_main!(fig7);
