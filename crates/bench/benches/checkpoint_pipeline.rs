//! Synchronous checkpoint-pipeline cost: full-pack vs incremental (VCF2
//! delta frames) at 1%, 25%, and 100% dirty regions.
//!
//! Beyond the criterion console table, this bench writes
//! `target/BENCH_checkpoint.json` — median nanoseconds and steady-state
//! bytes written per configuration — which `scripts/bench_gate.sh`
//! compares against the committed baseline (`BENCH_checkpoint.json` at the
//! repo root) to fail CI on a >15% sync-checkpoint regression and to prove
//! the incremental pipeline's speedup claim (≥5× at 1-of-100 regions
//! dirty).

use std::time::Instant;

use cluster::{Cluster, ClusterConfig, TimeScale};
use criterion::{black_box, Criterion};
use std::sync::Arc;
use veloc::{Client, Config, Mode, VecRegion};

/// Protected state: `REGIONS` regions of `REGION_BYTES` each.
const REGIONS: usize = 100;
const REGION_BYTES: usize = 4 * 1024;
/// Scratch versions kept live while the loop runs (plus delta bases).
const KEEP: usize = 2;
/// Samples for the JSON medians (one checkpoint per sample).
const JSON_SAMPLES: usize = 41;
const JSON_WARMUP: usize = 10;

struct Pipeline {
    client: Client,
    regions: Vec<VecRegion<u8>>,
    version: u64,
    name: String,
    /// Force every frame full (the pre-incremental pipeline).
    full_only: bool,
    dirty: usize,
}

impl Pipeline {
    fn new(cluster: &Cluster, name: &str, full_only: bool, dirty: usize) -> Self {
        let client = Client::init(
            cluster.clone(),
            0,
            Config {
                mode: Mode::Single,
                async_flush: false,
            },
        );
        let regions: Vec<VecRegion<u8>> = (0..REGIONS)
            .map(|i| VecRegion::new(vec![i as u8; REGION_BYTES]))
            .collect();
        for (i, r) in regions.iter().enumerate() {
            client.protect(i as u32, Arc::new(r.clone()));
        }
        Pipeline {
            client,
            regions,
            version: 0,
            name: name.to_owned(),
            full_only,
            dirty,
        }
    }

    /// One application step + synchronous checkpoint. Only the first
    /// `dirty` regions are written, so the incremental pipeline emits a
    /// delta covering exactly that fraction. Scratch garbage collection
    /// runs every 16th step — amortized maintenance, not part of the
    /// per-commit latency, and rare enough that a 41-sample median is
    /// unaffected.
    fn step(&mut self) {
        for r in self.regions.iter().take(self.dirty) {
            let mut g = r.lock();
            if let Some(b) = g.first_mut() {
                *b = b.wrapping_add(1);
            }
        }
        if self.full_only {
            self.client.invalidate_deltas();
        }
        self.version += 1;
        self.client
            .checkpoint(&self.name, self.version)
            .expect("sync checkpoint");
        if self.version.is_multiple_of(16) {
            self.client.prune(&self.name, KEEP);
        }
    }

    /// Steady-state blob size on scratch for the newest version.
    fn bytes_written(&self, cluster: &Cluster) -> usize {
        let path = format!("{}/v{}/r0", self.name, self.version);
        cluster
            .scratch()
            .read(0, &path)
            .map(|(blob, _)| blob.len())
            .unwrap_or(0)
    }
}

/// Median wall-clock nanoseconds of one `step()` call.
fn measure_median_ns(p: &mut Pipeline) -> u64 {
    for _ in 0..JSON_WARMUP {
        p.step();
    }
    let mut samples: Vec<u64> = (0..JSON_SAMPLES)
        .map(|_| {
            let t = Instant::now();
            p.step();
            black_box(t.elapsed().as_nanos() as u64)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: 1,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    })
}

/// (json name, criterion label, full_only, dirty regions)
const CONFIGS: &[(&str, &str, bool, usize)] = &[
    ("full_pack", "full-pack/100pct-dirty", true, REGIONS),
    ("incremental_1pct", "incremental/1pct-dirty", false, 1),
    ("incremental_25pct", "incremental/25pct-dirty", false, 25),
    (
        "incremental_100pct",
        "incremental/100pct-dirty",
        false,
        REGIONS,
    ),
];

fn main() {
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("checkpoint_pipeline");
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(200))
            .measurement_time(std::time::Duration::from_millis(800));
        for &(_, label, full_only, dirty) in CONFIGS {
            let cl = cluster();
            let mut p = Pipeline::new(&cl, label, full_only, dirty);
            group.bench_function(label, |b| b.iter(|| p.step()));
        }
        group.finish();
    }

    // Independent measurement pass for the machine-readable gate input.
    let mut lines = Vec::new();
    for &(json_name, _, full_only, dirty) in CONFIGS {
        let cl = cluster();
        let mut p = Pipeline::new(&cl, json_name, full_only, dirty);
        let median_ns = measure_median_ns(&mut p);
        let bytes = p.bytes_written(&cl);
        println!("{json_name:<24} median {median_ns:>10} ns, {bytes:>7} bytes/frame");
        lines.push(format!(
            "  {{\"name\":\"{json_name}\",\"median_ns\":{median_ns},\"bytes_written\":{bytes}}}"
        ));
    }
    let json = format!(
        "{{\"bench\":\"checkpoint_pipeline\",\"regions\":{REGIONS},\"region_bytes\":{REGION_BYTES},\"configs\":[\n{}\n]}}\n",
        lines.join(",\n")
    );
    // Benches run with CWD = the package dir; anchor at the workspace root
    // so the CI gate finds the artifact under the shared target/.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _unused = std::fs::create_dir_all(&out);
    let path = out.join("BENCH_checkpoint.json");
    std::fs::write(&path, json).expect("write bench json");
    println!("bench json written to {}", path.display());
}
