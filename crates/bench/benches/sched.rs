//! DES scheduler throughput: schedules per second (ISSUE 9 satellite).
//!
//! Three layers of the deterministic backend's cost, measured separately:
//!
//! * `baton_handoff` — one yield/wake round-trip between two tasks on the
//!   raw [`simmpi::Scheduler`]: the per-event floor (heap push/pop, seeded
//!   tiebreak, condvar grant/park).
//! * `ring_16` / `ring_64` — one complete schedule: a full DES
//!   `Universe::launch` on a virtual-time cluster, ring exchange +
//!   allreduce per iteration. This is what the chaos campaign pays per
//!   explored schedule, so its inverse is the campaign's schedules/sec.
//!
//! Writes `target/BENCH_sched.json` (median ns per config); the committed
//! `BENCH_sched.json` at the repo root is the regression baseline enforced
//! by `scripts/bench_gate.sh`.

use std::sync::Arc;
use std::time::Instant;

use cluster::{Cluster, ClusterConfig};
use criterion::{black_box, Criterion};
use simmpi::{
    Backend, FaultPlan, MpiResult, RankCtx, ReduceOp, Scheduler, Universe, UniverseConfig,
};

const JSON_SAMPLES: usize = 21;
const JSON_WARMUP: usize = 3;
/// Yield round-trips per baton_handoff sample (amortizes thread spawn).
const HANDOFF_ROUNDS: u64 = 20_000;
/// Ring-exchange iterations per schedule.
const RING_ITERS: u64 = 8;

fn virtual_cluster(n: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        virtual_time: true,
        ..ClusterConfig::default()
    })
}

/// Two tasks alternating sleep-yields: 2 × `HANDOFF_ROUNDS` dispatched
/// events per call. Returns total ns.
fn baton_handoff() -> u64 {
    let clock = Arc::new(cluster::Clock::virtual_at(0));
    let s = Scheduler::new(2, 0xbeef, clock);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for task in 0..2 {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                s.wait_for_start(task);
                for _ in 0..HANDOFF_ROUNDS {
                    s.sleep(task, std::time::Duration::from_nanos(10));
                }
                s.finish(task);
            });
        }
        s.start();
    });
    black_box(t.elapsed().as_nanos() as u64)
}

/// One complete DES schedule: launch, run the ring workload, tear down.
fn ring_schedule(n: usize, seed: u64) -> u64 {
    let cluster = virtual_cluster(n);
    let t = Instant::now();
    let report = Universe::launch(
        &cluster,
        UniverseConfig {
            backend: Backend::Des { seed },
            ..UniverseConfig::default()
        },
        Arc::new(FaultPlan::none()),
        |ctx: &mut RankCtx| -> MpiResult<()> {
            let w = ctx.world();
            let (me, n) = (ctx.rank(), w.size());
            for i in 0..RING_ITERS {
                w.send((me + 1) % n, i, &(me as u64).to_le_bytes())?;
                let mut b = [0u8; 8];
                w.recv_into(Some((me + n - 1) % n), i, &mut b)?;
                w.allreduce_scalar(u64::from_le_bytes(b), ReduceOp::Sum)?;
            }
            Ok(())
        },
    );
    assert!(report.all_ok());
    black_box(t.elapsed().as_nanos() as u64)
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure(f: impl Fn() -> u64) -> u64 {
    for _ in 0..JSON_WARMUP {
        f();
    }
    median((0..JSON_SAMPLES).map(|_| f()).collect())
}

fn main() {
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("sched");
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(200))
            .measurement_time(std::time::Duration::from_millis(800));
        group.bench_function("ring-16/schedule", |b| b.iter(|| ring_schedule(16, 7)));
        group.finish();
    }

    // Machine-readable gate input (median ns per config).
    type Config<'a> = (&'a str, Box<dyn Fn() -> u64>);
    let configs: [Config; 3] = [
        ("baton_handoff", Box::new(baton_handoff)),
        ("ring_16", Box::new(|| ring_schedule(16, 7))),
        ("ring_64", Box::new(|| ring_schedule(64, 7))),
    ];
    let mut lines = Vec::new();
    for (name, f) in &configs {
        let median_ns = measure(f);
        let per_sec = 1_000_000_000 / median_ns.max(1);
        println!("{name:<16} median {median_ns:>12} ns  ({per_sec}/sec)");
        lines.push(format!(
            "  {{\"name\":\"{name}\",\"median_ns\":{median_ns}}}"
        ));
    }
    let json = format!(
        "{{\"bench\":\"sched\",\"handoff_rounds\":{HANDOFF_ROUNDS},\"ring_iters\":{RING_ITERS},\"configs\":[\n{}\n]}}\n",
        lines.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _unused = std::fs::create_dir_all(&out);
    let path = out.join("BENCH_sched.json");
    std::fs::write(&path, json).expect("write bench json");
    println!("bench json written to {}", path.display());
}
