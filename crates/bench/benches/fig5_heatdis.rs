//! Figure 5 benchmarks: Heatdis checkpoint overhead and recovery cost per
//! strategy, against data size and rank count.
//!
//! Criterion measures the full experiment wall time at instant model
//! timescale, so differences reflect algorithmic/protocol cost (copies,
//! serialization, message counts), not modeled sleeps. The *shape* across
//! strategies and sizes mirrors the paper's panels; the harness `fig5`
//! binary produces the modeled-time version.

use std::sync::Arc;

use apps::Heatdis;
use bench::bench_cluster;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience::{run_experiment, ExperimentConfig, Strategy};
use simmpi::FaultPlan;

fn cfg(strategy: Strategy) -> ExperimentConfig {
    ExperimentConfig {
        backend: Default::default(),
        strategy,
        spares: 1,
        checkpoints: 6,
        max_relaunches: 4,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry: None,
    }
}

fn fig5_data_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_left_data_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for kb in [64usize, 256, 1024] {
        for strategy in [
            Strategy::Unprotected,
            Strategy::KokkosResilience,
            Strategy::FenixKokkosResilience,
            Strategy::FenixImr,
        ] {
            let nodes = if strategy.uses_fenix() { 5 } else { 4 };
            let cluster = bench_cluster(nodes);
            let app = Heatdis::fixed(kb * 1024, 128, 30);
            group.bench_with_input(
                BenchmarkId::new(strategy.label().replace(' ', "_"), kb),
                &kb,
                |b, _| {
                    b.iter(|| {
                        run_experiment(&cluster, &app, &cfg(strategy), Arc::new(FaultPlan::none()))
                    })
                },
            );
        }
    }
    group.finish();
}

fn fig5_weak_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_right_weak_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for ranks in [2usize, 4, 8] {
        for strategy in [Strategy::KokkosResilience, Strategy::FenixKokkosResilience] {
            let nodes = if strategy.uses_fenix() {
                ranks + 1
            } else {
                ranks
            };
            let cluster = bench_cluster(nodes);
            let app = Heatdis::fixed(256 * 1024, 128, 30);
            group.bench_with_input(
                BenchmarkId::new(strategy.label().replace(' ', "_"), ranks),
                &ranks,
                |b, _| {
                    b.iter(|| {
                        run_experiment(&cluster, &app, &cfg(strategy), Arc::new(FaultPlan::none()))
                    })
                },
            );
        }
    }
    group.finish();
}

fn fig5_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_failure_recovery");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for strategy in [
        Strategy::KokkosResilience,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
    ] {
        let nodes = if strategy.uses_fenix() { 5 } else { 4 };
        let app = Heatdis::fixed(256 * 1024, 128, 30);
        group.bench_function(strategy.label().replace(' ', "_"), |b| {
            b.iter(|| {
                // A fresh fault plan per iteration so the kill re-fires.
                let cluster = bench_cluster(nodes);
                run_experiment(
                    &cluster,
                    &app,
                    &cfg(strategy),
                    Arc::new(FaultPlan::kill_at(2, "iter", 23)),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(fig5, fig5_data_scaling, fig5_weak_scaling, fig5_recovery);
criterion_main!(fig5);
