//! Redundancy-tier cost: encode/reconstruct throughput per mode (k=2,3
//! replication; XOR n+1; RS n+2) plus end-to-end recovery latency through
//! a four-rank universe.
//!
//! Beyond the criterion console table, this bench writes
//! `target/BENCH_redundancy.json` — low-water-mark nanoseconds per codec
//! operation — which `scripts/bench_gate.sh` compares against the
//! committed baseline (`BENCH_redundancy.json` at the repo root) to fail
//! CI on an encode/reconstruct regression beyond RED_MAX_REGRESSION_PCT.
//! The `recovery_*` medians ride along for the record but are not gated:
//! they time a collective across rank threads, which is scheduler-noisy.

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use cluster::{Cluster, ClusterConfig, TimeScale};
use criterion::{black_box, Criterion};
use parking_lot::Mutex;
use redstore::{codec, RedStore, RedundancyGroup, RedundancyMode};
use simmpi::{FaultPlan, Universe, UniverseConfig};

/// Codec-unit payload: one VCF2 frame's worth of protected state.
const PAYLOAD_BYTES: usize = 256 * 1024;
/// Smaller payload for the in-universe recovery collectives.
const RECOVERY_BYTES: usize = 64 * 1024;
/// Samples for the JSON medians.
const JSON_SAMPLES: usize = 41;
const JSON_WARMUP: usize = 10;
const RECOVERY_SAMPLES: usize = 15;
const RECOVERY_WARMUP: usize = 3;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + 7) as u8).collect()
}

/// One encode pass for `mode` over `data`, returning something derived
/// from the shards so the work cannot be optimized away.
fn encode_once(mode: RedundancyMode, data: &[u8]) -> usize {
    match mode {
        // Replication "encoding" is the k-1 peer copies the store ships.
        // black_box keeps the copies from folding into `data.len()`.
        RedundancyMode::Replicate { k } => (1..k).map(|_| black_box(data.to_vec()).len()).sum(),
        RedundancyMode::XorParity { width } => codec::xor_encode(data, width - 1)
            .expect("xor encode")
            .iter()
            .map(Vec::len)
            .sum(),
        RedundancyMode::ReedSolomon { width, parity } => {
            codec::rs_encode(data, width - parity, parity)
                .expect("rs encode")
                .iter()
                .map(Vec::len)
                .sum()
        }
    }
}

/// One worst-case reconstruct for `mode`: erase `tolerance()` shards (for
/// replication, the owner's copy) and rebuild the payload.
fn reconstruct_once(mode: RedundancyMode, data: &[u8]) -> Vec<u8> {
    match mode {
        RedundancyMode::Replicate { .. } => data.to_vec(),
        RedundancyMode::XorParity { width } => {
            let n = width - 1;
            let mut shards: Vec<Option<Vec<u8>>> = codec::xor_encode(data, n)
                .expect("xor encode")
                .into_iter()
                .map(Some)
                .collect();
            shards[0] = None;
            codec::xor_decode(&shards, n, data.len()).expect("xor decode")
        }
        RedundancyMode::ReedSolomon { width, parity } => {
            let n = width - parity;
            let mut shards: Vec<Option<Vec<u8>>> = codec::rs_encode(data, n, parity)
                .expect("rs encode")
                .into_iter()
                .map(Some)
                .collect();
            for s in shards.iter_mut().take(parity) {
                *s = None;
            }
            codec::rs_decode(&shards, n, parity, data.len()).expect("rs decode")
        }
    }
}

/// Minimum wall-clock nanoseconds of `op` across the sample budget — the
/// low-water mark. For a short deterministic operation the minimum is the
/// least scheduler-sensitive estimator, which is what a CI regression
/// gate on a shared machine needs (medians here swing ±30% with load).
fn measure_min_ns<T>(mut op: impl FnMut() -> T) -> u64 {
    for _ in 0..JSON_WARMUP {
        black_box(op());
    }
    (0..JSON_SAMPLES)
        .map(|_| {
            let t = Instant::now();
            black_box(op());
            t.elapsed().as_nanos() as u64
        })
        .min()
        .expect("at least one sample")
}

/// Median latency of the full recovery collective — rank 0's store is
/// wiped (a replacement spare starts empty) and `restore` feeds it back —
/// measured on rank 0 inside one four-rank, four-node universe.
fn measure_recovery_median_ns(mode: RedundancyMode) -> u64 {
    let cluster = Cluster::new(ClusterConfig {
        nodes: 4,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    });
    let median = Arc::new(Mutex::new(0u64));
    let out = Arc::clone(&median);
    let report = Universe::launch(
        &cluster,
        UniverseConfig::default(),
        Arc::new(FaultPlan::none()),
        move |ctx| {
            let comm = ctx.world().clone();
            let store = RedStore::new();
            let group = RedundancyGroup::new(Arc::clone(&store), &comm, Some(mode));
            let me = comm.rank();
            let blob = Bytes::from(payload(RECOVERY_BYTES));
            let mut samples = Vec::with_capacity(RECOVERY_SAMPLES);
            for round in 0..(RECOVERY_WARMUP + RECOVERY_SAMPLES) as u64 {
                group
                    .store(0, round + 1, blob.clone())
                    .expect("store commits");
                comm.barrier()?;
                if me == 0 {
                    store.clear();
                }
                comm.barrier()?;
                let t = Instant::now();
                group.restore(0, &[0]).expect("restore succeeds");
                let ns = t.elapsed().as_nanos() as u64;
                if round >= RECOVERY_WARMUP as u64 {
                    samples.push(ns);
                }
            }
            if me == 0 {
                samples.sort_unstable();
                *out.lock() = samples[samples.len() / 2];
            }
            Ok(())
        },
    );
    for o in &report.outcomes {
        assert!(o.result.is_ok(), "rank {} failed: {:?}", o.rank, o.result);
    }
    let ns = *median.lock();
    ns
}

/// (json name, criterion label, mode)
fn configs() -> Vec<(&'static str, &'static str, RedundancyMode)> {
    vec![
        ("k2", "2-replica", RedundancyMode::Replicate { k: 2 }),
        ("k3", "3-replica", RedundancyMode::Replicate { k: 3 }),
        ("xor4", "xor-n+1/w4", RedundancyMode::XorParity { width: 4 }),
        (
            "rs4_2",
            "rs-n+2/w4",
            RedundancyMode::ReedSolomon {
                width: 4,
                parity: 2,
            },
        ),
    ]
}

fn main() {
    let data = payload(PAYLOAD_BYTES);
    let mut c = Criterion::default();
    {
        let mut group = c.benchmark_group("redundancy");
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(200))
            .measurement_time(std::time::Duration::from_millis(800));
        for (_, label, mode) in configs() {
            group.bench_function(format!("encode/{label}"), |b| {
                b.iter(|| encode_once(mode, &data))
            });
            group.bench_function(format!("reconstruct/{label}"), |b| {
                b.iter(|| reconstruct_once(mode, &data))
            });
        }
        group.finish();
    }

    // Independent measurement pass for the machine-readable gate input:
    // min_ns for the gated codec configs, median_ns for the threaded
    // recovery collectives (recorded, not gated).
    let mut lines = Vec::new();
    for (name, _, mode) in configs() {
        let encode_ns = measure_min_ns(|| encode_once(mode, &data));
        let reconstruct_ns = measure_min_ns(|| reconstruct_once(mode, &data));
        let recovery_ns = measure_recovery_median_ns(mode);
        println!(
            "{name:<8} encode {encode_ns:>10} ns, reconstruct {reconstruct_ns:>10} ns, \
             recovery {recovery_ns:>10} ns"
        );
        lines.push(format!(
            "  {{\"name\":\"encode_{name}\",\"min_ns\":{encode_ns}}}"
        ));
        lines.push(format!(
            "  {{\"name\":\"reconstruct_{name}\",\"min_ns\":{reconstruct_ns}}}"
        ));
        lines.push(format!(
            "  {{\"name\":\"recovery_{name}\",\"median_ns\":{recovery_ns}}}"
        ));
    }
    let json = format!(
        "{{\"bench\":\"redundancy\",\"payload_bytes\":{PAYLOAD_BYTES},\"recovery_bytes\":{RECOVERY_BYTES},\"configs\":[\n{}\n]}}\n",
        lines.join(",\n")
    );
    // Benches run with CWD = the package dir; anchor at the workspace root
    // so the CI gate finds the artifact under the shared target/.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _unused = std::fs::create_dir_all(&out);
    let path = out.join("BENCH_redundancy.json");
    std::fs::write(&path, json).expect("write bench json");
    println!("bench json written to {}", path.display());
}
