//! Criterion benchmark crate: one bench target per paper table/figure plus
//! ablation studies. See `benches/`. The library hosts shared helpers and
//! the tested decision logic behind the CI bench gate ([`gate`], [`json`],
//! driven by the `bench_compare` binary).

pub mod gate;
pub mod json;

use cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};

/// A small, instant-timescale cluster for microbenchmarks: modeled costs are
/// accounted but not slept, so criterion measures algorithmic cost only.
pub fn bench_cluster(nodes: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}
