//! The benchmark-gate decision logic behind `scripts/bench_gate.sh`.
//!
//! The shell script used to extract medians with `sed` and compare them in
//! arithmetic expansion — silent on malformed JSON, untestable, and easy to
//! desynchronize from the bench writers. The logic now lives here, unit
//! tested, and the script calls the thin `bench_compare` binary:
//!
//! * [`compare`] — per-config regression check of a fresh run against a
//!   committed baseline, with a percentage budget;
//! * [`assert_faster`] — a claim of the form "config A is at least N×
//!   faster than config B" within one results file (the incremental-
//!   pipeline speedup, XOR-cheaper-than-RS, slice-by-16 beats bitwise);
//! * [`check_baseline`] — structural validation of committed `BENCH_*.json`
//!   baselines (parseable, expected configs present, integer metrics);
//! * [`check_summary`] — schema validation of `target/ci-summary.json`.
//!
//! Every check returns a [`GateReport`]; the binary prints `lines` to
//! stdout, `failures` to stderr, and exits nonzero when failures exist.

use crate::json::Json;

/// Outcome of one gate check: human-readable progress lines plus the
/// violations (empty = pass).
#[derive(Debug, Default)]
pub struct GateReport {
    pub lines: Vec<String>,
    pub failures: Vec<String>,
}

impl GateReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn fail(&mut self, msg: String) {
        self.failures.push(msg);
    }
}

/// Per-bench required shape of a committed baseline: the `bench` field
/// value, the metric its gate reads, and the configs that must be present.
/// `check_baseline` validates against this table, so adding a bench config
/// to a writer without updating the gate fails CI here.
const REQUIRED: &[(&str, &str, &[&str])] = &[
    (
        "checkpoint_pipeline",
        "median_ns",
        &[
            "full_pack",
            "incremental_1pct",
            "incremental_25pct",
            "incremental_100pct",
        ],
    ),
    (
        "redundancy",
        "min_ns",
        &[
            "encode_k2",
            "reconstruct_k2",
            "encode_k3",
            "reconstruct_k3",
            "encode_xor4",
            "reconstruct_xor4",
            "encode_rs4_2",
            "reconstruct_rs4_2",
        ],
    ),
    (
        "sched",
        "median_ns",
        &["baton_handoff", "ring_16", "ring_64"],
    ),
    (
        "restart_latency",
        "median_ns",
        &[
            "restart_full",
            "restart_chain8",
            "restart_chain8_seq",
            "crc_bitwise_1m",
            "crc_slice16_1m",
        ],
    ),
];

/// Extract `metric` for the named config from a bench results document.
fn config_metric(doc: &Json, name: &str, metric: &str) -> Result<u64, String> {
    let configs = doc
        .get("configs")
        .and_then(Json::as_array)
        .ok_or_else(|| "document has no configs array".to_owned())?;
    let cfg = configs
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
        .ok_or_else(|| format!("config {name} not found"))?;
    cfg.get(metric)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("config {name} has no integer {metric}"))
}

/// Compare `fresh` against `baseline` for every named config: fail when
/// `fresh > baseline * (100 + max_pct) / 100`. A config missing from
/// either side is a failure (the gate must never silently skip).
pub fn compare(
    baseline: &Json,
    fresh: &Json,
    metric: &str,
    max_pct: u64,
    configs: &[String],
) -> GateReport {
    let mut report = GateReport::default();
    for cfg in configs {
        let base = match config_metric(baseline, cfg, metric) {
            Ok(v) => v,
            Err(e) => {
                report.fail(format!("baseline: {e}"));
                continue;
            }
        };
        let now = match config_metric(fresh, cfg, metric) {
            Ok(v) => v,
            Err(e) => {
                report.fail(format!("fresh run: {e}"));
                continue;
            }
        };
        let limit = base.saturating_mul(100 + max_pct) / 100;
        if now > limit {
            report.fail(format!(
                "{cfg} regressed: {now} ns > {limit} ns (baseline {base} ns +{max_pct}%)"
            ));
        } else {
            report.lines.push(format!(
                "{cfg} {now} ns (baseline {base} ns, limit {limit} ns)"
            ));
        }
    }
    report
}

/// Assert that config `fast` is at least `min_x` times faster than config
/// `slow` within one results document: `fast * min_x <= slow`.
pub fn assert_faster(doc: &Json, fast: &str, slow: &str, metric: &str, min_x: u64) -> GateReport {
    let mut report = GateReport::default();
    let (f, s) = match (
        config_metric(doc, fast, metric),
        config_metric(doc, slow, metric),
    ) {
        (Ok(f), Ok(s)) => (f, s),
        (f, s) => {
            for e in [f.err(), s.err()].into_iter().flatten() {
                report.fail(e);
            }
            return report;
        }
    };
    if f.saturating_mul(min_x) > s {
        report.fail(format!(
            "{fast} ({f} ns) must be >= {min_x}x faster than {slow} ({s} ns)"
        ));
    } else {
        report
            .lines
            .push(format!("{fast} {f} ns vs {slow} {s} ns (>= {min_x}x)"));
    }
    report
}

/// Validate committed baselines: each document must parse, carry a `bench`
/// name known to the [`REQUIRED`] table, and contain every required config
/// with a positive integer metric.
pub fn check_baseline(docs: &[(String, Result<Json, String>)]) -> GateReport {
    let mut report = GateReport::default();
    for (path, parsed) in docs {
        let doc = match parsed {
            Ok(d) => d,
            Err(e) => {
                report.fail(format!("{path}: malformed JSON: {e}"));
                continue;
            }
        };
        let Some(bench) = doc.get("bench").and_then(Json::as_str) else {
            report.fail(format!("{path}: missing string field \"bench\""));
            continue;
        };
        let Some(&(_, metric, required)) = REQUIRED.iter().find(|(b, _, _)| *b == bench) else {
            report.fail(format!(
                "{path}: unknown bench {bench:?} (gate table out of date?)"
            ));
            continue;
        };
        let mut bad = false;
        for cfg in required {
            match config_metric(doc, cfg, metric) {
                Ok(0) => {
                    report.fail(format!("{path}: config {cfg} has zero {metric}"));
                    bad = true;
                }
                Ok(_) => {}
                Err(e) => {
                    report.fail(format!("{path}: {e}"));
                    bad = true;
                }
            }
        }
        if !bad {
            report
                .lines
                .push(format!("{path}: ok ({bench}, {} configs)", required.len()));
        }
    }
    report
}

/// Validate the CI stage summary: `ok` must be boolean true, `stages` a
/// non-empty array of `{name: string, seconds: non-negative number}`, and
/// `artifacts` an object mapping names to path strings.
pub fn check_summary(doc: &Json) -> GateReport {
    let mut report = GateReport::default();
    match doc.get("ok").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => report.fail("summary says ok:false".into()),
        None => report.fail("summary missing boolean \"ok\"".into()),
    }
    match doc.get("stages").and_then(Json::as_array) {
        None => report.fail("summary missing \"stages\" array".into()),
        Some([]) => report.fail("summary has an empty \"stages\" array".into()),
        Some(stages) => {
            for (i, stage) in stages.iter().enumerate() {
                if stage.get("name").and_then(Json::as_str).is_none() {
                    report.fail(format!("stage {i} missing string \"name\""));
                }
                match stage.get("seconds").and_then(Json::as_f64) {
                    Some(s) if s >= 0.0 => {}
                    _ => report.fail(format!("stage {i} missing non-negative \"seconds\"")),
                }
            }
            if report.ok() {
                report.lines.push(format!("{} stages timed", stages.len()));
            }
        }
    }
    match doc.get("artifacts").and_then(Json::as_object) {
        None => report.fail("summary missing \"artifacts\" object".into()),
        Some(artifacts) => {
            for (k, v) in artifacts {
                if v.as_str().is_none() {
                    report.fail(format!("artifact {k:?} is not a path string"));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(configs: &str) -> Json {
        Json::parse(&format!(
            "{{\"bench\":\"checkpoint_pipeline\",\"configs\":[{configs}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn compare_passes_within_budget() {
        let base = doc(r#"{"name":"a","median_ns":1000}"#);
        let fresh = doc(r#"{"name":"a","median_ns":1150}"#);
        let r = compare(&base, &fresh, "median_ns", 15, &["a".into()]);
        assert!(r.ok(), "{:?}", r.failures);
    }

    #[test]
    fn compare_fails_beyond_budget() {
        let base = doc(r#"{"name":"a","median_ns":1000}"#);
        let fresh = doc(r#"{"name":"a","median_ns":1151}"#);
        let r = compare(&base, &fresh, "median_ns", 15, &["a".into()]);
        assert!(!r.ok());
        assert!(r.failures[0].contains("regressed"));
    }

    #[test]
    fn compare_fails_on_missing_config() {
        let base = doc(r#"{"name":"a","median_ns":1000}"#);
        let fresh = doc(r#"{"name":"b","median_ns":10}"#);
        let r = compare(&base, &fresh, "median_ns", 15, &["a".into()]);
        assert!(!r.ok());
        assert!(r.failures[0].contains("not found"), "{:?}", r.failures);
    }

    #[test]
    fn compare_fails_on_non_integer_metric() {
        let base = doc(r#"{"name":"a","median_ns":1000}"#);
        let fresh = doc(r#"{"name":"a","median_ns":"fast"}"#);
        let r = compare(&base, &fresh, "median_ns", 15, &["a".into()]);
        assert!(!r.ok());
    }

    #[test]
    fn assert_faster_enforces_ratio() {
        let d = doc(r#"{"name":"inc","median_ns":100},{"name":"full","median_ns":501}"#);
        assert!(assert_faster(&d, "inc", "full", "median_ns", 5).ok());
        let d = doc(r#"{"name":"inc","median_ns":100},{"name":"full","median_ns":499}"#);
        assert!(!assert_faster(&d, "inc", "full", "median_ns", 5).ok());
    }

    #[test]
    fn assert_faster_with_unit_ratio_is_plain_ordering() {
        let d = doc(r#"{"name":"s16","median_ns":10},{"name":"bit","median_ns":10}"#);
        assert!(assert_faster(&d, "s16", "bit", "median_ns", 1).ok());
        let d = doc(r#"{"name":"s16","median_ns":11},{"name":"bit","median_ns":10}"#);
        assert!(!assert_faster(&d, "s16", "bit", "median_ns", 1).ok());
    }

    #[test]
    fn check_baseline_accepts_complete_documents() {
        let text = r#"{"bench":"sched","configs":[
            {"name":"baton_handoff","median_ns":1},
            {"name":"ring_16","median_ns":2},
            {"name":"ring_64","median_ns":3}
        ]}"#;
        let r = check_baseline(&[("BENCH_sched.json".into(), Json::parse(text))]);
        assert!(r.ok(), "{:?}", r.failures);
    }

    #[test]
    fn check_baseline_rejects_missing_config_and_bad_json() {
        let incomplete = r#"{"bench":"sched","configs":[{"name":"ring_16","median_ns":2}]}"#;
        let r = check_baseline(&[
            ("a.json".into(), Json::parse(incomplete)),
            ("b.json".into(), Json::parse("{nope")),
        ]);
        assert!(!r.ok());
        assert!(r.failures.iter().any(|f| f.contains("baton_handoff")));
        assert!(r.failures.iter().any(|f| f.contains("malformed")));
    }

    #[test]
    fn check_baseline_rejects_unknown_bench_and_zero_metric() {
        let unknown = r#"{"bench":"mystery","configs":[]}"#;
        let zero = r#"{"bench":"sched","configs":[
            {"name":"baton_handoff","median_ns":0},
            {"name":"ring_16","median_ns":2},
            {"name":"ring_64","median_ns":3}
        ]}"#;
        let r = check_baseline(&[
            ("u.json".into(), Json::parse(unknown)),
            ("z.json".into(), Json::parse(zero)),
        ]);
        assert!(r.failures.iter().any(|f| f.contains("unknown bench")));
        assert!(r.failures.iter().any(|f| f.contains("zero")));
    }

    #[test]
    fn check_summary_validates_schema() {
        let good = r#"{"ok":true,"stages":[{"name":"build","seconds":1.5}],
                       "artifacts":{"lint":"target/lint.json"}}"#;
        assert!(check_summary(&Json::parse(good).unwrap()).ok());
        let bad_ok = r#"{"ok":false,"stages":[{"name":"build","seconds":1}],"artifacts":{}}"#;
        assert!(!check_summary(&Json::parse(bad_ok).unwrap()).ok());
        let no_stages = r#"{"ok":true,"stages":[],"artifacts":{}}"#;
        assert!(!check_summary(&Json::parse(no_stages).unwrap()).ok());
        let bad_stage = r#"{"ok":true,"stages":[{"seconds":-1}],"artifacts":{}}"#;
        let r = check_summary(&Json::parse(bad_stage).unwrap());
        assert!(r.failures.iter().any(|f| f.contains("name")));
        assert!(r.failures.iter().any(|f| f.contains("seconds")));
        let bad_artifact = r#"{"ok":true,"stages":[{"name":"a","seconds":0}],
                              "artifacts":{"x":5}}"#;
        assert!(!check_summary(&Json::parse(bad_artifact).unwrap()).ok());
    }
}
