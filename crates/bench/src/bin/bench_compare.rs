//! CLI wrapper around the tested bench-gate logic (`bench::gate`), called
//! from `scripts/bench_gate.sh` and `scripts/ci.sh`:
//!
//! ```text
//! bench_compare compare <baseline.json> <fresh.json> \
//!     --metric median_ns --max-pct 15 --configs a,b,c
//! bench_compare assert-faster <results.json> <fast> <slow> \
//!     [--metric median_ns] [--min-x 1]
//! bench_compare check-baseline <BENCH_x.json>...
//! bench_compare check-summary <ci-summary.json>
//! ```
//!
//! Exit codes: 0 = pass, 1 = gate violation (regression, missing config,
//! malformed artifact), 2 = usage error.

use bench::gate::{self, GateReport};
use bench::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    let Some((cmd, rest)) = args.split_first() else {
        return usage("missing subcommand");
    };
    let report = match cmd.as_str() {
        "compare" => cmd_compare(rest),
        "assert-faster" => cmd_assert_faster(rest),
        "check-baseline" => cmd_check_baseline(rest),
        "check-summary" => cmd_check_summary(rest),
        other => return usage(&format!("unknown subcommand {other:?}")),
    };
    match report {
        Err(msg) => usage(&msg),
        Ok(report) => {
            for line in &report.lines {
                println!("bench gate: {line}");
            }
            for failure in &report.failures {
                eprintln!("bench gate: FAIL — {failure}");
            }
            i32::from(!report.ok())
        }
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!("bench_compare: {msg}");
    eprintln!(
        "usage: bench_compare compare <baseline> <fresh> --metric M --max-pct N --configs a,b,c\n\
         \x20      bench_compare assert-faster <file> <fast> <slow> [--metric M] [--min-x N]\n\
         \x20      bench_compare check-baseline <file>...\n\
         \x20      bench_compare check-summary <file>"
    );
    2
}

/// `--flag value` pairs pulled out of an argument list.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Split positional arguments from `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<(Vec<&str>, Flags<'_>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name, value.as_str()));
        } else {
            positional.push(a.as_str());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

fn parse_num(flags: &[(&str, &str)], name: &str, default: u64) -> Result<u64, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} must be an integer, got {v:?}")),
    }
}

/// Load and parse a results file; IO/parse problems are gate violations
/// (exit 1), reported through the GateReport rather than as usage errors.
fn load(path: &str) -> Result<Json, GateReport> {
    let text = std::fs::read_to_string(path).map_err(|e| GateReport {
        lines: Vec::new(),
        failures: vec![format!("{path}: {e}")],
    })?;
    Json::parse(&text).map_err(|e| GateReport {
        lines: Vec::new(),
        failures: vec![format!("{path}: malformed JSON: {e}")],
    })
}

fn cmd_compare(args: &[String]) -> Result<GateReport, String> {
    let (pos, flags) = parse_flags(args)?;
    let [baseline_path, fresh_path] = pos[..] else {
        return Err("compare needs <baseline> <fresh>".into());
    };
    let metric = flag(&flags, "metric").ok_or("compare needs --metric")?;
    let max_pct = parse_num(&flags, "max-pct", 15)?;
    let configs: Vec<String> = flag(&flags, "configs")
        .ok_or("compare needs --configs a,b,c")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if configs.is_empty() {
        return Err("--configs list is empty".into());
    }
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            let mut report = GateReport::default();
            for r in [b, f] {
                if let Err(e) = r {
                    report.failures.extend(e.failures);
                }
            }
            return Ok(report);
        }
    };
    Ok(gate::compare(&baseline, &fresh, metric, max_pct, &configs))
}

fn cmd_assert_faster(args: &[String]) -> Result<GateReport, String> {
    let (pos, flags) = parse_flags(args)?;
    let [path, fast, slow] = pos[..] else {
        return Err("assert-faster needs <file> <fast> <slow>".into());
    };
    let metric = flag(&flags, "metric").unwrap_or("median_ns");
    let min_x = parse_num(&flags, "min-x", 1)?;
    match load(path) {
        Ok(doc) => Ok(gate::assert_faster(&doc, fast, slow, metric, min_x)),
        Err(report) => Ok(report),
    }
}

fn cmd_check_baseline(args: &[String]) -> Result<GateReport, String> {
    let (pos, flags) = parse_flags(args)?;
    if !flags.is_empty() {
        return Err("check-baseline takes no flags".into());
    }
    if pos.is_empty() {
        return Err("check-baseline needs at least one file".into());
    }
    let docs: Vec<(String, Result<Json, String>)> = pos
        .iter()
        .map(|path| {
            let parsed = std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| Json::parse(&text));
            (path.to_string(), parsed)
        })
        .collect();
    Ok(gate::check_baseline(&docs))
}

fn cmd_check_summary(args: &[String]) -> Result<GateReport, String> {
    let (pos, flags) = parse_flags(args)?;
    if !flags.is_empty() {
        return Err("check-summary takes no flags".into());
    }
    let [path] = pos[..] else {
        return Err("check-summary needs exactly one file".into());
    };
    match load(path) {
        Ok(doc) => Ok(gate::check_summary(&doc)),
        Err(report) => Ok(report),
    }
}
