//! A minimal JSON reader for the benchmark artifacts.
//!
//! The bench binaries emit small, flat JSON files (`BENCH_*.json`,
//! `target/ci-summary.json`) and the CI gate needs to read them back
//! without taking a serde dependency. This is a strict recursive-descent
//! parser over the full JSON grammar — objects, arrays, strings with
//! escapes, numbers, booleans, null — with byte-offset error messages, so
//! a malformed committed baseline fails the gate loudly instead of being
//! sed-matched into silence.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are ordered (BTreeMap) so everything
/// downstream — reports, comparisons — is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key {key:?} at byte {}", self.pos));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates in the bench artifacts would be a
                            // bug; map them to the replacement character
                            // rather than implementing pair decoding.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid scalar boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_artifact_shape() {
        let doc = Json::parse(
            r#"{"bench":"checkpoint_pipeline","regions":100,"configs":[
                {"name":"full_pack","median_ns":123456,"bytes_written":409600},
                {"name":"incremental_1pct","median_ns":9876,"bytes_written":4096}
            ]}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("bench").and_then(Json::as_str),
            Some("checkpoint_pipeline")
        );
        let configs = doc.get("configs").and_then(Json::as_array).unwrap();
        assert_eq!(configs.len(), 2);
        assert_eq!(
            configs[1].get("median_ns").and_then(Json::as_u64),
            Some(9876)
        );
    }

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("-2.5e2").unwrap().as_f64(), Some(-250.0));
        assert_eq!(
            Json::parse(r#""a\n\"bA""#).unwrap().as_str(),
            Some("a\n\"bA")
        );
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn malformed_documents_error() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn nested_structures_roundtrip() {
        let doc = Json::parse(r#"{"a":[{"b":[[]]},{}],"c":{"d":null}}"#).unwrap();
        let a = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(doc.get("c").unwrap().get("d"), Some(&Json::Null));
    }
}
