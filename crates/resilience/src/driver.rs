//! Experiment orchestration: launch, relaunch, and measurement.
//!
//! The driver is the equivalent of the paper's test scripts: it times the
//! whole job from the outside (like `time mpirun …`), so costs that are
//! invisible inside the application — modeled job startup/teardown, the
//! relaunch a non-Fenix recovery needs, trailing checkpoint flushes — land
//! in the "Other" category of the cost breakdown.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use cluster::Cluster;
use fenix::ImrPolicy;
use redstore::RedundancyMode;
use simmpi::{Backend, FaultPlan, MpiError, Profile, Universe, UniverseConfig};
use telemetry::Telemetry;

use crate::app::IterativeApp;
use crate::record::{CostBreakdown, RunRecord};
use crate::runner::{self, SharedState};
use crate::strategy::Strategy;

/// Options for one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    pub strategy: Strategy,
    /// Spare ranks for Fenix strategies (ignored otherwise).
    pub spares: usize,
    /// Number of checkpoints over the whole run (the paper uses 6).
    pub checkpoints: u64,
    /// Safety bound on whole-job relaunches.
    pub max_relaunches: usize,
    /// Buddy policy override for Fenix IMR (`None` = topology-aware ring
    /// when any node hosts several communicator ranks, else Pair when the
    /// resilient communicator is even-sized, Ring otherwise).
    pub imr_policy: Option<ImrPolicy>,
    /// Redundancy mode override for Fenix RedStore (`None` = strongest
    /// topology-feasible mode: RS(4,2) → XOR(3) → 2-replica).
    pub redundancy: Option<RedundancyMode>,
    /// Wipe checkpoint storage before the run (set false to chain runs).
    pub fresh_storage: bool,
    /// Observability hub: when set, every launch (and relaunch) of this
    /// experiment records events/spans/metrics into it.
    pub telemetry: Option<Telemetry>,
    /// Execution engine for every launch of this experiment (threads by
    /// default; `Backend::Des` pairs with a `virtual_time` cluster for
    /// deterministic schedules).
    pub backend: Backend,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            strategy: Strategy::FenixKokkosResilience,
            spares: 1,
            checkpoints: 6,
            max_relaunches: 8,
            imr_policy: None,
            redundancy: None,
            fresh_storage: true,
            telemetry: None,
            backend: Backend::default(),
        }
    }
}

/// Typed terminal failures of an experiment run.
///
/// These are the clean outcomes the chaos oracle accepts in lieu of a
/// completed run: the job ended, every rank unwound, and the reason is
/// machine-readable — never a panic, never a hang.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExperimentError {
    /// A rank ended with an error no recovery layer claimed (e.g. spare
    /// pool exhausted, data unrecoverable).
    RankFailed {
        rank: usize,
        strategy: Strategy,
        error: MpiError,
    },
    /// A relaunch-based strategy exceeded its relaunch budget.
    RelaunchLimit { limit: usize, strategy: Strategy },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::RankFailed {
                rank,
                strategy,
                error,
            } => write!(
                f,
                "rank {rank} failed unrecoverably under {strategy:?}: {error}"
            ),
            ExperimentError::RelaunchLimit { limit, strategy } => {
                write!(f, "exceeded {limit} relaunches under {strategy:?}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Run `app` on `cluster` under the configured strategy, injecting the
/// failures in `plan`. Returns the paper-style cost record.
///
/// Panics on unrecoverable outcomes — the historical harness behavior.
/// Callers that must observe failure as data (the chaos oracle) use
/// [`try_run_experiment`] instead.
pub fn run_experiment(
    cluster: &Cluster,
    app: &dyn IterativeApp,
    cfg: &ExperimentConfig,
    plan: Arc<FaultPlan>,
) -> RunRecord {
    match try_run_experiment(cluster, app, cfg, plan) {
        Ok(record) => record,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`run_experiment`], but unrecoverable outcomes surface as a typed
/// [`ExperimentError`] instead of a panic.
///
/// For Fenix strategies the job is launched once and recovers in place.
/// For plain-MPI strategies a failure aborts the job; the driver pays the
/// modeled teardown+startup and relaunches until the run completes.
pub fn try_run_experiment(
    cluster: &Cluster,
    app: &dyn IterativeApp,
    cfg: &ExperimentConfig,
    plan: Arc<FaultPlan>,
) -> Result<RunRecord, ExperimentError> {
    if cfg.fresh_storage {
        cluster.pfs().clear();
        cluster.scratch().clear();
    }
    let shared = SharedState::default();
    let failures = plan.kills().len();
    let n = cluster.topology().total_ranks();
    // On a virtual-time cluster the driver itself must not sleep: modeled
    // teardown/startup charges advance the simulated clock, and the wall
    // time reported is simulated-job time.
    let virtual_clock = cluster
        .clock()
        .is_virtual()
        .then(|| cluster.clock().clone());
    let _driver_sleeper = virtual_clock.as_ref().map(|clock| {
        let clock = Arc::clone(clock);
        cluster::install_virtual_sleeper(Arc::new(move |modeled: std::time::Duration| {
            clock.advance(modeled.as_nanos().min(u128::from(u64::MAX)) as u64);
        }))
    });
    let t0 = Instant::now();
    let start_ns = virtual_clock.as_ref().map(|c| c.now_ns());
    let merged = Profile::new();
    let mut relaunches = 0usize;

    if cfg.strategy.uses_fenix() {
        let report = Universe::launch(
            cluster,
            UniverseConfig {
                abort_on_failure: false,
                charge_startup: true,
                telemetry: cfg.telemetry.clone(),
                backend: cfg.backend,
            },
            Arc::clone(&plan),
            |ctx| {
                runner::fenix_rank(
                    ctx,
                    app,
                    cfg.strategy,
                    cfg.spares,
                    cfg.checkpoints,
                    cfg.imr_policy,
                    cfg.redundancy,
                    &shared,
                )
            },
        );
        merged.merge_from(&report.max_profile());
        for o in &report.outcomes {
            match &o.result {
                Ok(()) => {}
                Err(MpiError::Killed) => {} // injected victim
                Err(e) => {
                    return Err(ExperimentError::RankFailed {
                        rank: o.rank,
                        strategy: cfg.strategy,
                        error: e.clone(),
                    })
                }
            }
        }
    } else {
        loop {
            let report = Universe::launch(
                cluster,
                UniverseConfig {
                    abort_on_failure: true,
                    charge_startup: true,
                    telemetry: cfg.telemetry.clone(),
                    backend: cfg.backend,
                },
                Arc::clone(&plan),
                |ctx| runner::relaunch_rank(ctx, app, cfg.strategy, cfg.checkpoints, &shared),
            );
            merged.merge_from(&report.max_profile());
            if report.all_ok() {
                break;
            }
            relaunches += 1;
            if relaunches > cfg.max_relaunches {
                return Err(ExperimentError::RelaunchLimit {
                    limit: cfg.max_relaunches,
                    strategy: cfg.strategy,
                });
            }
            // The failed job must be fully torn down before the next launch.
            cluster
                .time_scale()
                .sleep(cluster.config().relaunch.teardown(n));
        }
    }

    let wall = match (&virtual_clock, start_ns) {
        (Some(clock), Some(ns)) => {
            std::time::Duration::from_nanos(clock.now_ns().saturating_sub(ns))
        }
        _ => t0.elapsed(),
    };
    Ok(RunRecord {
        strategy: cfg.strategy,
        ranks: n,
        wall,
        breakdown: CostBreakdown::from_profile(&merged, wall),
        relaunches,
        repairs: shared.repairs.load(Ordering::Relaxed),
        failures,
        digest: shared.digest.load(Ordering::Relaxed),
        iterations: shared.iterations.load(Ordering::Relaxed),
    })
}
