//! Phase booking with recompute rerouting.
//!
//! The paper separates "Recompute" — time spent re-executing iterations that
//! had already been computed before a failure — from first-time compute.
//! Applications book their phase times through a [`Bookkeeper`]; while
//! recompute mode is on (the runner enables it for iterations at or below
//! the globally reached progress mark), every booking is rerouted to
//! [`Phase::Recompute`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use simmpi::{Phase, Profile};

/// Per-rank phase booking façade.
pub struct Bookkeeper {
    profile: Arc<Profile>,
    recompute: AtomicBool,
    /// Encoded `Option<Phase>`: 0 = none, else `phase as u8 + 1`.
    override_phase: std::sync::atomic::AtomicU8,
}

impl Bookkeeper {
    pub fn new(profile: Arc<Profile>) -> Self {
        Bookkeeper {
            profile,
            recompute: AtomicBool::new(false),
            override_phase: std::sync::atomic::AtomicU8::new(0),
        }
    }

    /// Reroute *all* bookings to one phase (e.g. `DataRecovery` while
    /// rebuilding derived state after a restore). Pass `None` to clear.
    pub fn set_phase_override(&self, phase: Option<Phase>) {
        let encoded = phase.map_or(0, |p| p as u8 + 1);
        self.override_phase.store(encoded, Ordering::Relaxed);
    }

    fn override_get(&self) -> Option<Phase> {
        match self.override_phase.load(Ordering::Relaxed) {
            0 => None,
            // `set_phase_override` only stores `phase as u8 + 1`, so the
            // index is in range by construction; an out-of-range byte decodes
            // as "no override" rather than indexing past `ALL`.
            n => Phase::ALL.get((n - 1) as usize).copied(),
        }
    }

    pub fn profile(&self) -> &Arc<Profile> {
        &self.profile
    }

    /// Enable/disable recompute rerouting.
    pub fn set_recompute(&self, on: bool) {
        self.recompute.store(on, Ordering::Relaxed);
    }

    pub fn is_recompute(&self) -> bool {
        self.recompute.load(Ordering::Relaxed)
    }

    fn route(&self, phase: Phase) -> Phase {
        if let Some(p) = self.override_get() {
            return p;
        }
        if self.is_recompute() {
            match phase {
                // Resilience overheads keep their identity even during
                // recompute; only application work is rerouted.
                Phase::CheckpointFn | Phase::DataRecovery | Phase::ResilienceInit => phase,
                _ => Phase::Recompute,
            }
        } else {
            phase
        }
    }

    /// Time `f` and book it under `phase` (or `Recompute` when rerouting).
    pub fn book<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        self.profile.time(self.route(phase), f)
    }

    /// Book an externally measured duration.
    pub fn add(&self, phase: Phase, d: Duration) {
        self.profile.add(self.route(phase), d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_override_reroutes_and_ignores_corrupt_encodings() {
        let bk = Bookkeeper::new(Arc::new(Profile::new()));
        bk.set_phase_override(Some(Phase::DataRecovery));
        bk.add(Phase::AppCompute, Duration::from_millis(2));
        assert_eq!(
            bk.profile().get(Phase::DataRecovery),
            Duration::from_millis(2)
        );
        // A corrupt encoding decodes as "no override", not an out-of-range
        // index into `Phase::ALL`.
        bk.override_phase.store(200, Ordering::Relaxed);
        bk.add(Phase::AppCompute, Duration::from_millis(1));
        assert_eq!(
            bk.profile().get(Phase::AppCompute),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn books_to_named_phase_by_default() {
        let bk = Bookkeeper::new(Arc::new(Profile::new()));
        bk.add(Phase::AppCompute, Duration::from_millis(5));
        assert_eq!(
            bk.profile().get(Phase::AppCompute),
            Duration::from_millis(5)
        );
        assert_eq!(bk.profile().get(Phase::Recompute), Duration::ZERO);
    }

    #[test]
    fn recompute_mode_reroutes_app_phases() {
        let bk = Bookkeeper::new(Arc::new(Profile::new()));
        bk.set_recompute(true);
        bk.add(Phase::AppCompute, Duration::from_millis(3));
        bk.add(Phase::AppMpi, Duration::from_millis(2));
        bk.add(Phase::ForceCompute, Duration::from_millis(1));
        assert_eq!(bk.profile().get(Phase::Recompute), Duration::from_millis(6));
        assert_eq!(bk.profile().get(Phase::AppCompute), Duration::ZERO);
    }

    #[test]
    fn resilience_phases_keep_identity_during_recompute() {
        let bk = Bookkeeper::new(Arc::new(Profile::new()));
        bk.set_recompute(true);
        bk.add(Phase::CheckpointFn, Duration::from_millis(4));
        bk.add(Phase::DataRecovery, Duration::from_millis(2));
        assert_eq!(
            bk.profile().get(Phase::CheckpointFn),
            Duration::from_millis(4)
        );
        assert_eq!(
            bk.profile().get(Phase::DataRecovery),
            Duration::from_millis(2)
        );
        assert_eq!(bk.profile().get(Phase::Recompute), Duration::ZERO);
    }

    #[test]
    fn phase_override_reroutes_everything() {
        let bk = Bookkeeper::new(Arc::new(Profile::new()));
        bk.set_phase_override(Some(Phase::DataRecovery));
        bk.add(Phase::AppCompute, Duration::from_millis(3));
        bk.add(Phase::CheckpointFn, Duration::from_millis(2));
        assert_eq!(
            bk.profile().get(Phase::DataRecovery),
            Duration::from_millis(5)
        );
        bk.set_phase_override(None);
        bk.add(Phase::AppCompute, Duration::from_millis(1));
        assert_eq!(
            bk.profile().get(Phase::AppCompute),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn mode_toggles() {
        let bk = Bookkeeper::new(Arc::new(Profile::new()));
        assert!(!bk.is_recompute());
        bk.set_recompute(true);
        assert!(bk.is_recompute());
        bk.set_recompute(false);
        bk.add(Phase::AppCompute, Duration::from_millis(1));
        assert_eq!(
            bk.profile().get(Phase::AppCompute),
            Duration::from_millis(1)
        );
    }
}
