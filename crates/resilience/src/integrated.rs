//! The single-initialization integrated API — the paper's Future Work
//! §VII.A: "This would remove the need for two resilience initialization
//! steps, and further lower the amount of control-flow modifications needed
//! for implementing the combination of Fenix and Kokkos Resilience."
//!
//! [`resilient_main`] is that combination: one call sets up Fenix process
//! recovery *and* the Kokkos Resilience context, wires the repair →
//! `reset(new_comm)` → recovery plumbing of Figure 4 internally, and hands
//! the application a [`ResilientScope`] with everything it needs. Compare
//! `examples/quickstart.rs` (two explicit initializations, manual reset
//! logic) with `examples/integrated_api.rs` (this entry point).

use std::cell::RefCell;
use std::sync::Arc;

use fenix::{ExhaustPolicy, Fenix, FenixConfig, ImrPolicy, ImrStore, Role, RunSummary};
use kokkos_resilience::{
    CheckpointFilter, CheckpointOutcome, Context, ContextConfig, RecoveryScope,
};
use simmpi::{Comm, MpiResult, Phase, Profile, RankCtx};

use crate::imr_backend::ImrBackend;
use crate::redstore_backend::RedstoreBackend;

/// Which data layer the integrated runtime drives.
#[derive(Clone, Debug)]
pub enum IntegratedBackend {
    /// VeloC in single mode — the paper's published configuration.
    VelocSingle,
    /// Fenix in-memory redundancy as a KR backend — the future-work
    /// configuration (`policy = None` picks a topology-aware ring on
    /// multi-rank-per-node layouts, else Pair/Ring by communicator
    /// parity).
    Imr { policy: Option<ImrPolicy> },
    /// The multi-failure redundancy-store tier as a KR backend: k-replica
    /// or erasure-coded placement groups (`mode = None` picks the
    /// strongest topology-feasible mode).
    Redstore {
        mode: Option<redstore::RedundancyMode>,
    },
}

/// Configuration for [`resilient_main`].
#[derive(Clone, Debug)]
pub struct IntegratedConfig {
    /// Checkpoint-set namespace.
    pub name: String,
    /// Spare ranks held out of the resilient communicator.
    pub spares: usize,
    pub filter: CheckpointFilter,
    pub backend: IntegratedBackend,
    /// View labels excluded as aliases.
    pub aliases: Vec<String>,
    pub on_exhaustion: ExhaustPolicy,
    /// Partial rollback: only replacement ranks restore checkpoint data
    /// (requires a convergence-tolerant application; VeloC backend only).
    pub partial_rollback: bool,
}

impl Default for IntegratedConfig {
    fn default() -> Self {
        IntegratedConfig {
            name: "app".into(),
            spares: 1,
            filter: CheckpointFilter::Always,
            backend: IntegratedBackend::VelocSingle,
            aliases: Vec::new(),
            on_exhaustion: ExhaustPolicy::Abort,
            partial_rollback: false,
        }
    }
}

/// Everything the application body needs, in one handle.
pub struct ResilientScope<'a> {
    comm: &'a Comm,
    role: Role,
    fenix: &'a Fenix,
    kr: &'a Context,
}

impl ResilientScope<'_> {
    /// The resilient communicator.
    pub fn comm(&self) -> &Comm {
        self.comm
    }

    /// This rank's role on (re-)entry.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Repairs performed so far.
    pub fn repair_count(&self) -> u64 {
        self.fenix.repair_count()
    }

    /// Communicator ranks replaced in the last repair.
    pub fn recovered_ranks(&self) -> Vec<usize> {
        self.fenix.recovered_ranks()
    }

    /// The underlying Kokkos Resilience context (statistics, aliases…).
    pub fn context(&self) -> &Context {
        self.kr
    }

    /// Best restartable version of a region (collective).
    pub fn latest_version(&self, label: &str) -> MpiResult<Option<u64>> {
        self.kr.latest_version(label)
    }

    /// Execute a checkpoint region (see
    /// [`kokkos_resilience::Context::checkpoint`]).
    pub fn checkpoint<F>(
        &self,
        label: &str,
        iteration: u64,
        body: F,
    ) -> MpiResult<CheckpointOutcome>
    where
        F: FnMut() -> MpiResult<()>,
    {
        self.kr.checkpoint(label, iteration, body)
    }

    /// Drain asynchronous checkpoint work.
    pub fn checkpoint_wait(&self) {
        self.kr.checkpoint_wait();
    }
}

/// Run `body` under the fully integrated resilience stack with a single
/// initialization call.
///
/// Internally this is Figure 4's pattern: Fenix owns process recovery; on
/// every (re-)entry the Kokkos Resilience context is created or
/// `reset(res_comm)`, the recovered-rank hint is forwarded to the data
/// backend, and (when configured) the partial-rollback recovery scope is
/// armed. `body` may be re-invoked after failures — it must derive its
/// starting iteration from [`ResilientScope::latest_version`].
pub fn resilient_main<F>(
    ctx: &RankCtx,
    config: IntegratedConfig,
    mut body: F,
) -> MpiResult<RunSummary>
where
    F: FnMut(&ResilientScope<'_>) -> MpiResult<()>,
{
    let fenix_cfg = FenixConfig {
        spares: config.spares,
        on_exhaustion: config.on_exhaustion,
    };
    let kr_cell: RefCell<Option<Context>> = RefCell::new(None);
    let imr_store = ImrStore::new();
    let red_store = redstore::RedStore::new();
    let profile: Arc<Profile> = Arc::clone(ctx.profile());

    let summary = fenix::run(ctx.world(), fenix_cfg, |fx, comm, role| {
        if kr_cell.borrow().is_none() {
            let kr = profile.time(Phase::ResilienceInit, || {
                let kr_config = ContextConfig {
                    name: config.name.clone(),
                    filter: config.filter.clone(),
                    backend: kokkos_resilience::BackendKind::VelocSingle,
                    aliases: config.aliases.clone(),
                };
                match &config.backend {
                    IntegratedBackend::VelocSingle => {
                        Context::new(ctx.cluster(), comm.clone(), kr_config)
                    }
                    IntegratedBackend::Imr { policy } => Context::with_backend(
                        comm.clone(),
                        kr_config,
                        Box::new(ImrBackend::new(Arc::clone(&imr_store), *policy)),
                    ),
                    IntegratedBackend::Redstore { mode } => Context::with_backend(
                        comm.clone(),
                        kr_config,
                        Box::new(RedstoreBackend::new(Arc::clone(&red_store), *mode)),
                    ),
                }
            });
            kr.set_profile(Arc::clone(&profile));
            *kr_cell.borrow_mut() = Some(kr);
        } else {
            kr_cell
                .borrow()
                .as_ref()
                .expect("context present")
                .reset(comm.clone());
        }
        let kr_ref = kr_cell.borrow();
        let kr = kr_ref.as_ref().expect("context initialized");

        if role != Role::Initial {
            kr.set_recovering_ranks(fx.recovered_ranks());
            if config.partial_rollback {
                assert!(
                    matches!(config.backend, IntegratedBackend::VelocSingle),
                    "partial rollback requires per-rank storage (VeloC backend)"
                );
                kr.set_recovery_scope(RecoveryScope::OnlyRanks(fx.recovered_ranks()));
            }
        }

        let scope = ResilientScope {
            comm,
            role,
            fenix: fx,
            kr,
        };
        body(&scope)
    })?;

    if let Some(kr) = kr_cell.borrow().as_ref() {
        kr.checkpoint_wait();
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_published_configuration() {
        let c = IntegratedConfig::default();
        assert!(matches!(c.backend, IntegratedBackend::VelocSingle));
        assert_eq!(c.spares, 1);
        assert!(!c.partial_rollback);
    }
}
