//! The strategy matrix of the paper's §V.A.

/// A complete resilience configuration: which runtime fills each layer and
/// how recovery proceeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// No resilience at all (reference). A failure restarts from scratch.
    Unprotected,
    /// VeloC alone (collective mode), manual control flow; whole-job
    /// relaunch on failure.
    VelocOnly,
    /// Kokkos Resilience driving VeloC (collective mode); whole-job
    /// relaunch on failure — "Kokkos Resilience without Fenix".
    KokkosResilience,
    /// Fenix process recovery + VeloC in single mode, without Kokkos
    /// Resilience (manual checkpoint management).
    FenixVeloc,
    /// The paper's integrated system: Fenix + Kokkos Resilience + VeloC in
    /// single mode.
    FenixKokkosResilience,
    /// Fenix process recovery + Fenix In-Memory-Redundancy (buddy-rank)
    /// data storage.
    FenixImr,
    /// Fenix process recovery + the redundancy-store tier: k-replica or
    /// erasure-coded placement groups in peer memory, topology-aware
    /// placement, multi-failure recovery (see the `redstore` crate).
    FenixRedstore,
    /// Integrated system + partial rollback: only recovered ranks restore
    /// checkpoint data; survivors keep in-progress data and the application
    /// iterates to convergence (for tolerant iterative solvers).
    PartialRollback,
}

impl Strategy {
    /// All strategies, in presentation order.
    pub const ALL: [Strategy; 8] = [
        Strategy::Unprotected,
        Strategy::VelocOnly,
        Strategy::KokkosResilience,
        Strategy::FenixVeloc,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
        Strategy::FenixRedstore,
        Strategy::PartialRollback,
    ];

    /// Does this strategy keep processes alive across failures?
    pub fn uses_fenix(self) -> bool {
        matches!(
            self,
            Strategy::FenixVeloc
                | Strategy::FenixKokkosResilience
                | Strategy::FenixImr
                | Strategy::FenixRedstore
                | Strategy::PartialRollback
        )
    }

    /// Does this strategy use the Kokkos Resilience control-flow layer?
    pub fn uses_kokkos_resilience(self) -> bool {
        matches!(
            self,
            Strategy::KokkosResilience
                | Strategy::FenixKokkosResilience
                | Strategy::PartialRollback
        )
    }

    /// Does this strategy checkpoint data at all?
    pub fn checkpoints(self) -> bool {
        self != Strategy::Unprotected
    }

    /// Does this strategy store checkpoints in peer memory rather than the
    /// filesystem?
    pub fn uses_imr(self) -> bool {
        matches!(self, Strategy::FenixImr | Strategy::FenixRedstore)
    }

    /// Does this strategy use the multi-failure redundancy-store tier?
    pub fn uses_redstore(self) -> bool {
        self == Strategy::FenixRedstore
    }

    /// Does recovery roll back only the failed rank's data?
    pub fn partial_rollback(self) -> bool {
        self == Strategy::PartialRollback
    }

    /// Short label used in tables (matches the paper's figure labels).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Unprotected => "Reference",
            Strategy::VelocOnly => "VeloC",
            Strategy::KokkosResilience => "KR (VeloC)",
            Strategy::FenixVeloc => "Fenix+VeloC",
            Strategy::FenixKokkosResilience => "Fenix+KR (VeloC)",
            Strategy::FenixImr => "Fenix IMR",
            Strategy::FenixRedstore => "Fenix RedStore",
            Strategy::PartialRollback => "Partial-Rollback",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenix_strategies_partition() {
        let fenix: Vec<_> = Strategy::ALL.iter().filter(|s| s.uses_fenix()).collect();
        assert_eq!(fenix.len(), 5);
        assert!(!Strategy::KokkosResilience.uses_fenix());
    }

    #[test]
    fn peer_memory_strategies_are_fenix_strategies() {
        for s in Strategy::ALL.iter().filter(|s| s.uses_imr()) {
            assert!(s.uses_fenix(), "{s:?} stores in peer memory without Fenix");
        }
        assert!(Strategy::FenixRedstore.uses_redstore());
        assert!(!Strategy::FenixImr.uses_redstore());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = Strategy::ALL.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), Strategy::ALL.len());
    }

    #[test]
    fn unprotected_never_checkpoints() {
        assert!(!Strategy::Unprotected.checkpoints());
        assert!(Strategy::ALL.iter().filter(|s| s.checkpoints()).count() == 7);
    }
}
