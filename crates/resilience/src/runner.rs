//! Per-rank execution of each resilience strategy.
//!
//! Two families:
//!
//! * [`relaunch_rank`] — plain-MPI strategies (Unprotected, VeloC-only,
//!   Kokkos Resilience without Fenix). A failure aborts the whole job; the
//!   driver relaunches it and recovery happens at startup from the
//!   parallel filesystem.
//! * [`fenix_rank`] — process-resilient strategies. The application body
//!   runs inside [`fenix::run`]; recovery happens in place, following the
//!   paper's Figure 4 pattern (context creation on `Initial`,
//!   `ctx.reset(res_comm)` on re-entry).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use fenix::{DataGroup, ExhaustPolicy, Fenix, FenixConfig, ImrError, ImrPolicy, ImrStore, Role};
use kokkos::capture::Checkpointable;
use kokkos_resilience::{BackendKind, CheckpointFilter, Context, ContextConfig, RecoveryScope};
use redstore::{RedError, RedStore, RedundancyGroup, RedundancyMode};
use simmpi::{Comm, MpiError, MpiResult, Phase, RankCtx, ReduceOp};
use veloc::{Client, Config as VelocConfig, Mode, Protected, VelocError};

use crate::app::{IterativeApp, RankApp, RunMode};
use crate::bookkeeper::Bookkeeper;
use crate::strategy::Strategy;

/// Cross-rank experiment state shared between launches.
#[derive(Default)]
pub struct SharedState {
    /// Highest iteration count completed anywhere (for recompute booking).
    pub progress: AtomicU64,
    /// Fenix repairs observed.
    pub repairs: AtomicU64,
    /// Agreed application digest at completion.
    pub digest: AtomicU64,
    /// Iterations executed when the run completed.
    pub iterations: AtomicU64,
}

/// Region label used for the single checkpointed loop of every app.
const LOOP_LABEL: &str = "loop";
/// IMR member id holding the packed application views.
const IMR_MEMBER: u32 = 0;

fn veloc_err(e: VelocError) -> MpiError {
    match e {
        VelocError::Mpi(e) => e,
        // Local data-layer failures have no recovery layer to claim them;
        // abort via the error channel so collectives stay matched.
        VelocError::NotFound { .. }
        | VelocError::Corrupt { .. }
        | VelocError::UnknownRegion { .. }
        | VelocError::NoCommunicator
        | VelocError::BackendSpawn { .. } => MpiError::Aborted,
    }
}

fn imr_err(e: ImrError) -> MpiError {
    match e {
        ImrError::Mpi(e) => e,
        // Both replicas gone: unrecoverable, so the job aborts — through
        // the error channel, not a panic that strands surviving ranks.
        ImrError::DataLost { .. } => MpiError::Aborted,
    }
}

fn red_err(e: RedError) -> MpiError {
    match e {
        RedError::Mpi(e) => e,
        // More shards lost than the code tolerates, or no feasible
        // placement: no layer below can recover — abort through the error
        // channel so the surviving ranks' collectives stay matched.
        RedError::DataLost { .. } | RedError::Placement(_) | RedError::Codec(_) => {
            MpiError::Aborted
        }
    }
}

/// Adapts a captured view handle to a VeloC protected region.
struct ViewRegion(Arc<dyn Checkpointable>);

impl Protected for ViewRegion {
    fn snapshot(&self) -> Bytes {
        self.0.snapshot()
    }

    fn restore(&self, data: &[u8]) {
        self.0.restore(data);
    }

    fn byte_len(&self) -> usize {
        self.0.meta().bytes
    }

    fn generation(&self) -> Option<u64> {
        self.0.generation()
    }
}

fn protect_views(client: &Client, state: &dyn RankApp) {
    client.clear_protected();
    // Called once per body (re)entry: the rank may have just been rolled
    // back or replaced, so any delta base remembered from before is void.
    client.invalidate_deltas();
    for (i, v) in state.checkpoint_views().into_iter().enumerate() {
        client.protect(i as u32, Arc::new(ViewRegion(v)));
    }
}

fn pack_views(state: &dyn RankApp) -> Bytes {
    let parts: Vec<(u32, Bytes)> = state
        .checkpoint_views()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i as u32, v.snapshot()))
        .collect();
    veloc::serial::pack(&parts)
}

/// Restore captured views from an IMR blob. A blob that fails the
/// integrity frame (a corrupted partner copy) is a data loss, not a panic:
/// the caller aborts through the error channel like any other DataLost.
fn unpack_views(state: &dyn RankApp, blob: &Bytes, rank: usize) -> MpiResult<()> {
    let views = state.checkpoint_views();
    let Some(parts) = veloc::serial::unpack(blob) else {
        return Err(imr_err(ImrError::DataLost {
            member: IMR_MEMBER,
            rank,
        }));
    };
    for (i, payload) in parts {
        let Some(view) = views.get(i as usize) else {
            return Err(imr_err(ImrError::DataLost {
                member: IMR_MEMBER,
                rank,
            }));
        };
        view.restore(&payload);
    }
    Ok(())
}

/// The shared iteration loop. `checkpoint_hook` runs after iterations the
/// filter selects; `region_hook` wraps the step (identity for manual
/// strategies, a Kokkos Resilience region for KR strategies).
#[allow(clippy::too_many_arguments)]
fn iteration_loop(
    ctx: &RankCtx,
    comm: &Comm,
    state: &mut Box<dyn RankApp>,
    bk: &Bookkeeper,
    mode: RunMode,
    start: u64,
    filter: &CheckpointFilter,
    shared: &SharedState,
    mut step: impl FnMut(&RankCtx, &Comm, &mut Box<dyn RankApp>, u64, &Bookkeeper) -> MpiResult<()>,
    mut checkpoint_hook: impl FnMut(u64, &mut Box<dyn RankApp>) -> MpiResult<()>,
) -> MpiResult<u64> {
    let max = mode.max_iterations();
    // Snapshot the recompute horizon at loop (re-)entry: iterations below
    // the globally reached mark are re-execution of lost work. Reading the
    // live counter instead would mis-book first-time work whenever another
    // rank runs slightly ahead.
    let recompute_until = shared.progress.load(Ordering::Relaxed);
    let mut i = start;
    while i < max {
        bk.set_recompute(i < recompute_until);
        ctx.fault_point("iter", i)?;
        step(ctx, comm, state, i, bk)?;
        if filter.should_checkpoint(i) {
            // Chaos fault points bracketing the checkpoint: a kill can land
            // right before the data is saved ("ckpt") or right after local
            // commit, while the flush is still in flight ("commit").
            ctx.fault_point("ckpt", i)?;
            checkpoint_hook(i, state)?;
            ctx.fault_point("commit", i)?;
        }
        shared.progress.fetch_max(i + 1, Ordering::Relaxed);
        i += 1;
        if let RunMode::Converge { check_every, .. } = mode {
            if i.is_multiple_of(check_every) && state.converged(comm, bk)? {
                break;
            }
        }
    }
    bk.set_recompute(false);
    Ok(i)
}

fn finish(
    comm: &Comm,
    state: &mut Box<dyn RankApp>,
    shared: &SharedState,
    iterations: u64,
) -> MpiResult<()> {
    let digest = comm.allreduce_scalar(state.digest(), ReduceOp::Sum)?;
    shared.digest.store(digest, Ordering::Relaxed);
    shared.iterations.store(iterations, Ordering::Relaxed);
    Ok(())
}

// ---------------------------------------------------------------------------
// Relaunch-based strategies
// ---------------------------------------------------------------------------

/// One rank of a plain-MPI (abort-on-failure) job.
pub fn relaunch_rank(
    ctx: &mut RankCtx,
    app: &dyn IterativeApp,
    strategy: Strategy,
    checkpoints: u64,
    shared: &SharedState,
) -> MpiResult<()> {
    let comm = ctx.world().clone();
    let bk = Bookkeeper::new(Arc::clone(ctx.profile()));
    let mode = app.mode();
    let filter = app.checkpoint_filter(checkpoints);
    let name = app.name().to_owned();

    match strategy {
        Strategy::Unprotected => {
            let mut state = bk.book(Phase::AppInit, || app.init_rank(ctx, &comm));
            let done = iteration_loop(
                ctx,
                &comm,
                &mut state,
                &bk,
                mode,
                0,
                &CheckpointFilter::Never,
                shared,
                |_c, comm, st, i, bk| st.step(comm, i, bk),
                |_i, _st| Ok(()),
            )?;
            finish(&comm, &mut state, shared, done)
        }
        Strategy::VelocOnly => {
            // Stock VeloC: collective mode, manual control flow.
            let client = bk.book(Phase::ResilienceInit, || {
                Client::init(
                    ctx.cluster().clone(),
                    ctx.rank(),
                    VelocConfig {
                        mode: Mode::Collective,
                        async_flush: true,
                    },
                )
            });
            client.set_rank(comm.rank());
            client.set_recorder(ctx.recorder().clone());
            let mut state = bk.book(Phase::AppInit, || app.init_rank(ctx, &comm));
            protect_views(&client, state.as_ref());
            // Intact-version agreement: restart selection degrades to the
            // newest checkpoint whose blob verifies on every rank.
            let version = client
                .agree_intact_version(&name, Some(&comm))
                .map_err(veloc_err)?;
            let start = match version {
                Some(v) => {
                    bk.book(Phase::DataRecovery, || client.restart(&name, v))
                        .map_err(veloc_err)?;
                    state.post_restore(&comm, &bk)?;
                    v + 1
                }
                None => 0,
            };
            let done = iteration_loop(
                ctx,
                &comm,
                &mut state,
                &bk,
                mode,
                start,
                &filter,
                shared,
                |_c, comm, st, i, bk| st.step(comm, i, bk),
                |i, _st| {
                    bk.book(Phase::CheckpointFn, || client.checkpoint(&name, i))
                        .map_err(veloc_err)
                },
            )?;
            finish(&comm, &mut state, shared, done)?;
            client.finalize();
            Ok(())
        }
        Strategy::KokkosResilience => {
            // KR without Fenix: stock collective VeloC backend underneath.
            let kr = bk.book(Phase::ResilienceInit, || {
                Context::new(
                    ctx.cluster(),
                    comm.clone(),
                    ContextConfig {
                        name: name.clone(),
                        filter: filter.clone(),
                        backend: BackendKind::VelocCollective,
                        aliases: app.alias_labels(),
                    },
                )
            });
            kr.set_profile(Arc::clone(ctx.profile()));
            kr.set_recorder(ctx.recorder().clone());
            let mut state = bk.book(Phase::AppInit, || app.init_rank(ctx, &comm));
            let latest = kr_restart_version(&kr, mode.max_iterations())?;
            let start = latest.map_or(0, |v| v + 1);
            let done = iteration_loop(
                ctx,
                &comm,
                &mut state,
                &bk,
                mode,
                start,
                // The KR context applies the filter itself.
                &CheckpointFilter::Never,
                shared,
                |c, comm, st, i, bk| {
                    // KR checkpoints every view the region touches, so a
                    // restore reinstates *complete* state — no post_restore
                    // (rebuilding derived state would be redundant work and
                    // perturb float summation order).
                    c.fault_point("ckpt", i)?;
                    kr.checkpoint(LOOP_LABEL, i, || st.step(comm, i, bk))?;
                    c.fault_point("commit", i)?;
                    Ok(())
                },
                |_i, _st| Ok(()),
            )?;
            finish(&comm, &mut state, shared, done)?;
            kr.checkpoint_wait();
            Ok(())
        }
        other => panic!("{other:?} is not a relaunch strategy"),
    }
}

/// Agree on the KR restart version, guaranteeing the lazy restore can fire.
///
/// KR recovery is region-scoped: an armed restore only runs when the
/// checkpoint region next *executes*. If the agreement lands on the final
/// iteration's version (a kill at the last commit, after the checkpoint
/// completed), `start == max_iterations` and no region ever executes — the
/// job would silently finish on unrestored state. Re-agree bounded at
/// `max - 2` so at least one iteration replays and carries the restore;
/// if nothing intact remains below the bound, restart cold. Collective:
/// every rank reaches the same decision from the same agreed inputs.
fn kr_restart_version(kr: &Context, max: u64) -> MpiResult<Option<u64>> {
    let Some(bound) = max.checked_sub(2) else {
        // 0- or 1-iteration runs: any restorable version would be the
        // final one, whose restore could never fire. Cold restart.
        return Ok(None);
    };
    match kr.latest_version(LOOP_LABEL)? {
        Some(v) if v + 1 >= max => kr.latest_version_below(LOOP_LABEL, bound),
        other => Ok(other),
    }
}

// ---------------------------------------------------------------------------
// Fenix-based strategies
// ---------------------------------------------------------------------------

/// One rank of a process-resilient job (Figure 4's structure).
#[allow(clippy::too_many_arguments)]
pub fn fenix_rank(
    ctx: &mut RankCtx,
    app: &dyn IterativeApp,
    strategy: Strategy,
    spares: usize,
    checkpoints: u64,
    imr_policy: Option<ImrPolicy>,
    redundancy: Option<RedundancyMode>,
    shared: &SharedState,
) -> MpiResult<()> {
    let bk = Bookkeeper::new(Arc::clone(ctx.profile()));
    let mode = app.mode();
    let filter = app.checkpoint_filter(checkpoints);
    let name = app.name().to_owned();
    let fenix_cfg = FenixConfig {
        spares,
        on_exhaustion: ExhaustPolicy::Abort,
    };

    // State surviving re-entries (created lazily: spares have none until
    // promoted).
    let state: RefCell<Option<Box<dyn RankApp>>> = RefCell::new(None);
    let kr: RefCell<Option<Context>> = RefCell::new(None);
    let veloc_client: RefCell<Option<Client>> = RefCell::new(None);
    let imr_store = ImrStore::new();
    let red_store = RedStore::new();
    let ctx = &*ctx;

    let summary = fenix::run(ctx.world(), fenix_cfg, |fx, comm, role| {
        shared
            .repairs
            .fetch_max(fx.repair_count(), Ordering::Relaxed);
        // Chaos fault point *inside* recovery: a re-entered body can be
        // killed again before it restores, cascading failures into the
        // repair path itself (counted by recovery epoch).
        if role != Role::Initial {
            ctx.fault_point("recovery", fx.repair_count())?;
        }
        match strategy {
            Strategy::FenixVeloc => fenix_veloc_body(
                ctx,
                app,
                comm,
                role,
                &bk,
                &name,
                &filter,
                mode,
                shared,
                &state,
                &veloc_client,
            ),
            Strategy::FenixKokkosResilience | Strategy::PartialRollback => fenix_kr_body(
                ctx,
                app,
                comm,
                role,
                fx,
                &bk,
                &name,
                &filter,
                mode,
                shared,
                &state,
                &kr,
                strategy == Strategy::PartialRollback,
            ),
            Strategy::FenixImr => fenix_imr_body(
                ctx, app, comm, role, &bk, &filter, mode, shared, &state, &imr_store, imr_policy,
            ),
            Strategy::FenixRedstore => fenix_redstore_body(
                ctx, app, comm, role, &bk, &filter, mode, shared, &state, &red_store, redundancy,
            ),
            other => panic!("{other:?} is not a Fenix strategy"),
        }
    })?;
    shared.repairs.fetch_max(summary.repairs, Ordering::Relaxed);
    if let Some(kr) = kr.borrow().as_ref() {
        kr.checkpoint_wait();
    }
    if let Some(client) = veloc_client.borrow().as_ref() {
        client.finalize();
    }
    Ok(())
}

/// Fenix + VeloC (single mode), manual control flow.
#[allow(clippy::too_many_arguments)]
fn fenix_veloc_body(
    ctx: &RankCtx,
    app: &dyn IterativeApp,
    comm: &Comm,
    role: Role,
    bk: &Bookkeeper,
    name: &str,
    filter: &CheckpointFilter,
    mode: RunMode,
    shared: &SharedState,
    state: &RefCell<Option<Box<dyn RankApp>>>,
    client_cell: &RefCell<Option<Client>>,
) -> MpiResult<()> {
    if client_cell.borrow().is_none() {
        let client = bk.book(Phase::ResilienceInit, || {
            Client::init(
                ctx.cluster().clone(),
                ctx.rank(),
                VelocConfig {
                    mode: Mode::Single,
                    async_flush: true,
                },
            )
        });
        *client_cell.borrow_mut() = Some(client);
    }
    let client_ref = client_cell.borrow();
    let client = client_ref.as_ref().expect("client initialized");
    // Paper: update the cached rank id after a repair.
    client.set_rank(comm.rank());
    client.set_recorder(ctx.recorder().clone());

    if state.borrow().is_none() {
        *state.borrow_mut() = Some(bk.book(Phase::AppInit, || app.init_rank(ctx, comm)));
    }
    let mut state_ref = state.borrow_mut();
    let st = state_ref.as_mut().expect("state initialized");
    protect_views(client, st.as_ref());

    // Manual best-version reduction (the paper's non-collective pattern),
    // hardened to agree only on versions intact everywhere: a corrupted
    // newest checkpoint degrades the restart instead of wedging it.
    let agreed = client
        .agree_intact_version(name, Some(comm))
        .map_err(veloc_err)?
        .map_or(-1i64, |v| v as i64);
    let start = if role != Role::Initial && agreed >= 0 {
        let v = agreed as u64;
        bk.book(Phase::DataRecovery, || client.restart(name, v))
            .map_err(veloc_err)?;
        st.post_restore(comm, bk)?;
        v + 1
    } else if role != Role::Initial {
        // Failure before the first checkpoint: everyone restarts cleanly.
        drop(state_ref);
        *state.borrow_mut() = Some(bk.book(Phase::AppInit, || app.init_rank(ctx, comm)));
        state_ref = state.borrow_mut();
        protect_views(client, state_ref.as_ref().expect("state").as_ref());
        0
    } else {
        0
    };

    let st = state_ref.as_mut().expect("state initialized");
    let done = iteration_loop(
        ctx,
        comm,
        st,
        bk,
        mode,
        start,
        filter,
        shared,
        |_c, comm, st, i, bk| st.step(comm, i, bk),
        |i, _st| {
            bk.book(Phase::CheckpointFn, || client.checkpoint(name, i))
                .map_err(veloc_err)
        },
    )?;
    finish(comm, st, shared, done)
}

/// The paper's integrated system: Fenix + Kokkos Resilience + VeloC-single.
/// With `partial`, survivors skip data restoration (partial rollback).
#[allow(clippy::too_many_arguments)]
fn fenix_kr_body(
    ctx: &RankCtx,
    app: &dyn IterativeApp,
    comm: &Comm,
    role: Role,
    fx: &Fenix,
    bk: &Bookkeeper,
    name: &str,
    filter: &CheckpointFilter,
    mode: RunMode,
    shared: &SharedState,
    state: &RefCell<Option<Box<dyn RankApp>>>,
    kr_cell: &RefCell<Option<Context>>,
    partial: bool,
) -> MpiResult<()> {
    // Figure 4: `make_context(res_comm)` on Initial, `ctx.reset(res_comm)`
    // on re-entry.
    if kr_cell.borrow().is_none() {
        let kr = bk.book(Phase::ResilienceInit, || {
            Context::new(
                ctx.cluster(),
                comm.clone(),
                ContextConfig {
                    name: name.to_owned(),
                    filter: filter.clone(),
                    backend: BackendKind::VelocSingle,
                    aliases: app.alias_labels(),
                },
            )
        });
        kr.set_profile(Arc::clone(bk.profile()));
        kr.set_recorder(ctx.recorder().clone());
        *kr_cell.borrow_mut() = Some(kr);
    } else {
        kr_cell
            .borrow()
            .as_ref()
            .expect("context present")
            .reset(comm.clone());
    }
    let kr_ref = kr_cell.borrow();
    let kr = kr_ref.as_ref().expect("context initialized");

    if partial && role != Role::Initial {
        // Only the replacement ranks roll back; survivors keep their
        // in-progress data.
        kr.set_recovery_scope(RecoveryScope::OnlyRanks(fx.recovered_ranks()));
    }

    if state.borrow().is_none() {
        *state.borrow_mut() = Some(bk.book(Phase::AppInit, || app.init_rank(ctx, comm)));
    }

    let latest = kr_restart_version(kr, mode.max_iterations())?;
    let start = match latest {
        Some(v) => v + 1,
        None if role != Role::Initial => {
            // Failure before the first checkpoint: consistent cold restart.
            *state.borrow_mut() = Some(bk.book(Phase::AppInit, || app.init_rank(ctx, comm)));
            0
        }
        None => 0,
    };

    let mut state_ref = state.borrow_mut();
    let st = state_ref.as_mut().expect("state initialized");
    let done = iteration_loop(
        ctx,
        comm,
        st,
        bk,
        mode,
        start,
        // KR applies the filter internally.
        &CheckpointFilter::Never,
        shared,
        |c, comm, st, i, bk| {
            // Complete-state restore: no post_restore (see relaunch_rank).
            c.fault_point("ckpt", i)?;
            kr.checkpoint(LOOP_LABEL, i, || st.step(comm, i, bk))?;
            c.fault_point("commit", i)?;
            Ok(())
        },
        |_i, _st| Ok(()),
    )?;
    finish(comm, st, shared, done)
}

/// Fenix process recovery + in-memory-redundancy data storage.
#[allow(clippy::too_many_arguments)]
fn fenix_imr_body(
    ctx: &RankCtx,
    app: &dyn IterativeApp,
    comm: &Comm,
    role: Role,
    bk: &Bookkeeper,
    filter: &CheckpointFilter,
    mode: RunMode,
    shared: &SharedState,
    state: &RefCell<Option<Box<dyn RankApp>>>,
    store: &Arc<ImrStore>,
    imr_policy: Option<ImrPolicy>,
) -> MpiResult<()> {
    // Default policy is layout-aware: on multi-rank-per-node layouts a
    // naive Pair/Ring can place a buddy on the owner's own node — a
    // whole-node failure then takes both copies and IMR covers nothing.
    let policy = imr_policy.unwrap_or_else(|| ImrPolicy::auto(&redstore::comm_node_map(comm)));
    let group = DataGroup::new(Arc::clone(store), comm, policy);

    if state.borrow().is_none() {
        *state.borrow_mut() = Some(bk.book(Phase::AppInit, || app.init_rank(ctx, comm)));
    }

    // Epoch-uniform predicate, not a rank-dependent one: after a repair,
    // *every* rank re-enters with a non-Initial role together, so all
    // ranks take the same arm of the branch below (and its allgather).
    let resuming = role != Role::Initial;
    let start = if resuming {
        // Agree who actually holds the committed version. The last repair's
        // replacement list (`Fenix::recovered_ranks`) is not enough: when a
        // failure cascades into recovery itself, an *earlier* replacement
        // whose restore was interrupted holds nothing, and treating it as a
        // survivor strands the job — it aborts on its empty store while the
        // true survivors enter the iteration loop and wait on it forever.
        // Possession is the agreement: committed versions are consistent
        // across holders (two-phase store), so the max over the gathered
        // locals is the committed version and every rank below it — every
        // replacement, however many repairs ago — is recovering.
        let local = store.latest_version(IMR_MEMBER).map_or(-1i64, |v| v as i64);
        let locals = comm.allgather(&[local])?;
        let committed = locals.iter().copied().max().unwrap_or(-1);
        if committed >= 0 {
            let recovering: Vec<usize> = locals
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != committed)
                .map(|(r, _)| r)
                .collect();
            let (version, blob) = bk
                .book(Phase::DataRecovery, || {
                    group.restore(IMR_MEMBER, &recovering)
                })
                .map_err(imr_err)?;
            debug_assert_eq!(version as i64, committed, "commit protocol consistency");
            let mut sref = state.borrow_mut();
            let st = sref.as_mut().expect("state initialized");
            unpack_views(st.as_ref(), &blob, comm.rank())?;
            st.post_restore(comm, bk)?;
            version + 1
        } else {
            // Failure before the first commit: consistent cold restart.
            *state.borrow_mut() = Some(bk.book(Phase::AppInit, || app.init_rank(ctx, comm)));
            0
        }
    } else {
        0
    };

    let mut state_ref = state.borrow_mut();
    let st = state_ref.as_mut().expect("state initialized");
    let done = iteration_loop(
        ctx,
        comm,
        st,
        bk,
        mode,
        start,
        filter,
        shared,
        |_c, comm, st, i, bk| st.step(comm, i, bk),
        |i, st| {
            let blob = pack_views(st.as_ref());
            bk.book(Phase::CheckpointFn, || group.store(IMR_MEMBER, i, blob))
        },
    )?;
    finish(comm, st, shared, done)
}

/// Fenix process recovery + the multi-failure redundancy-store tier.
///
/// Structurally the twin of [`fenix_imr_body`], with [`RedundancyGroup`]
/// in place of the buddy pair: checkpoints are replicated or erasure-coded
/// across a topology-aware placement group, so recovery survives several
/// concurrent rank losses — including every rank of one modeled node —
/// instead of exactly one per buddy pair.
#[allow(clippy::too_many_arguments)]
fn fenix_redstore_body(
    ctx: &RankCtx,
    app: &dyn IterativeApp,
    comm: &Comm,
    role: Role,
    bk: &Bookkeeper,
    filter: &CheckpointFilter,
    mode: RunMode,
    shared: &SharedState,
    state: &RefCell<Option<Box<dyn RankApp>>>,
    store: &Arc<RedStore>,
    redundancy: Option<RedundancyMode>,
) -> MpiResult<()> {
    let group = RedundancyGroup::new(Arc::clone(store), comm, redundancy);

    if state.borrow().is_none() {
        *state.borrow_mut() = Some(bk.book(Phase::AppInit, || app.init_rank(ctx, comm)));
    }

    // Epoch-uniform, as in `fenix_imr_body`: all ranks resume together.
    let resuming = role != Role::Initial;
    let start = if resuming {
        // Possession-based agreement, exactly as in `fenix_imr_body`: the
        // max over gathered local versions is the committed version (the
        // two-phase store keeps committed versions consistent), and every
        // rank below it — every replacement, however many repairs ago — is
        // recovering.
        let local = store.latest_version(IMR_MEMBER).map_or(-1i64, |v| v as i64);
        let locals = comm.allgather(&[local])?;
        let committed = locals.iter().copied().max().unwrap_or(-1);
        if committed >= 0 {
            let recovering: Vec<usize> = locals
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != committed)
                .map(|(r, _)| r)
                .collect();
            let (version, blob) = bk
                .book(Phase::DataRecovery, || {
                    group.restore(IMR_MEMBER, &recovering)
                })
                .map_err(red_err)?;
            debug_assert_eq!(version as i64, committed, "commit protocol consistency");
            let mut sref = state.borrow_mut();
            let st = sref.as_mut().expect("state initialized");
            unpack_views(st.as_ref(), &blob, comm.rank())?;
            st.post_restore(comm, bk)?;
            version + 1
        } else {
            // Failure before the first commit: consistent cold restart.
            *state.borrow_mut() = Some(bk.book(Phase::AppInit, || app.init_rank(ctx, comm)));
            0
        }
    } else {
        0
    };

    let mut state_ref = state.borrow_mut();
    let st = state_ref.as_mut().expect("state initialized");
    let done = iteration_loop(
        ctx,
        comm,
        st,
        bk,
        mode,
        start,
        filter,
        shared,
        |_c, comm, st, i, bk| st.step(comm, i, bk),
        |i, st| {
            let blob = pack_views(st.as_ref());
            bk.book(Phase::CheckpointFn, || {
                group.store(IMR_MEMBER, i, blob).map_err(red_err)
            })
        },
    )?;
    finish(comm, st, shared, done)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_layer_failures_abort_through_the_error_channel() {
        assert!(matches!(
            veloc_err(VelocError::Mpi(MpiError::Revoked)),
            MpiError::Revoked
        ));
        assert!(matches!(
            veloc_err(VelocError::NoCommunicator),
            MpiError::Aborted
        ));
        assert!(matches!(
            imr_err(ImrError::Mpi(MpiError::Killed)),
            MpiError::Killed
        ));
        assert!(matches!(
            imr_err(ImrError::DataLost { member: 0, rank: 1 }),
            MpiError::Aborted
        ));
        assert!(matches!(
            red_err(RedError::Mpi(MpiError::Killed)),
            MpiError::Killed
        ));
        assert!(matches!(
            red_err(RedError::DataLost { member: 0, rank: 1 }),
            MpiError::Aborted
        ));
    }
}
