//! In-memory-redundancy data backend for Kokkos Resilience — the paper's
//! Future Work §VII.A: "Further integration of Fenix and Kokkos Resilience
//! in the form of a data-resiliency backend."
//!
//! With this backend, a Kokkos Resilience context drives Fenix's buddy-rank
//! storage directly: checkpoint regions detected by automatic capture are
//! packed into one blob per rank and committed to the buddy pair, with no
//! filesystem involvement at all. The best-version agreement is a *max*
//! reduction — committed versions are consistent across survivors (the
//! two-phase store guarantees it) and a replacement rank, which contributes
//! "nothing", restores from its buddy's copy.
//!
//! Requirements: the context must run under Fenix (restores need the
//! recovered-rank hint, see [`kokkos_resilience::Context::set_recovering_ranks`])
//! and with `RecoveryScope::All` (store and restore are collective).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use bytes::Bytes;
use fenix::{DataGroup, ImrError, ImrPolicy, ImrStore};
use kokkos_resilience::{DataBackend, RegionViews};
use simmpi::{Comm, MpiError, MpiResult, ReduceOp};

/// Kokkos Resilience data backend storing checkpoints in peer memory.
pub struct ImrBackend {
    store: Arc<ImrStore>,
    policy: Option<ImrPolicy>,
}

impl ImrBackend {
    /// `store` must outlive Fenix repairs (create it outside the run loop);
    /// `policy = None` selects a topology-aware ring when any node hosts
    /// several communicator ranks, else Pair for even communicators, Ring
    /// otherwise.
    pub fn new(store: Arc<ImrStore>, policy: Option<ImrPolicy>) -> Self {
        ImrBackend { store, policy }
    }

    pub fn store(&self) -> &Arc<ImrStore> {
        &self.store
    }

    fn policy_for(&self, comm: &Comm) -> ImrPolicy {
        self.policy
            .unwrap_or_else(|| ImrPolicy::auto(&redstore::comm_node_map(comm)))
    }

    /// Stable member id per region name.
    pub(crate) fn member_of(name: &str) -> u32 {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        (h.finish() & 0x7fff_ffff) as u32
    }

    fn pack(views: &RegionViews) -> Bytes {
        let parts: Vec<(u32, Bytes)> = views.iter().map(|(id, v)| (*id, v.snapshot())).collect();
        veloc::serial::pack(&parts)
    }

    fn unpack(views: &RegionViews, blob: &Bytes) {
        let parts = veloc::serial::unpack(blob).expect("IMR blob intact");
        for (id, payload) in parts {
            let (_, handle) = views
                .iter()
                .find(|(vid, _)| *vid == id)
                .expect("region id present");
            handle.restore(&payload);
        }
    }

    fn imr_err(e: ImrError) -> MpiError {
        match e {
            ImrError::Mpi(m) => m,
            // Both replicas gone: no layer below can recover this, so the
            // job aborts — through the error channel, keeping the surviving
            // ranks' collectives matched instead of panicking one rank.
            ImrError::DataLost { .. } => MpiError::Aborted,
        }
    }
}

impl DataBackend for ImrBackend {
    fn set_rank(&self, _rank: usize) {
        // Peer storage is keyed by communicator position; nothing cached.
    }

    fn checkpoint(
        &self,
        comm: &Comm,
        name: &str,
        version: u64,
        views: &RegionViews,
    ) -> MpiResult<()> {
        let group = DataGroup::new(Arc::clone(&self.store), comm, self.policy_for(comm));
        group.store(Self::member_of(name), version, Self::pack(views))
    }

    fn latest_local(&self, name: &str) -> Option<u64> {
        self.store.latest_version(Self::member_of(name))
    }

    fn latest_agreed(&self, comm: &Comm, name: &str) -> MpiResult<Option<u64>> {
        // Max: survivors hold the (consistent) committed version; a
        // replacement rank holds nothing but can restore from its buddy.
        let local = self.latest_local(name).map_or(-1i64, |v| v as i64);
        let max = comm.allreduce_scalar(local, ReduceOp::Max)?;
        Ok((max >= 0).then_some(max as u64))
    }

    fn restore(
        &self,
        comm: &Comm,
        name: &str,
        version: u64,
        views: &RegionViews,
        recovering_ranks: &[usize],
    ) -> MpiResult<()> {
        let group = DataGroup::new(Arc::clone(&self.store), comm, self.policy_for(comm));
        let (got, blob) = group
            .restore(Self::member_of(name), recovering_ranks)
            .map_err(Self::imr_err)?;
        debug_assert_eq!(got, version, "commit protocol keeps versions consistent");
        Self::unpack(views, &blob);
        Ok(())
    }

    fn clear(&self) {
        // Survivor copies must persist across context resets — clearing the
        // peer store would defeat recovery. Region metadata re-detection is
        // handled by the context itself.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_ids_are_stable_and_distinct() {
        let a = ImrBackend::member_of("app.loop");
        let b = ImrBackend::member_of("app.loop");
        let c = ImrBackend::member_of("app.other");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        use kokkos::capture::Checkpointable;
        use kokkos::View;
        let v: View<u64> = View::from_vec("r", vec![1, 2, 3]);
        let views: Vec<(u32, Arc<dyn Checkpointable>)> = vec![(7, Arc::new(v.clone()))];
        let blob = ImrBackend::pack(&views);
        v.fill(0);
        ImrBackend::unpack(&views, &blob);
        assert_eq!(*v.read_uncaptured(), vec![1, 2, 3]);
    }
}
