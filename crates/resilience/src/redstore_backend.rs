//! Redundancy-store data backend for Kokkos Resilience — the multi-failure
//! sibling of [`crate::imr_backend`].
//!
//! Where [`crate::ImrBackend`] commits each rank's blob to exactly one
//! buddy, this backend hands it to a [`RedundancyGroup`]: k replicas or
//! erasure-coded shards spread over a topology-aware placement group, so a
//! checkpoint survives several concurrent rank losses (including a whole
//! modeled node) with tunable memory overhead.
//!
//! The version agreement is the same *max* reduction: committed versions
//! are consistent across survivors (two-phase store) and replacement
//! ranks, contributing "nothing", restore from the surviving shards.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use bytes::Bytes;
use kokkos_resilience::{DataBackend, RegionViews};
use redstore::{RedError, RedStore, RedundancyGroup, RedundancyMode};
use simmpi::{Comm, MpiError, MpiResult, ReduceOp};

/// Kokkos Resilience data backend storing checkpoints in the redundancy
/// tier.
pub struct RedstoreBackend {
    store: Arc<RedStore>,
    mode: Option<RedundancyMode>,
}

impl RedstoreBackend {
    /// `store` must outlive Fenix repairs (create it outside the run loop);
    /// `mode = None` selects the strongest placement-feasible mode for the
    /// communicator's node layout (RS(4,2) → XOR(3) → 2-replica).
    pub fn new(store: Arc<RedStore>, mode: Option<RedundancyMode>) -> Self {
        RedstoreBackend { store, mode }
    }

    pub fn store(&self) -> &Arc<RedStore> {
        &self.store
    }

    /// Stable member id per region name (same hash as [`crate::ImrBackend`]
    /// so the two backends agree on namespaces).
    fn member_of(name: &str) -> u32 {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        (h.finish() & 0x7fff_ffff) as u32
    }

    fn pack(views: &RegionViews) -> Bytes {
        let parts: Vec<(u32, Bytes)> = views.iter().map(|(id, v)| (*id, v.snapshot())).collect();
        veloc::serial::pack(&parts)
    }

    fn unpack(views: &RegionViews, blob: &Bytes) {
        let parts = veloc::serial::unpack(blob).expect("redundancy blob intact");
        for (id, payload) in parts {
            let (_, handle) = views
                .iter()
                .find(|(vid, _)| *vid == id)
                .expect("region id present");
            handle.restore(&payload);
        }
    }

    fn red_err(e: RedError) -> MpiError {
        match e {
            RedError::Mpi(m) => m,
            // Beyond the code's tolerance (or no feasible placement): no
            // layer below can recover, so the job aborts — through the
            // error channel, keeping survivors' collectives matched.
            RedError::DataLost { .. } | RedError::Placement(_) | RedError::Codec(_) => {
                MpiError::Aborted
            }
        }
    }
}

impl DataBackend for RedstoreBackend {
    fn set_rank(&self, _rank: usize) {
        // Group storage is keyed by communicator position; nothing cached.
    }

    fn checkpoint(
        &self,
        comm: &Comm,
        name: &str,
        version: u64,
        views: &RegionViews,
    ) -> MpiResult<()> {
        let group = RedundancyGroup::new(Arc::clone(&self.store), comm, self.mode);
        group
            .store(Self::member_of(name), version, Self::pack(views))
            .map_err(Self::red_err)
    }

    fn latest_local(&self, name: &str) -> Option<u64> {
        self.store.latest_version(Self::member_of(name))
    }

    fn latest_agreed(&self, comm: &Comm, name: &str) -> MpiResult<Option<u64>> {
        let local = self.latest_local(name).map_or(-1i64, |v| v as i64);
        let max = comm.allreduce_scalar(local, ReduceOp::Max)?;
        Ok((max >= 0).then_some(max as u64))
    }

    fn restore(
        &self,
        comm: &Comm,
        name: &str,
        version: u64,
        views: &RegionViews,
        recovering_ranks: &[usize],
    ) -> MpiResult<()> {
        let group = RedundancyGroup::new(Arc::clone(&self.store), comm, self.mode);
        let (got, blob) = group
            .restore(Self::member_of(name), recovering_ranks)
            .map_err(Self::red_err)?;
        debug_assert_eq!(got, version, "commit protocol keeps versions consistent");
        Self::unpack(views, &blob);
        Ok(())
    }

    fn clear(&self) {
        // Survivor copies must persist across context resets — clearing the
        // group store would defeat recovery.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ImrBackend;

    #[test]
    fn member_ids_match_the_imr_backend_namespace() {
        assert_eq!(
            RedstoreBackend::member_of("app.loop"),
            ImrBackend::member_of("app.loop")
        );
        assert_ne!(
            RedstoreBackend::member_of("app.loop"),
            RedstoreBackend::member_of("app.other")
        );
    }

    #[test]
    fn unrecoverable_losses_abort_through_the_error_channel() {
        assert!(matches!(
            RedstoreBackend::red_err(RedError::DataLost { member: 1, rank: 2 }),
            MpiError::Aborted
        ));
        assert!(matches!(
            RedstoreBackend::red_err(RedError::Mpi(MpiError::Revoked)),
            MpiError::Revoked
        ));
    }
}
