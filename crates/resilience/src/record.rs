//! Experiment outcome records — the rows of the paper's figures.

use std::time::Duration;

use simmpi::{Phase, Profile};
use telemetry::PhaseAccumulator;

use crate::strategy::Strategy;

/// Aggregated cost breakdown for one run, in the paper's categories.
#[derive(Clone, Debug, Default)]
pub struct CostBreakdown {
    pub app_compute: Duration,
    pub app_mpi: Duration,
    pub resilience_init: Duration,
    pub checkpoint_fn: Duration,
    pub data_recovery: Duration,
    pub recompute: Duration,
    pub force_compute: Duration,
    pub neighboring: Duration,
    pub communicator: Duration,
    pub app_init: Duration,
    /// Wall time not accounted by any in-app phase: job startup/teardown,
    /// relaunch, finalize — the paper's "Other".
    pub other: Duration,
}

impl CostBreakdown {
    /// Build from a critical-path profile plus the measured wall time.
    /// Reads only the shim's span-data snapshot, so any accumulator a
    /// telemetry recorder books into (spans, `Profile::time`, direct adds)
    /// feeds the same breakdown.
    pub fn from_profile(profile: &Profile, wall: Duration) -> Self {
        Self::from_phases(&profile.snapshot(), wall)
    }

    /// Build from a raw telemetry accumulator (e.g. a per-rank exclusive-time
    /// accumulator from `Telemetry::exclusive_phases`).
    pub fn from_accumulator(acc: &PhaseAccumulator, wall: Duration) -> Self {
        Self::from_phases(&acc.snapshot(), wall)
    }

    /// Build from `(phase, duration)` span totals plus the measured wall
    /// time — the common core of the profile/accumulator constructors.
    pub fn from_phases(phases: &[(Phase, Duration)], wall: Duration) -> Self {
        let get = |want: Phase| -> Duration {
            phases
                .iter()
                .find(|(p, _)| *p == want)
                .map_or(Duration::ZERO, |&(_, d)| d)
        };
        let accounted: Duration = phases.iter().map(|&(_, d)| d).sum();
        CostBreakdown {
            app_compute: get(Phase::AppCompute),
            app_mpi: get(Phase::AppMpi),
            resilience_init: get(Phase::ResilienceInit),
            checkpoint_fn: get(Phase::CheckpointFn),
            data_recovery: get(Phase::DataRecovery),
            recompute: get(Phase::Recompute),
            force_compute: get(Phase::ForceCompute),
            neighboring: get(Phase::Neighboring),
            communicator: get(Phase::Communicator),
            app_init: get(Phase::AppInit),
            other: wall.saturating_sub(accounted),
        }
    }

    /// Total of every category (≈ wall time).
    pub fn total(&self) -> Duration {
        self.app_compute
            + self.app_mpi
            + self.resilience_init
            + self.checkpoint_fn
            + self.data_recovery
            + self.recompute
            + self.force_compute
            + self.neighboring
            + self.communicator
            + self.app_init
            + self.other
    }

    /// `(category, seconds)` rows in the paper's figure order. `AppInit` is
    /// folded into "Other", as in the paper ("data initialization, MPI job
    /// startup/teardown, and finalization time").
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("App compute", self.app_compute.as_secs_f64()),
            ("App MPI", self.app_mpi.as_secs_f64()),
            ("Force Compute", self.force_compute.as_secs_f64()),
            ("Neighboring", self.neighboring.as_secs_f64()),
            ("Communicator", self.communicator.as_secs_f64()),
            (
                "Resilience Initialization",
                self.resilience_init.as_secs_f64(),
            ),
            ("Checkpoint Function", self.checkpoint_fn.as_secs_f64()),
            ("Data Recovery", self.data_recovery.as_secs_f64()),
            ("Recompute", self.recompute.as_secs_f64()),
            ("Other", (self.other + self.app_init).as_secs_f64()),
        ]
    }
}

/// Outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    pub strategy: Strategy,
    pub ranks: usize,
    /// End-to-end wall time, including modeled relaunch costs — the
    /// equivalent of timing `mpirun` with the bash `time` utility.
    pub wall: Duration,
    pub breakdown: CostBreakdown,
    /// Whole-job relaunches performed (non-Fenix recovery).
    pub relaunches: usize,
    /// Fenix repairs performed (process-level recovery).
    pub repairs: u64,
    /// Failures injected by the fault plan.
    pub failures: usize,
    /// Application digest at completion (for correctness checks).
    pub digest: u64,
    /// Iterations executed in the final (successful) pass.
    pub iterations: u64,
}

impl RunRecord {
    /// Human-readable single-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<18} wall={:>8.3}s ckpt={:>7.3}s recov={:>7.3}s recomp={:>7.3}s other={:>7.3}s relaunches={} repairs={}",
            self.strategy.label(),
            self.wall.as_secs_f64(),
            self.breakdown.checkpoint_fn.as_secs_f64(),
            self.breakdown.data_recovery.as_secs_f64(),
            self.breakdown.recompute.as_secs_f64(),
            (self.breakdown.other + self.breakdown.app_init).as_secs_f64(),
            self.relaunches,
            self.repairs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_wall_minus_accounted() {
        let p = Profile::new();
        p.add(Phase::AppCompute, Duration::from_millis(60));
        p.add(Phase::CheckpointFn, Duration::from_millis(15));
        let b = CostBreakdown::from_profile(&p, Duration::from_millis(100));
        assert_eq!(b.other, Duration::from_millis(25));
        assert_eq!(b.total(), Duration::from_millis(100));
    }

    #[test]
    fn other_saturates_when_profiles_overlap_wall() {
        let p = Profile::new();
        p.add(Phase::AppCompute, Duration::from_millis(150));
        let b = CostBreakdown::from_profile(&p, Duration::from_millis(100));
        assert_eq!(b.other, Duration::ZERO);
    }

    #[test]
    fn from_phases_matches_from_profile() {
        let p = Profile::new();
        p.add(Phase::AppCompute, Duration::from_millis(40));
        p.add(Phase::DataRecovery, Duration::from_millis(10));
        let wall = Duration::from_millis(70);
        let a = CostBreakdown::from_profile(&p, wall);
        let b = CostBreakdown::from_phases(&p.snapshot(), wall);
        assert_eq!(a.app_compute, b.app_compute);
        assert_eq!(a.data_recovery, b.data_recovery);
        assert_eq!(a.other, b.other);
        assert_eq!(b.other, Duration::from_millis(20));
    }

    #[test]
    fn rows_cover_figure_categories() {
        let b = CostBreakdown::default();
        let names: Vec<_> = b.rows().iter().map(|(n, _)| *n).collect();
        for expected in [
            "App compute",
            "App MPI",
            "Checkpoint Function",
            "Data Recovery",
            "Recompute",
            "Other",
            "Force Compute",
            "Neighboring",
            "Communicator",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
