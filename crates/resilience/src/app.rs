//! The application abstraction the strategy runners drive.
//!
//! An [`IterativeApp`] describes a bulk-synchronous iterative application
//! (both of the paper's benchmarks fit: Heatdis is a stencil loop, MiniMD a
//! timestep loop). Each rank instantiates a [`RankApp`] holding its views
//! and decomposition; the runner owns the loop, the checkpoint calls, and
//! recovery, so one application definition runs under every
//! [`crate::Strategy`].

use std::sync::Arc;

use kokkos::capture::Checkpointable;
use kokkos_resilience::CheckpointFilter;
use simmpi::{Comm, MpiResult, RankCtx};

use crate::bookkeeper::Bookkeeper;

/// How the run loop terminates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Run exactly this many iterations.
    FixedIterations(u64),
    /// Run until [`RankApp::converged`] (checked every `check_every`
    /// iterations), bounded by `max_iterations`. Required for the
    /// partial-rollback strategy.
    Converge {
        check_every: u64,
        max_iterations: u64,
    },
}

impl RunMode {
    /// Upper bound on iterations (checkpoint filters are derived from it).
    pub fn max_iterations(&self) -> u64 {
        match *self {
            RunMode::FixedIterations(n) => n,
            RunMode::Converge { max_iterations, .. } => max_iterations,
        }
    }
}

/// An application, instantiable on each rank.
pub trait IterativeApp: Send + Sync {
    /// Name used to namespace checkpoint sets.
    fn name(&self) -> &str;

    /// Loop termination.
    fn mode(&self) -> RunMode;

    /// Build this rank's state: allocate views, initial conditions,
    /// decomposition. Booked under `AppInit` by the runner (this is the
    /// work a relaunch has to redo — the paper's "Other" savings).
    fn init_rank(&self, ctx: &RankCtx, comm: &Comm) -> Box<dyn RankApp>;

    /// View labels the application declares as aliases (swap space that
    /// must not be checkpointed). Forwarded to the Kokkos Resilience
    /// context under KR strategies.
    fn alias_labels(&self) -> Vec<String> {
        Vec::new()
    }

    /// The checkpoint filter for a requested checkpoint count. The default
    /// spreads the checkpoints evenly; applications with structural
    /// constraints override it (MiniMD aligns checkpoints with
    /// neighbor-rebuild boundaries, like production MD restart files).
    fn checkpoint_filter(&self, checkpoints: u64) -> CheckpointFilter {
        CheckpointFilter::for_total(self.mode().max_iterations(), checkpoints)
    }
}

/// Per-rank application state.
pub trait RankApp {
    /// Execute one iteration: compute + communication, booked through `bk`.
    /// Must lock its views through `View::read`/`View::write` so capture
    /// detection works under Kokkos Resilience strategies.
    fn step(&mut self, comm: &Comm, iteration: u64, bk: &Bookkeeper) -> MpiResult<()>;

    /// The views to checkpoint, for strategies that manage data manually
    /// (VeloC-only, Fenix+VeloC, Fenix IMR). Order must be deterministic
    /// across ranks.
    fn checkpoint_views(&self) -> Vec<Arc<dyn Checkpointable>>;

    /// Convergence test (global; may communicate). Only called in
    /// [`RunMode::Converge`]. All ranks call it at the same iterations.
    fn converged(&mut self, _comm: &Comm, _bk: &Bookkeeper) -> MpiResult<bool> {
        Ok(false)
    }

    /// Rebuild derived state after checkpoint data was restored (e.g.
    /// MiniMD neighbor lists). Default: nothing.
    fn post_restore(&mut self, _comm: &Comm, _bk: &Bookkeeper) -> MpiResult<()> {
        Ok(())
    }

    /// A content digest for correctness tests (deterministic apps only).
    fn digest(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_mode_max_iterations() {
        assert_eq!(RunMode::FixedIterations(40).max_iterations(), 40);
        assert_eq!(
            RunMode::Converge {
                check_every: 10,
                max_iterations: 500
            }
            .max_iterations(),
            500
        );
    }
}
