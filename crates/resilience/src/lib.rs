//! The integrated multi-layer resilience system — the paper's contribution.
//!
//! This crate glues the three layers together exactly as §IV–§V describe:
//! [`fenix`] handles process recovery (detecting failures, repairing the
//! communicator, reporting roles), [`kokkos_resilience`] handles control
//! flow (what/when to checkpoint, how to resume), and [`veloc`] handles the
//! data (asynchronous multi-tier checkpoint/restart). The key integration
//! moves are:
//!
//! * VeloC runs in **non-collective mode** with the best-checkpoint
//!   agreement performed above it;
//! * the Kokkos Resilience context is **reset with the repaired
//!   communicator** after every Fenix recovery (Figure 4's
//!   `ctx.reset(res_comm)`);
//! * checkpoint metadata caches are cleared on repair because "a checkpoint
//!   finished locally may not have finished globally".
//!
//! [`strategy::Strategy`] enumerates the seven configurations the paper
//! evaluates (§V.A), and [`driver::run_experiment`] executes any application
//! implementing [`app::IterativeApp`] under any of them — including the
//! relaunch-based recovery of the non-Fenix baselines (whole-job teardown,
//! modeled `mpirun` restart, recovery from the parallel filesystem) and the
//! two bonus strategies (Fenix in-memory redundancy, partial rollback).

pub mod app;
pub mod bookkeeper;
pub mod driver;
pub mod imr_backend;
pub mod integrated;
pub mod record;
pub mod redstore_backend;
pub mod strategy;

mod runner;

pub use app::{IterativeApp, RankApp, RunMode};
pub use bookkeeper::Bookkeeper;
pub use driver::{run_experiment, try_run_experiment, ExperimentConfig, ExperimentError};
pub use imr_backend::ImrBackend;
pub use integrated::{resilient_main, IntegratedBackend, IntegratedConfig, ResilientScope};
pub use record::{CostBreakdown, RunRecord};
pub use redstore_backend::RedstoreBackend;
pub use strategy::Strategy;
