//! Tests of the future-work extensions: the single-initialization
//! integrated entry point and the IMR data backend for Kokkos Resilience.

use std::sync::Arc;

use cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
use kokkos::View;
use kokkos_resilience::CheckpointFilter;
use resilience::{resilient_main, IntegratedBackend, IntegratedConfig};
use simmpi::{FaultPlan, MpiResult, RankCtx, ReduceOp, Universe, UniverseConfig};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

/// A little iterative kernel driven through the integrated API; returns the
/// final digest agreed across the resilient communicator.
fn run_integrated(
    n: usize,
    spares: usize,
    plan: FaultPlan,
    backend: IntegratedBackend,
    iters: u64,
) -> (simmpi::LaunchReport, Arc<std::sync::atomic::AtomicU64>) {
    let digest = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let dg = Arc::clone(&digest);
    let report = Universe::launch(
        &cluster(n),
        UniverseConfig::default(),
        Arc::new(plan),
        move |ctx: &mut RankCtx| -> MpiResult<()> {
            let data: View<u64> = View::new_1d("vec", 32);
            let cfg = IntegratedConfig {
                name: "itest".into(),
                spares,
                filter: CheckpointFilter::EveryN(4),
                backend: backend.clone(),
                aliases: vec![],
                on_exhaustion: fenix::ExhaustPolicy::Abort,
                partial_rollback: false,
            };
            let ctx = &*ctx;
            let dg = Arc::clone(&dg);
            resilient_main(ctx, cfg, move |scope| {
                let start = scope.latest_version("loop")?.map_or(0, |v| v + 1);
                if start == 0 {
                    // Deterministic reinit (failure before first checkpoint
                    // or fresh start).
                    let mut d = data.write_uncaptured();
                    for (i, x) in d.iter_mut().enumerate() {
                        *x = (scope.comm().rank() * 100 + i) as u64;
                    }
                }
                for i in start..iters {
                    ctx.fault_point("iter", i)?;
                    scope.checkpoint("loop", i, || {
                        {
                            let mut d = data.write();
                            for x in d.iter_mut() {
                                *x = x.wrapping_mul(31).wrapping_add(i);
                            }
                        }
                        Ok(())
                    })?;
                }
                let local = data
                    .read_uncaptured()
                    .iter()
                    .fold(0u64, |a, &x| a.wrapping_mul(131).wrapping_add(x));
                let total = scope.comm().allreduce_scalar(local, ReduceOp::Sum)?;
                dg.store(total, std::sync::atomic::Ordering::Relaxed);
                Ok(())
            })
            .map(|_| ())
        },
    );
    (report, digest)
}

fn reference_digest(n: usize, spares: usize, iters: u64) -> u64 {
    let (report, digest) = run_integrated(
        n,
        spares,
        FaultPlan::none(),
        IntegratedBackend::VelocSingle,
        iters,
    );
    assert!(report.all_ok(), "{:?}", report.outcomes);
    digest.load(std::sync::atomic::Ordering::Relaxed)
}

#[test]
fn integrated_api_failure_free_both_backends() {
    let reference = reference_digest(5, 1, 16);
    let (report, digest) = run_integrated(
        5,
        1,
        FaultPlan::none(),
        IntegratedBackend::Imr { policy: None },
        16,
    );
    assert!(report.all_ok());
    assert_eq!(
        digest.load(std::sync::atomic::Ordering::Relaxed),
        reference,
        "IMR backend must not change failure-free results"
    );
}

#[test]
fn integrated_api_recovers_with_veloc_backend() {
    let reference = reference_digest(5, 1, 16);
    let (report, digest) = run_integrated(
        5,
        1,
        FaultPlan::kill_at(1, "iter", 11), // after the v7 checkpoint
        IntegratedBackend::VelocSingle,
        16,
    );
    assert_eq!(report.killed_ranks(), vec![1]);
    assert_eq!(
        digest.load(std::sync::atomic::Ordering::Relaxed),
        reference,
        "recovered run must match uninterrupted run"
    );
}

#[test]
fn integrated_api_recovers_with_imr_backend() {
    // The future-work configuration: KR context driving buddy-rank memory
    // storage, no filesystem at all.
    let reference = reference_digest(5, 1, 16);
    let (report, digest) = run_integrated(
        5,
        1,
        FaultPlan::kill_at(2, "iter", 11),
        IntegratedBackend::Imr { policy: None },
        16,
    );
    assert_eq!(report.killed_ranks(), vec![2]);
    assert_eq!(
        digest.load(std::sync::atomic::Ordering::Relaxed),
        reference,
        "IMR-backend recovery must match uninterrupted run"
    );
}

#[test]
fn integrated_api_imr_multiple_failures() {
    // Two failures need two spares (6 nodes = 4 active + 2 spares).
    let reference = reference_digest(6, 2, 20);
    let (report, digest) = run_integrated(
        6,
        2,
        FaultPlan::kill_at(0, "iter", 6).and_kill(3, "iter", 14),
        IntegratedBackend::Imr { policy: None },
        20,
    );
    let mut killed = report.killed_ranks();
    killed.sort_unstable();
    assert_eq!(killed, vec![0, 3]);
    assert_eq!(digest.load(std::sync::atomic::Ordering::Relaxed), reference);
}

#[test]
fn integrated_api_failure_at_checkpoint_iteration() {
    // The victim dies exactly at a checkpoint iteration (filter fires at
    // 3, 7, 11, …): survivors are entering the collective store when the
    // failure hits, exercising the two-phase commit's abort path. The run
    // must roll back to the previous committed version and still match.
    let reference = reference_digest(5, 1, 16);
    for backend in [
        IntegratedBackend::VelocSingle,
        IntegratedBackend::Imr { policy: None },
    ] {
        let (report, digest) =
            run_integrated(5, 1, FaultPlan::kill_at(3, "iter", 7), backend.clone(), 16);
        assert_eq!(report.killed_ranks(), vec![3]);
        assert_eq!(
            digest.load(std::sync::atomic::Ordering::Relaxed),
            reference,
            "{backend:?}"
        );
    }
}

#[test]
fn integrated_api_recovered_rank_dies_too() {
    // The replacement rank itself fails during recovery re-execution; the
    // second spare takes over. (Global rank 4 is the first spare with 6
    // nodes and 2 spares.)
    let reference = reference_digest(6, 2, 20);
    let (report, digest) = run_integrated(
        6,
        2,
        // Rank 4 is promoted after rank 1 dies at 14, resumes at 12 (the
        // v11 checkpoint), and is killed at 13 during its recovery pass.
        FaultPlan::kill_at(1, "iter", 14).and_kill(4, "iter", 13),
        IntegratedBackend::VelocSingle,
        20,
    );
    let mut killed = report.killed_ranks();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 4]);
    assert_eq!(digest.load(std::sync::atomic::Ordering::Relaxed), reference);
}

#[test]
fn integrated_api_simultaneous_failures() {
    // Two ranks die at the same iteration; one repair wave (or two) must
    // absorb both and the result must still match.
    let reference = reference_digest(6, 2, 20);
    for backend in [
        IntegratedBackend::VelocSingle,
        IntegratedBackend::Imr { policy: None },
    ] {
        let (report, digest) = run_integrated(
            6,
            2,
            FaultPlan::kill_at(0, "iter", 6).and_kill(2, "iter", 6),
            backend.clone(),
            20,
        );
        let mut killed = report.killed_ranks();
        killed.sort_unstable();
        assert_eq!(killed, vec![0, 2]);
        assert_eq!(
            digest.load(std::sync::atomic::Ordering::Relaxed),
            reference,
            "{backend:?}"
        );
    }
}

#[test]
fn integrated_api_failure_before_first_checkpoint() {
    let reference = reference_digest(5, 1, 16);
    for backend in [
        IntegratedBackend::VelocSingle,
        IntegratedBackend::Imr { policy: None },
    ] {
        let (report, digest) = run_integrated(
            5,
            1,
            FaultPlan::kill_at(1, "iter", 2), // before the first checkpoint (v3)
            backend.clone(),
            16,
        );
        assert_eq!(report.killed_ranks(), vec![1]);
        assert_eq!(
            digest.load(std::sync::atomic::Ordering::Relaxed),
            reference,
            "{backend:?}"
        );
    }
}
