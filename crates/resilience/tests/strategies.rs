//! Full strategy-matrix tests over a synthetic 1-D ring-diffusion app:
//! failure-free equivalence, recovery correctness per strategy, and
//! partial-rollback convergence.

use std::sync::Arc;

use cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
use kokkos::capture::Checkpointable;
use kokkos::View;
use resilience::{
    run_experiment, try_run_experiment, Bookkeeper, ExperimentConfig, ExperimentError,
    IterativeApp, RankApp, RunMode, Strategy,
};
use simmpi::{Comm, FaultPlan, MpiResult, Phase, RankCtx};

/// A deterministic 1-D diffusion on a ring: each rank owns `cells` values;
/// every step exchanges edge values with both neighbors and relaxes toward
/// the neighborhood average. Digest is exact (bit-level), so recovered runs
/// can be compared bit-for-bit with uninterrupted ones.
struct RingDiffusion {
    cells: usize,
    mode: RunMode,
}

struct RingState {
    data: View<f64>,
    rank: usize,
    size: usize,
    last_delta: f64,
}

impl IterativeApp for RingDiffusion {
    fn name(&self) -> &str {
        "ringdiff"
    }

    fn mode(&self) -> RunMode {
        self.mode
    }

    fn init_rank(&self, _ctx: &RankCtx, comm: &Comm) -> Box<dyn RankApp> {
        let data: View<f64> = View::new_1d("ring_data", self.cells);
        {
            let mut d = data.write_uncaptured();
            for (i, x) in d.iter_mut().enumerate() {
                // Deterministic, rank-dependent initial condition.
                *x = ((comm.rank() * 31 + i * 7) % 101) as f64;
            }
        }
        Box::new(RingState {
            data,
            rank: comm.rank(),
            size: comm.size(),
            last_delta: f64::INFINITY,
        })
    }
}

impl RankApp for RingState {
    fn step(&mut self, comm: &Comm, _iteration: u64, bk: &Bookkeeper) -> MpiResult<()> {
        let n = self.size;
        let right = (self.rank + 1) % n;
        let left = (self.rank + n - 1) % n;

        let (first, last) = {
            let d = self.data.read();
            (d[0], d[d.len() - 1])
        };
        let mut from_left = [0.0f64];
        let mut from_right = [0.0f64];
        bk.book(Phase::AppMpi, || -> MpiResult<()> {
            comm.sendrecv(right, 1, &[last], left, 1, &mut from_left)?;
            comm.sendrecv(left, 2, &[first], right, 2, &mut from_right)?;
            Ok(())
        })?;

        bk.book(Phase::AppCompute, || {
            let mut d = self.data.write();
            let len = d.len();
            let mut delta: f64 = 0.0;
            let snapshot: Vec<f64> = d.clone();
            for i in 0..len {
                let l = if i == 0 {
                    from_left[0]
                } else {
                    snapshot[i - 1]
                };
                let r = if i == len - 1 {
                    from_right[0]
                } else {
                    snapshot[i + 1]
                };
                let new = 0.5 * snapshot[i] + 0.25 * (l + r);
                delta = delta.max((new - snapshot[i]).abs());
                d[i] = new;
            }
            self.last_delta = delta;
        });
        Ok(())
    }

    fn checkpoint_views(&self) -> Vec<Arc<dyn Checkpointable>> {
        vec![Arc::new(self.data.clone())]
    }

    fn converged(&mut self, comm: &Comm, bk: &Bookkeeper) -> MpiResult<bool> {
        let global = bk.book(Phase::AppMpi, || {
            comm.allreduce_scalar(self.last_delta, simmpi::ReduceOp::Max)
        })?;
        Ok(global < 1e-3)
    }

    fn digest(&self) -> u64 {
        self.data.read_uncaptured().iter().fold(0u64, |acc, x| {
            acc.wrapping_mul(31).wrapping_add(x.to_bits())
        })
    }
}

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

fn fixed_app(iters: u64) -> RingDiffusion {
    RingDiffusion {
        cells: 64,
        mode: RunMode::FixedIterations(iters),
    }
}

fn cfg(strategy: Strategy, spares: usize) -> ExperimentConfig {
    ExperimentConfig {
        backend: Default::default(),
        strategy,
        spares,
        checkpoints: 6,
        max_relaunches: 4,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry: None,
    }
}

/// Reference digest from an unprotected, failure-free run.
fn reference_digest(active_ranks: usize, iters: u64) -> u64 {
    let c = cluster(active_ranks);
    let rec = run_experiment(
        &c,
        &fixed_app(iters),
        &cfg(Strategy::Unprotected, 0),
        Arc::new(FaultPlan::none()),
    );
    assert_eq!(rec.iterations, iters);
    rec.digest
}

#[test]
fn failure_free_all_strategies_agree() {
    let iters = 30;
    let reference = reference_digest(4, iters);
    for strategy in [
        Strategy::VelocOnly,
        Strategy::KokkosResilience,
        Strategy::FenixVeloc,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
        Strategy::FenixRedstore,
    ] {
        // Fenix strategies get a spare on top of the 4 active ranks.
        let (nodes, spares) = if strategy.uses_fenix() {
            (5, 1)
        } else {
            (4, 0)
        };
        let c = cluster(nodes);
        let rec = run_experiment(
            &c,
            &fixed_app(iters),
            &cfg(strategy, spares),
            Arc::new(FaultPlan::none()),
        );
        assert_eq!(rec.iterations, iters, "{strategy}");
        assert_eq!(rec.digest, reference, "digest mismatch under {strategy}");
        assert_eq!(rec.relaunches, 0, "{strategy}");
        assert_eq!(rec.repairs, 0, "{strategy}");
    }
}

#[test]
fn relaunch_strategies_recover_exactly() {
    let iters = 30;
    let reference = reference_digest(4, iters);
    for strategy in [Strategy::VelocOnly, Strategy::KokkosResilience] {
        let c = cluster(4);
        // Checkpoints at iterations 4,9,14,19,24,29; kill at 23 ≈ 95% of the
        // 20..24 interval, after the v19 flush.
        let plan = Arc::new(FaultPlan::kill_at(2, "iter", 23));
        let rec = run_experiment(&c, &fixed_app(iters), &cfg(strategy, 0), plan);
        assert_eq!(rec.relaunches, 1, "{strategy}");
        assert_eq!(rec.iterations, iters, "{strategy}");
        assert_eq!(
            rec.digest, reference,
            "recovered digest differs under {strategy}"
        );
        assert!(
            rec.breakdown.data_recovery > std::time::Duration::ZERO,
            "{strategy} must book data recovery"
        );
    }
}

#[test]
fn unprotected_recovers_by_recomputing_everything() {
    let iters = 20;
    let reference = reference_digest(3, iters);
    let c = cluster(3);
    let plan = Arc::new(FaultPlan::kill_at(1, "iter", 15));
    let rec = run_experiment(&c, &fixed_app(iters), &cfg(Strategy::Unprotected, 0), plan);
    assert_eq!(rec.relaunches, 1);
    assert_eq!(rec.digest, reference);
    assert!(rec.breakdown.recompute > std::time::Duration::ZERO);
}

#[test]
fn fenix_strategies_recover_exactly() {
    let iters = 30;
    let reference = reference_digest(4, iters);
    for strategy in [
        Strategy::FenixVeloc,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
        Strategy::FenixRedstore,
    ] {
        let c = cluster(5); // 4 active + 1 spare
        let plan = Arc::new(FaultPlan::kill_at(2, "iter", 23));
        let rec = run_experiment(&c, &fixed_app(iters), &cfg(strategy, 1), plan);
        assert_eq!(rec.relaunches, 0, "{strategy} must not relaunch");
        assert!(rec.repairs >= 1, "{strategy} must repair");
        assert_eq!(rec.iterations, iters, "{strategy}");
        assert_eq!(
            rec.digest, reference,
            "recovered digest differs under {strategy}"
        );
    }
}

#[test]
fn fenix_failure_before_first_checkpoint_cold_restarts() {
    let iters = 12;
    let reference = reference_digest(4, iters);
    for strategy in [
        Strategy::FenixVeloc,
        Strategy::FenixKokkosResilience,
        Strategy::FenixImr,
        Strategy::FenixRedstore,
    ] {
        eprintln!("cold-restart strategy: {strategy}");
        let c = cluster(5);
        // Checkpoints every 2 iterations; kill at iteration 1, before the
        // first checkpoint fires.
        let plan = Arc::new(FaultPlan::kill_at(0, "iter", 1));
        let rec = run_experiment(&c, &fixed_app(iters), &cfg(strategy, 1), plan);
        assert_eq!(rec.digest, reference, "{strategy}");
        assert!(rec.repairs >= 1, "{strategy}");
    }
}

#[test]
fn partial_rollback_converges() {
    let app = RingDiffusion {
        cells: 32,
        mode: RunMode::Converge {
            check_every: 5,
            max_iterations: 4000,
        },
    };
    // Failure-free convergence, full-rollback recovery, and partial-rollback
    // recovery must all converge; partial must not recompute more than full.
    let c = cluster(5);
    let free = run_experiment(
        &c,
        &app,
        &cfg(Strategy::FenixKokkosResilience, 1),
        Arc::new(FaultPlan::none()),
    );
    assert!(free.iterations > 0 && free.iterations < 4000, "converged");

    let kill_iter = free.iterations * 3 / 4;
    let full = run_experiment(
        &c,
        &app,
        &cfg(Strategy::FenixKokkosResilience, 1),
        Arc::new(FaultPlan::kill_at(1, "iter", kill_iter)),
    );
    assert!(full.repairs >= 1);
    assert!(full.iterations < 4000, "full rollback converged");

    let partial = run_experiment(
        &c,
        &app,
        &cfg(Strategy::PartialRollback, 1),
        Arc::new(FaultPlan::kill_at(1, "iter", kill_iter)),
    );
    assert!(partial.repairs >= 1);
    assert!(partial.iterations < 4000, "partial rollback converged");
}

#[test]
fn imr_two_failures_with_two_spares() {
    let iters = 30;
    let reference = reference_digest(4, iters);
    let c = cluster(6); // 4 active + 2 spares
    let plan = Arc::new(FaultPlan::kill_at(0, "iter", 12).and_kill(3, "iter", 22));
    let rec = run_experiment(&c, &fixed_app(iters), &cfg(Strategy::FenixImr, 2), plan);
    assert!(rec.repairs >= 2);
    assert_eq!(rec.digest, reference);
}

/// The acceptance scenario of the redundancy tier: two ranks of one
/// placement group die *concurrently* (same iteration, before any repair
/// can interleave). Buddy-rank IMR loses both copies of each other's data
/// and must fail with a clean typed error; the redundancy store's RS(2,2)
/// code tolerates two erasures per group and must complete bitwise-equal.
#[test]
fn concurrent_group_kill_redstore_recovers_where_buddy_imr_cannot() {
    let iters = 30;
    let reference = reference_digest(4, iters);
    let plan = || Arc::new(FaultPlan::kill_at(0, "iter", 12).and_kill(1, "iter", 12));

    // Ranks 0 and 1 are a buddy pair under the default (even-size) Pair
    // policy: their concurrent loss is unrecoverable for buddy IMR.
    let c = cluster(6); // 4 active + 2 spares
    let imr = try_run_experiment(&c, &fixed_app(iters), &cfg(Strategy::FenixImr, 2), plan());
    match imr {
        Err(ExperimentError::RankFailed { .. }) => {}
        other => panic!("buddy IMR must fail with a typed error, got {other:?}"),
    }

    // Same schedule, same shape, redundancy tier: recovered exactly.
    let rec = run_experiment(
        &c,
        &fixed_app(iters),
        &cfg(Strategy::FenixRedstore, 2),
        plan(),
    );
    assert!(rec.repairs >= 1);
    assert_eq!(rec.iterations, iters);
    assert_eq!(rec.digest, reference, "bitwise recovery after a group kill");
}

#[test]
fn checkpoint_function_time_is_booked() {
    let c = cluster(4);
    let rec = run_experiment(
        &c,
        &fixed_app(30),
        &cfg(Strategy::VelocOnly, 0),
        Arc::new(FaultPlan::none()),
    );
    assert!(rec.breakdown.checkpoint_fn > std::time::Duration::ZERO);
    assert!(rec.breakdown.app_compute > std::time::Duration::ZERO);
}

#[test]
fn imr_commit_racing_repair_does_not_deadlock() {
    // Regression: at larger rank counts, ranks far from the victim reach
    // the IMR store's two-phase agreement while ranks adjacent to the
    // victim abandon it for Fenix repair. The agreement must abort with
    // Revoked (via the rendezvous revocation check) or the job deadlocks.
    // Observed originally with 8-rank Heatdis dying exactly at a
    // checkpoint iteration.
    let iters = 60;
    let reference = reference_digest(8, iters);
    let c = cluster(9); // 8 active + 1 spare
                        // Checkpoints at 9,19,...,59; rank 4 dies at the checkpoint iteration
                        // 49, while distant ranks are already inside the commit.
    let plan = Arc::new(FaultPlan::kill_at(4, "iter", 49));
    let rec = run_experiment(&c, &fixed_app(iters), &cfg(Strategy::FenixImr, 1), plan);
    assert!(rec.repairs >= 1);
    assert_eq!(rec.iterations, iters);
    assert_eq!(
        rec.digest, reference,
        "post-deadlock-fix recovery must be exact"
    );
}
