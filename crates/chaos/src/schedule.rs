//! Chaos schedules: the campaign's unit of work.
//!
//! A [`ChaosSchedule`] is a strategy + spare budget + a list of fault
//! events, generated deterministically from a seed. It serializes to a
//! one-line spec string (printed for every failing schedule and accepted
//! back via `--schedule`), so any campaign finding is replayable without
//! the seed that produced it.

use fenix::ImrPolicy;
use resilience::Strategy;
use simmpi::{BackendFault, CorruptKind, CorruptTier, FaultSchedule};

use crate::rng::Rng;

/// Documented default campaign seed (CI and `cargo run -p harness --bin
/// chaos` both start here).
pub const DEFAULT_SEED: u64 = 0xC1A0_5CA7;

/// Active (non-spare) ranks every campaign run uses.
pub const ACTIVE_RANKS: usize = 4;

/// Iterations of the campaign app (small enough to keep a 200-schedule
/// campaign in seconds, large enough for kills before/after checkpoints).
pub const ITERATIONS: u64 = 12;

/// Checkpoints requested over the run. With 12 iterations the filter
/// checkpoints after iterations 3, 7 and 11 — those are the versions
/// corruption events target.
pub const CHECKPOINTS: u64 = 3;

/// Checkpoint versions the default filter produces (see [`CHECKPOINTS`]).
pub const CHECKPOINT_VERSIONS: [u64; 3] = [3, 7, 11];

/// Strategies the campaign draws from. `Unprotected` is excluded (it has
/// no recovery semantics to falsify) and `PartialRollback` is excluded
/// because its survivors keep in-progress data, so bitwise equivalence
/// with the uninterrupted run is not its contract.
pub const STRATEGY_POOL: [Strategy; 6] = [
    Strategy::VelocOnly,
    Strategy::KokkosResilience,
    Strategy::FenixVeloc,
    Strategy::FenixKokkosResilience,
    Strategy::FenixImr,
    Strategy::FenixRedstore,
];

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Kill `rank` the `at`-th time it passes fault point `site`.
    Kill { rank: usize, site: String, at: u64 },
    /// Kill *every* rank hosted on modeled node `node` (a whole-node
    /// failure: power loss, kernel panic) the `at`-th time each passes
    /// fault point `site`. Lowered via the schedule's `rpn` — at one rank
    /// per node it degenerates to a single `Kill`.
    NodeKill { node: usize, site: String, at: u64 },
    /// Corrupt the checkpoint blob of `(version, rank)` on write.
    Corrupt {
        tier: CorruptTier,
        version: u64,
        rank: usize,
        kind: CorruptKind,
    },
    /// The async flush backend of `rank` fails to spawn.
    SpawnFail { rank: usize },
    /// The flush worker of `rank` dies after `after` completed flushes.
    WorkerDeath { rank: usize, after: u64 },
}

/// A complete, replayable campaign case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSchedule {
    pub strategy: Strategy,
    pub spares: usize,
    /// Ranks per modeled node of the campaign cluster (1 = the historical
    /// flat layout; 2 co-locates rank pairs so node failures take both).
    pub rpn: usize,
    /// Buddy-policy override for the IMR strategies (`None` = the
    /// runner's layout-aware default). Lets a spec pin the naive `pair`
    /// policy that co-locates buddies at `rpn >= 2`.
    pub imr: Option<ImrPolicy>,
    pub events: Vec<ChaosEvent>,
}

fn tier_name(t: CorruptTier) -> &'static str {
    match t {
        CorruptTier::Scratch => "scratch",
        CorruptTier::Pfs => "pfs",
        CorruptTier::Both => "both",
    }
}

fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Unprotected => "Unprotected",
        Strategy::VelocOnly => "VelocOnly",
        Strategy::KokkosResilience => "KokkosResilience",
        Strategy::FenixVeloc => "FenixVeloc",
        Strategy::FenixKokkosResilience => "FenixKokkosResilience",
        Strategy::FenixImr => "FenixImr",
        Strategy::FenixRedstore => "FenixRedstore",
        Strategy::PartialRollback => "PartialRollback",
    }
}

fn imr_name(p: ImrPolicy) -> &'static str {
    match p {
        ImrPolicy::Pair => "pair",
        ImrPolicy::Ring => "ring",
        ImrPolicy::Topology => "topo",
    }
}

fn parse_imr(name: &str) -> Result<ImrPolicy, String> {
    match name {
        "pair" => Ok(ImrPolicy::Pair),
        "ring" => Ok(ImrPolicy::Ring),
        "topo" => Ok(ImrPolicy::Topology),
        other => Err(format!("unknown imr policy `{other}`")),
    }
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Strategy::ALL
        .into_iter()
        .find(|s| strategy_name(*s) == name)
        .ok_or_else(|| format!("unknown strategy `{name}`"))
}

/// `key=value` fields of one event call, in written order.
type Fields<'a> = Vec<(&'a str, &'a str)>;

/// Split `kill(rank=1,site=iter,at=3)` into ("kill", {"rank":"1",...}).
fn parse_call(tok: &str) -> Result<(&str, Fields<'_>), String> {
    let open = tok.find('(').ok_or_else(|| format!("malformed `{tok}`"))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| format!("missing `)` in `{tok}`"))?;
    let head = &tok[..open];
    let mut fields = Vec::new();
    for field in close[open + 1..].split(',').filter(|f| !f.is_empty()) {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed field `{field}` in `{tok}`"))?;
        fields.push((k, v));
    }
    Ok((head, fields))
}

fn field<'a>(fields: &[(&str, &'a str)], key: &str, tok: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing `{key}` in `{tok}`"))
}

fn num(fields: &[(&str, &str)], key: &str, tok: &str) -> Result<u64, String> {
    field(fields, key, tok)?
        .parse()
        .map_err(|_| format!("non-numeric `{key}` in `{tok}`"))
}

impl ChaosEvent {
    fn to_spec(&self) -> String {
        match self {
            ChaosEvent::Kill { rank, site, at } => format!("kill(rank={rank},site={site},at={at})"),
            ChaosEvent::NodeKill { node, site, at } => {
                format!("nodekill(node={node},site={site},at={at})")
            }
            ChaosEvent::Corrupt {
                tier,
                version,
                rank,
                kind,
            } => {
                let kind = match kind {
                    CorruptKind::FlipBack { back } => format!("flip={back}"),
                    CorruptKind::FlipFront { front } => format!("front={front}"),
                    CorruptKind::Truncate { keep } => format!("trunc={keep}"),
                };
                format!(
                    "corrupt(tier={},version={version},rank={rank},{kind})",
                    tier_name(*tier)
                )
            }
            ChaosEvent::SpawnFail { rank } => format!("spawnfail(rank={rank})"),
            ChaosEvent::WorkerDeath { rank, after } => {
                format!("workerdeath(rank={rank},after={after})")
            }
        }
    }

    fn parse(tok: &str) -> Result<ChaosEvent, String> {
        let (head, fields) = parse_call(tok)?;
        match head {
            "kill" => Ok(ChaosEvent::Kill {
                rank: num(&fields, "rank", tok)? as usize,
                site: field(&fields, "site", tok)?.to_owned(),
                at: num(&fields, "at", tok)?,
            }),
            "nodekill" => Ok(ChaosEvent::NodeKill {
                node: num(&fields, "node", tok)? as usize,
                site: field(&fields, "site", tok)?.to_owned(),
                at: num(&fields, "at", tok)?,
            }),
            "corrupt" => {
                let tier = match field(&fields, "tier", tok)? {
                    "scratch" => CorruptTier::Scratch,
                    "pfs" => CorruptTier::Pfs,
                    "both" => CorruptTier::Both,
                    other => return Err(format!("unknown tier `{other}` in `{tok}`")),
                };
                let kind = if fields.iter().any(|(k, _)| *k == "flip") {
                    CorruptKind::FlipBack {
                        back: num(&fields, "flip", tok)? as usize,
                    }
                } else if fields.iter().any(|(k, _)| *k == "front") {
                    CorruptKind::FlipFront {
                        front: num(&fields, "front", tok)? as usize,
                    }
                } else {
                    CorruptKind::Truncate {
                        keep: num(&fields, "trunc", tok)? as usize,
                    }
                };
                Ok(ChaosEvent::Corrupt {
                    tier,
                    version: num(&fields, "version", tok)?,
                    rank: num(&fields, "rank", tok)? as usize,
                    kind,
                })
            }
            "spawnfail" => Ok(ChaosEvent::SpawnFail {
                rank: num(&fields, "rank", tok)? as usize,
            }),
            "workerdeath" => Ok(ChaosEvent::WorkerDeath {
                rank: num(&fields, "rank", tok)? as usize,
                after: num(&fields, "after", tok)?,
            }),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

impl ChaosSchedule {
    /// Draw one schedule from the generator stream.
    pub fn generate(rng: &mut Rng) -> ChaosSchedule {
        let strategy = *rng.pick(&STRATEGY_POOL);
        // A quarter of the cases co-locate ranks two-per-node, exercising
        // topology-aware placement and whole-node failures; spares then
        // come in node units so the world stays evenly divisible.
        let rpn = if rng.chance(25) { 2 } else { 1 };
        let spares = if !strategy.uses_fenix() {
            0
        } else if rpn == 2 {
            2
        } else {
            1 + rng.below(2) as usize
        };
        let n_events = rng.below(4) as usize; // 0..=3: empty schedules are sanity cases
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let roll = rng.below(100);
            let ev = if roll < 45 {
                // Kill sites cover the whole protocol: mid-iteration,
                // immediately before a checkpoint, at checkpoint commit,
                // and inside a recovery epoch (cascading failure).
                let site = *rng.pick(&["iter", "ckpt", "commit", "recovery"]);
                let at = if site == "recovery" {
                    1 + rng.below(2)
                } else {
                    rng.below(ITERATIONS)
                };
                if rpn == 2 && rng.chance(30) {
                    ChaosEvent::NodeKill {
                        node: rng.below((ACTIVE_RANKS / rpn) as u64) as usize,
                        site: site.to_owned(),
                        at,
                    }
                } else {
                    ChaosEvent::Kill {
                        rank: rng.below(ACTIVE_RANKS as u64) as usize,
                        site: site.to_owned(),
                        at,
                    }
                }
            } else if roll < 80 {
                let tier = if rng.chance(50) {
                    CorruptTier::Scratch
                } else if rng.chance(50) {
                    CorruptTier::Pfs
                } else {
                    CorruptTier::Both
                };
                let kind = if rng.chance(60) {
                    // Offsets deep enough to reach *interior* grid rows:
                    // the last cols*8 bytes of a Heatdis blob are a halo
                    // row the next step overwrites, so a flip there heals
                    // on replay and falsifies nothing.
                    CorruptKind::FlipBack {
                        back: rng.below(512) as usize,
                    }
                } else if rng.chance(50) {
                    // Front flips land in the VCF2 header/metadata — the
                    // magic, meta CRC, counts, or id tables of the frame —
                    // exercising delta-chain integrity rather than payload
                    // integrity.
                    CorruptKind::FlipFront {
                        front: rng.below(64) as usize,
                    }
                } else {
                    CorruptKind::Truncate {
                        keep: rng.below(16) as usize,
                    }
                };
                ChaosEvent::Corrupt {
                    tier,
                    version: *rng.pick(&CHECKPOINT_VERSIONS),
                    rank: rng.below(ACTIVE_RANKS as u64) as usize,
                    kind,
                }
            } else if roll < 90 {
                ChaosEvent::SpawnFail {
                    rank: rng.below(ACTIVE_RANKS as u64) as usize,
                }
            } else {
                ChaosEvent::WorkerDeath {
                    rank: rng.below(ACTIVE_RANKS as u64) as usize,
                    after: 1 + rng.below(2),
                }
            };
            events.push(ev);
        }
        ChaosSchedule {
            strategy,
            spares,
            rpn,
            imr: None,
            events,
        }
    }

    /// One-line replayable spec.
    pub fn to_spec(&self) -> String {
        let mut parts = vec![
            format!("strategy={}", strategy_name(self.strategy)),
            format!("spares={}", self.spares),
        ];
        if self.rpn != 1 {
            parts.push(format!("rpn={}", self.rpn));
        }
        if let Some(p) = self.imr {
            parts.push(format!("imr={}", imr_name(p)));
        }
        parts.extend(self.events.iter().map(ChaosEvent::to_spec));
        parts.join(" ")
    }

    /// Parse a spec produced by [`ChaosSchedule::to_spec`].
    pub fn parse(spec: &str) -> Result<ChaosSchedule, String> {
        let mut strategy = None;
        let mut spares = 0usize;
        let mut rpn = 1usize;
        let mut imr = None;
        let mut events = Vec::new();
        for tok in spec.split_whitespace() {
            if let Some(name) = tok.strip_prefix("strategy=") {
                strategy = Some(parse_strategy(name)?);
            } else if let Some(v) = tok.strip_prefix("spares=") {
                spares = v.parse().map_err(|_| format!("non-numeric spares `{v}`"))?;
            } else if let Some(v) = tok.strip_prefix("rpn=") {
                rpn = v.parse().map_err(|_| format!("non-numeric rpn `{v}`"))?;
                if rpn == 0 {
                    return Err("rpn must be at least 1".into());
                }
            } else if let Some(v) = tok.strip_prefix("imr=") {
                imr = Some(parse_imr(v)?);
            } else {
                events.push(ChaosEvent::parse(tok)?);
            }
        }
        Ok(ChaosSchedule {
            strategy: strategy.ok_or("spec missing `strategy=`")?,
            spares,
            rpn,
            imr,
            events,
        })
    }

    /// Total communicator ranks a run of this schedule uses.
    pub fn total_ranks(&self) -> usize {
        ACTIVE_RANKS
            + if self.strategy.uses_fenix() {
                self.spares
            } else {
                0
            }
    }

    /// Total simulated nodes a run of this schedule needs (the world is
    /// `nodes() * rpn` ranks — rounded up when spares don't fill a node).
    pub fn nodes(&self) -> usize {
        self.total_ranks().div_ceil(self.rpn)
    }

    /// Lower the schedule to the simulator's injectable form. A `NodeKill`
    /// becomes one kill per rank the node hosts (rank `r` lives on node
    /// `r / rpn` — the cluster model's fixed layout).
    pub fn build_plan(&self) -> FaultSchedule {
        let mut plan = FaultSchedule::none();
        for ev in &self.events {
            plan = match ev {
                ChaosEvent::Kill { rank, site, at } => plan.and_kill(*rank, site.clone(), *at),
                ChaosEvent::NodeKill { node, site, at } => {
                    let mut p = plan;
                    for rank in node * self.rpn..(node + 1) * self.rpn {
                        p = p.and_kill(rank, site.clone(), *at);
                    }
                    p
                }
                ChaosEvent::Corrupt {
                    tier,
                    version,
                    rank,
                    kind,
                } => plan.and_corrupt(*tier, *version, *rank, *kind),
                ChaosEvent::SpawnFail { rank } => plan.and_backend(BackendFault::spawn_fail(*rank)),
                ChaosEvent::WorkerDeath { rank, after } => {
                    plan.and_backend(BackendFault::worker_death(*rank, *after))
                }
            };
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let mut rng = Rng::new(DEFAULT_SEED);
        for _ in 0..200 {
            let s = ChaosSchedule::generate(&mut rng);
            let spec = s.to_spec();
            let back = ChaosSchedule::parse(&spec).expect("own spec must parse");
            assert_eq!(back, s, "round-trip of `{spec}`");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<String> = {
            let mut rng = Rng::new(7);
            (0..50)
                .map(|_| ChaosSchedule::generate(&mut rng).to_spec())
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = Rng::new(7);
            (0..50)
                .map(|_| ChaosSchedule::generate(&mut rng).to_spec())
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(ChaosSchedule::parse("strategy=NoSuch").is_err());
        assert!(ChaosSchedule::parse("kill(rank=1)").is_err()); // missing strategy + fields
        assert!(ChaosSchedule::parse("strategy=VelocOnly frob(x=1)").is_err());
        assert!(ChaosSchedule::parse("strategy=VelocOnly kill(rank=1,site=iter,at=x)").is_err());
    }

    #[test]
    fn build_plan_lowers_every_event_kind() {
        let s = ChaosSchedule::parse(
            "strategy=FenixVeloc spares=1 kill(rank=1,site=iter,at=3) \
             corrupt(tier=scratch,version=7,rank=0,flip=0) spawnfail(rank=2) \
             workerdeath(rank=3,after=1)",
        )
        .expect("spec parses");
        let plan = s.build_plan();
        assert_eq!(plan.kills().len(), 1);
        assert_eq!(plan.corruptions().len(), 1);
        assert_eq!(plan.backend_faults().len(), 2);
        assert!(plan.has_injections());
        assert_eq!(s.nodes(), ACTIVE_RANKS + 1);
    }

    #[test]
    fn nodekill_lowers_to_one_kill_per_hosted_rank() {
        let s = ChaosSchedule::parse(
            "strategy=FenixRedstore spares=2 rpn=2 nodekill(node=1,site=iter,at=4)",
        )
        .expect("spec parses");
        assert_eq!(s.rpn, 2);
        // 4 active + 2 spares over 2 ranks/node = 3 nodes.
        assert_eq!(s.nodes(), 3);
        let plan = s.build_plan();
        let mut killed: Vec<usize> = plan.kills().iter().map(|k| k.rank).collect();
        killed.sort_unstable();
        assert_eq!(killed, vec![2, 3], "node 1 hosts exactly ranks 2 and 3");
        // At one rank per node the same event is a single kill.
        let flat =
            ChaosSchedule::parse("strategy=FenixRedstore spares=1 nodekill(node=1,site=iter,at=4)")
                .expect("spec parses");
        assert_eq!(flat.build_plan().kills().len(), 1);
    }

    #[test]
    fn rpn_and_imr_fields_round_trip_and_default() {
        let spec = "strategy=FenixImr spares=2 rpn=2 imr=pair kill(rank=0,site=iter,at=1)";
        let s = ChaosSchedule::parse(spec).expect("spec parses");
        assert_eq!(s.rpn, 2);
        assert_eq!(s.imr, Some(ImrPolicy::Pair));
        assert_eq!(s.to_spec(), spec);
        // Absent fields keep historical defaults, and to_spec omits them
        // so pre-existing golden specs stay byte-identical.
        let old = ChaosSchedule::parse("strategy=VelocOnly spares=0").expect("parses");
        assert_eq!(old.rpn, 1);
        assert_eq!(old.imr, None);
        assert_eq!(old.to_spec(), "strategy=VelocOnly spares=0");
        assert!(ChaosSchedule::parse("strategy=VelocOnly rpn=0").is_err());
        assert!(ChaosSchedule::parse("strategy=VelocOnly imr=frob").is_err());
    }
}
