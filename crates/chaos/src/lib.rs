//! Seeded chaos campaigns over the three resilience layers.
//!
//! The paper's evaluation (§VI) injects one failure at a scripted instant
//! and checks the job completes. This crate generalizes that into a
//! *campaign*: a seeded stream of fault schedules that mix process faults
//! (rank kills at any fault point, including during recovery and at
//! checkpoint commit), data faults (checkpoint-blob corruption and
//! truncation at either storage tier), and service faults (flush-backend
//! spawn failure, flush-worker death) — each schedule checked against a
//! differential oracle and, on failure, shrunk to a minimal reproducer.
//!
//! The contract being fuzzed (see [`oracle`]): a resilient run either
//! produces the *bitwise-identical* answer of an uninterrupted run, or
//! ends in a typed error — never a panic, never a hang, never a
//! causally-impossible failure timeline.
//!
//! Entry points: [`campaign::run_campaign`] (seeded campaign),
//! [`campaign::replay`] (one spec string), and the `chaos` harness binary
//! (`cargo run -p harness --bin chaos -- --schedules 200`).
//!
//! The `chaos-mutants` feature re-seeds the checkpoint-integrity bug the
//! campaign was built to catch (VeloC unpack skips CRC verification);
//! `tests/mutant.rs` proves the campaign detects it and shrinks the
//! failure to a two-event reproducer.

pub mod campaign;
pub mod oracle;
pub mod rng;
pub mod schedule;
pub mod shrink;

pub use campaign::{replay, run_campaign, CampaignReport, CaseResult};
pub use oracle::{check_timeline, CaseReport, Oracle, RunOutcome, Violation};
pub use rng::Rng;
pub use schedule::{ChaosEvent, ChaosSchedule, DEFAULT_SEED};
pub use shrink::shrink;
