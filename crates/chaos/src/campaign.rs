//! Campaign driver: generate → check → shrink, N times, from one seed.

use crate::oracle::{Oracle, RunOutcome, Violation};
use crate::schedule::ChaosSchedule;
use crate::shrink::shrink;
use crate::Rng;

/// One schedule's result within a campaign.
pub struct CaseResult {
    pub index: usize,
    pub schedule: ChaosSchedule,
    pub outcome: Result<RunOutcome, Violation>,
    /// Present only for failures: the minimized reproducer.
    pub shrunk: Option<ChaosSchedule>,
}

/// Everything a campaign produced.
pub struct CampaignReport {
    pub seed: u64,
    pub results: Vec<CaseResult>,
}

impl CampaignReport {
    pub fn failures(&self) -> Vec<&CaseResult> {
        self.results.iter().filter(|r| r.outcome.is_err()).collect()
    }

    pub fn completed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Ok(RunOutcome::Completed { .. })))
            .count()
    }

    pub fn typed_errors(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Ok(RunOutcome::TypedError(_))))
            .count()
    }
}

/// Run `n` schedules drawn from `seed`, shrinking every failure.
pub fn run_campaign(seed: u64, n: usize) -> CampaignReport {
    let oracle = Oracle::new();
    let mut rng = Rng::new(seed);
    let mut results = Vec::with_capacity(n);
    for index in 0..n {
        let schedule = ChaosSchedule::generate(&mut rng);
        let outcome = oracle.check(&schedule);
        let shrunk = if outcome.is_err() {
            Some(shrink(&oracle, &schedule))
        } else {
            None
        };
        results.push(CaseResult {
            index,
            schedule,
            outcome,
            shrunk,
        });
    }
    CampaignReport { seed, results }
}

/// Check (and shrink on failure) one explicit schedule — the `--schedule`
/// replay path.
pub fn replay(sched: &ChaosSchedule) -> CaseResult {
    let oracle = Oracle::new();
    let outcome = oracle.check(sched);
    let shrunk = if outcome.is_err() {
        Some(shrink(&oracle, sched))
    } else {
        None
    };
    CaseResult {
        index: 0,
        schedule: sched.clone(),
        outcome,
        shrunk,
    }
}
