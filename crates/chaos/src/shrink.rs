//! Greedy delta-debugging of failing schedules.
//!
//! A campaign finding is only useful if a human can replay it in one
//! sitting, so every failure is shrunk to a local minimum before it is
//! reported: drop each event, then simplify the survivors (advance kills
//! toward iteration 0, shrink corruption offsets and truncation lengths),
//! repeating to a fixpoint. Every candidate is re-checked against the
//! oracle, so the result still fails for the same class of reason.

use simmpi::CorruptKind;

use crate::oracle::Oracle;
use crate::schedule::{ChaosEvent, ChaosSchedule};

/// Strictly-simpler variants of one event (each candidate reduces a
/// numeric measure, so the simplify pass terminates).
fn simplify(ev: &ChaosEvent) -> Vec<ChaosEvent> {
    let mut out = Vec::new();
    match ev {
        ChaosEvent::Kill { rank, site, at } if *at > 0 => {
            for cand in [0, *at / 2, *at - 1] {
                if cand < *at {
                    out.push(ChaosEvent::Kill {
                        rank: *rank,
                        site: site.clone(),
                        at: cand,
                    });
                }
            }
        }
        ChaosEvent::Corrupt {
            tier,
            version,
            rank,
            kind,
        } => match kind {
            CorruptKind::FlipBack { back } if *back > 0 => {
                for cand in [0, *back / 2] {
                    if cand < *back {
                        out.push(ChaosEvent::Corrupt {
                            tier: *tier,
                            version: *version,
                            rank: *rank,
                            kind: CorruptKind::FlipBack { back: cand },
                        });
                    }
                }
            }
            CorruptKind::Truncate { keep } if *keep > 0 => out.push(ChaosEvent::Corrupt {
                tier: *tier,
                version: *version,
                rank: *rank,
                kind: CorruptKind::Truncate { keep: keep / 2 },
            }),
            _ => {}
        },
        ChaosEvent::WorkerDeath { rank, after } if *after > 1 => {
            out.push(ChaosEvent::WorkerDeath {
                rank: *rank,
                after: after - 1,
            });
        }
        _ => {}
    }
    out
}

/// Replays required before a candidate counts as "still failing".
///
/// A simplified candidate can be *racy* where the original was not: e.g.
/// advancing a kill to the iteration right after a checkpoint puts the
/// abort inside the async-flush window, so whether the PFS copy exists at
/// restart — and with it the verdict — depends on OS thread scheduling.
/// Accepting such a candidate on one lucky draw would hand the user a
/// reproducer that doesn't reproduce. Requiring consecutive failures
/// drives the accept probability of a coin-flip candidate below p^N while
/// deterministic failures pay only the replay cost (runs are ~10 ms).
const RELIABLE_FAILS: usize = 4;

/// Shrink `failing` to a locally-minimal schedule that still fails.
///
/// `failing` must fail the oracle when passed in; the return value is
/// guaranteed to fail as well — and to keep failing: every accepted
/// candidate failed [`RELIABLE_FAILS`] consecutive replays.
pub fn shrink(oracle: &Oracle, failing: &ChaosSchedule) -> ChaosSchedule {
    let fails = |s: &ChaosSchedule| (0..RELIABLE_FAILS).all(|_| oracle.check(s).is_err());
    let mut cur = failing.clone();
    loop {
        let mut progressed = false;

        // Pass 1: drop events, one at a time.
        let mut i = 0;
        while i < cur.events.len() {
            let mut cand = cur.clone();
            cand.events.remove(i);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: simplify surviving events in place.
        for i in 0..cur.events.len() {
            for ev in simplify(&cur.events[i]) {
                let mut cand = cur.clone();
                cand.events[i] = ev;
                if fails(&cand) {
                    cur = cand;
                    progressed = true;
                }
            }
        }

        // Pass 3: shed surplus spares.
        while cur.spares > 1 {
            let mut cand = cur.clone();
            cand.spares -= 1;
            if fails(&cand) {
                cur = cand;
                progressed = true;
            } else {
                break;
            }
        }

        if !progressed {
            return cur;
        }
    }
}
