//! Deterministic schedule generator RNG.
//!
//! SplitMix64: tiny, statistically fine for fuzz-schedule generation, and
//! — the property the campaign actually depends on — a pure function of
//! the seed, so `--seed` replays the exact byte-for-byte schedule stream
//! on any host. No external RNG crate, no platform entropy.

/// SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`. `n` must be non-zero. Modulo bias is irrelevant
    /// at fuzz-schedule scale (n is always tiny next to 2^64).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // lint: sanction(non-det): splitmix64 over an explicit campaign
        // seed — replayable, so schedules stay reproducible. audited 2026-08.
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniformly pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // First output for seed 0 (reference SplitMix64).
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(12) < 12);
        }
    }
}
