//! The differential oracle: what a resilient run is allowed to do.
//!
//! For every chaos schedule the oracle runs the same application twice on
//! identically-shaped clusters — once uninterrupted (the baseline, cached
//! per strategy) and once under the schedule — and accepts exactly two
//! outcomes:
//!
//! 1. the run completes and its digest is bitwise-equal to the baseline;
//! 2. the run ends in a typed [`resilience::ExperimentError`].
//!
//! Everything else is a violation: a digest divergence (silent data
//! corruption survived the stack), a panic (a layer gave up instead of
//! unwinding through the error channel), a hang past the watchdog (a
//! collective deadlock), or a causally-impossible telemetry timeline.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use apps::Heatdis;
use cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
use parking_lot::Mutex;
use resilience::{try_run_experiment, ExperimentConfig, Strategy};
use simmpi::Backend;
use telemetry::{Event, Telemetry, TelemetryConfig, TimeSource, TraceSnapshot};

use crate::schedule::{ChaosSchedule, ACTIVE_RANKS, CHECKPOINTS, ITERATIONS};

/// Accepted terminal states of a chaotic run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Run completed; digest matched the baseline.
    Completed { digest: u64 },
    /// Run ended in a typed experiment error (spare exhaustion, data
    /// unrecoverable, relaunch budget) — clean by contract.
    TypedError(String),
}

/// Oracle violations, most severe first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Completed with a different answer than the uninterrupted run.
    Divergence { expected: u64, got: u64 },
    /// A panic escaped the resilience stack.
    Panic(String),
    /// No terminal state within the watchdog window: collective deadlock.
    Hang,
    /// Telemetry failure timeline is causally impossible.
    Timeline(String),
    /// The *uninterrupted* baseline failed — a harness bug, reported
    /// distinctly so it is never read as a chaos finding.
    Baseline(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Divergence { expected, got } => {
                write!(
                    f,
                    "digest divergence: baseline {expected:#018x}, got {got:#018x}"
                )
            }
            Violation::Panic(msg) => write!(f, "panic escaped the stack: {msg}"),
            Violation::Hang => write!(f, "no terminal state before watchdog timeout"),
            Violation::Timeline(msg) => write!(f, "timeline violation: {msg}"),
            Violation::Baseline(msg) => write!(f, "baseline run failed: {msg}"),
        }
    }
}

/// Verdict plus the evidence (telemetry of the chaotic run).
pub struct CaseReport {
    pub verdict: Result<RunOutcome, Violation>,
    pub snapshot: TraceSnapshot,
}

/// Differential oracle with a per-strategy baseline cache.
pub struct Oracle {
    baselines: Mutex<HashMap<(Strategy, usize, usize), u64>>,
    /// Watchdog window for one chaotic run (simulated time is instant, so
    /// this is pure wall slack; anything near it is a deadlock). Under the
    /// DES backend deadlocks surface as typed aborts first; the watchdog
    /// remains as a livelock backstop.
    pub watchdog: Duration,
    /// Execution engine for every run this oracle launches. `Des` runs on
    /// virtual-time clusters with virtually-stamped telemetry, so a
    /// schedule's verdict *and* timeline are pure functions of the seed.
    backend: Backend,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::new()
    }
}

fn campaign_cluster(nodes: usize, rpn: usize, virtual_time: bool) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        ranks_per_node: rpn,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        virtual_time,
        ..ClusterConfig::default()
    })
}

fn campaign_app() -> Heatdis {
    Heatdis::fixed(2 * 8 * 16 * 8, 16, ITERATIONS)
}

fn experiment_config(
    sched: &ChaosSchedule,
    telemetry: Option<Telemetry>,
    backend: Backend,
) -> ExperimentConfig {
    ExperimentConfig {
        strategy: sched.strategy,
        spares: sched.spares,
        checkpoints: CHECKPOINTS,
        max_relaunches: 8,
        imr_policy: sched.imr,
        redundancy: None,
        fresh_storage: true,
        telemetry,
        backend,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl Oracle {
    pub fn new() -> Oracle {
        Self::with_backend(Backend::Threads)
    }

    /// An oracle whose every launch runs on the given backend.
    /// `Backend::Des { seed }` turns the campaign into deterministic
    /// schedule-exploration: the seed picks the interleaving of
    /// simultaneous events, and replaying a `(schedule, seed)` pair
    /// reproduces the run bit-for-bit.
    pub fn with_backend(backend: Backend) -> Oracle {
        Oracle {
            baselines: Mutex::new(HashMap::new()),
            watchdog: Duration::from_secs(30),
            backend,
        }
    }

    /// The backend this oracle launches on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Digest of the uninterrupted run (cached). Keyed by the full cluster
    /// shape — rank-per-node layout changes the communicator's node map,
    /// hence placement, hence the run's telemetry (never its digest, but
    /// the baseline must still launch on the identical shape).
    fn baseline(&self, strategy: Strategy, spares: usize, rpn: usize) -> Result<u64, Violation> {
        if let Some(d) = self.baselines.lock().get(&(strategy, spares, rpn)) {
            return Ok(*d);
        }
        let sched = ChaosSchedule {
            strategy,
            spares,
            rpn,
            imr: None,
            events: Vec::new(),
        };
        let digest = match self.launch(&sched, false).0? {
            Ok(d) => d,
            Err(e) => return Err(Violation::Baseline(e)),
        };
        self.baselines
            .lock()
            .insert((strategy, spares, rpn), digest);
        Ok(digest)
    }

    /// Run one schedule under the watchdog. `Ok(Ok(digest))` = completed,
    /// `Ok(Err(msg))` = typed error, `Err` = panic or hang. Also returns
    /// the telemetry hub when one was requested — it is created here so a
    /// DES run's hub can stamp events from the cluster's virtual clock.
    fn launch(
        &self,
        sched: &ChaosSchedule,
        want_telemetry: bool,
    ) -> (Result<Result<u64, String>, Violation>, Option<Telemetry>) {
        let des = matches!(self.backend, Backend::Des { .. });
        let cluster = campaign_cluster(sched.nodes(), sched.rpn, des);
        let telemetry = want_telemetry.then(|| {
            if des {
                let clock = Arc::clone(cluster.clock());
                Telemetry::with_time_source(
                    TelemetryConfig::default(),
                    TimeSource::External(Arc::new(move || clock.now_ns())),
                )
            } else {
                Telemetry::new(TelemetryConfig::default())
            }
        });
        let cfg = experiment_config(sched, telemetry.clone(), self.backend);
        let plan = Arc::new(sched.build_plan());
        let (tx, rx) = mpsc::channel();
        // The worker is detached on purpose: if the run deadlocks we report
        // Hang and leak the stuck threads rather than joining forever.
        std::thread::spawn(move || {
            let app = campaign_app();
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                try_run_experiment(&cluster, &app, &cfg, plan)
            }));
            let _ = tx.send(result);
        });
        let verdict = match rx.recv_timeout(self.watchdog) {
            Err(_) => Err(Violation::Hang),
            Ok(Err(payload)) => Err(Violation::Panic(panic_message(payload))),
            Ok(Ok(Ok(record))) => Ok(Ok(record.digest)),
            Ok(Ok(Err(e))) => Ok(Err(e.to_string())),
        };
        (verdict, telemetry)
    }

    /// Full differential check of one schedule, with evidence.
    pub fn run(&self, sched: &ChaosSchedule) -> CaseReport {
        let expected = match self.baseline(sched.strategy, sched.spares, sched.rpn) {
            Ok(d) => d,
            Err(v) => {
                return CaseReport {
                    verdict: Err(v),
                    snapshot: TraceSnapshot::default(),
                }
            }
        };
        let (outcome, tel) = self.launch(sched, true);
        let snapshot = tel.map(|t| t.snapshot()).unwrap_or_default();
        let verdict = match outcome {
            Err(v) => Err(v),
            Ok(terminal) => match check_timeline(&snapshot) {
                Err(v) => Err(v),
                Ok(()) => match terminal {
                    Ok(digest) if digest == expected => Ok(RunOutcome::Completed { digest }),
                    Ok(got) => Err(Violation::Divergence { expected, got }),
                    Err(msg) => Ok(RunOutcome::TypedError(msg)),
                },
            },
        };
        CaseReport { verdict, snapshot }
    }

    /// Verdict only.
    pub fn check(&self, sched: &ChaosSchedule) -> Result<RunOutcome, Violation> {
        self.run(sched).verdict
    }
}

/// Causal-order checks over the merged failure timeline.
///
/// Only positive evidence fails a run: when the rings dropped records the
/// timeline is incomplete and the checks are skipped rather than guessed.
pub fn check_timeline(snap: &TraceSnapshot) -> Result<(), Violation> {
    if snap.dropped > 0 {
        return Ok(());
    }

    // 1. Injection precedes death: a rank with both kinds of event must
    //    have been marked for injection no later than its first death.
    for rank in 0..ACTIVE_RANKS as u32 {
        let injected = snap
            .events
            .iter()
            .find(|e| e.rank == rank && e.event.kind() == "fault_injected");
        let killed = snap
            .events
            .iter()
            .find(|e| e.rank == rank && e.event.kind() == "rank_killed");
        if let (Some(i), Some(k)) = (injected, killed) {
            if i.t_ns > k.t_ns {
                return Err(Violation::Timeline(format!(
                    "rank {rank} died at {} before its fault injection at {}",
                    k.t_ns, i.t_ns
                )));
            }
        }
    }

    // 2. Repair epochs pair up: a repair that ended must have begun no
    //    later than it ended. Fenix stamps RepairBegin with the pre-repair
    //    count and RepairEnd with the post-repair count, hence the -1.
    for e in &snap.events {
        if let Event::RepairEnd { epoch, .. } = &e.event {
            let begun = snap.events.iter().any(|b| {
                matches!(&b.event, Event::RepairBegin { epoch: be } if *be + 1 == *epoch)
                    && b.t_ns <= e.t_ns
            });
            if !begun {
                return Err(Violation::Timeline(format!(
                    "repair_end epoch {epoch} at {} with no earlier repair_begin",
                    e.t_ns
                )));
            }
        }
    }

    // 3. Restarts open before they close, per rank.
    for rank in 0..=snap.events.iter().map(|e| e.rank).max().unwrap_or(0) {
        let first_begin = snap
            .events
            .iter()
            .find(|e| e.rank == rank && e.event.kind() == "restart_begin")
            .map(|e| e.t_ns);
        let first_end = snap
            .events
            .iter()
            .find(|e| e.rank == rank && e.event.kind() == "restart_end")
            .map(|e| e.t_ns);
        if let (Some(b), Some(e)) = (first_begin, first_end) {
            if b > e {
                return Err(Violation::Timeline(format!(
                    "rank {rank} restart_end at {e} precedes restart_begin at {b}"
                )));
            }
        }
    }

    // 4. A flush lands only after its checkpoint began (same rank, same
    //    name/version coordinates).
    for e in &snap.events {
        let Event::FlushDone { name, version, .. } = &e.event else {
            continue;
        };
        let begun = snap.events.iter().any(|b| {
            b.rank == e.rank
                && b.t_ns <= e.t_ns
                && matches!(&b.event,
                    Event::CheckpointBegin { name: bn, version: bv } if bn == name && bv == version)
        });
        if !begun {
            return Err(Violation::Timeline(format!(
                "flush_done {name}/v{version} on rank {} with no earlier checkpoint_begin",
                e.rank
            )));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::DEFAULT_SEED;
    use crate::Rng;

    #[test]
    fn empty_schedule_passes_for_every_pooled_strategy() {
        let oracle = Oracle::new();
        for strategy in crate::schedule::STRATEGY_POOL {
            let sched = ChaosSchedule {
                strategy,
                spares: if strategy.uses_fenix() { 1 } else { 0 },
                rpn: 1,
                imr: None,
                events: Vec::new(),
            };
            match oracle.check(&sched) {
                Ok(RunOutcome::Completed { .. }) => {}
                other => panic!("{strategy:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn single_kill_recovers_with_equal_digest() {
        let oracle = Oracle::new();
        let sched = ChaosSchedule::parse(
            "strategy=FenixKokkosResilience spares=1 kill(rank=1,site=iter,at=5)",
        )
        .expect("spec parses");
        match oracle.check(&sched) {
            Ok(RunOutcome::Completed { .. }) => {}
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn oracle_is_deterministic_across_replays() {
        let oracle = Oracle::new();
        let mut rng = Rng::new(DEFAULT_SEED ^ 0x55);
        for _ in 0..4 {
            let sched = ChaosSchedule::generate(&mut rng);
            let a = oracle.check(&sched);
            let b = oracle.check(&sched);
            assert_eq!(
                a.is_ok(),
                b.is_ok(),
                "replay disagreed on {}",
                sched.to_spec()
            );
        }
    }
}
