//! Campaign self-test against the seeded checkpoint-integrity bug.
//!
//! The `chaos-mutants` feature makes `veloc::serial::unpack` skip its CRC32
//! comparison — re-enabling the exact silent-garbage-restore bug the
//! integrity frame was added to close. These tests prove the campaign
//! machinery would have caught that bug: under the mutant a
//! corruption-plus-kill schedule completes with a *wrong* digest (the
//! oracle's divergence verdict), and the shrinker reduces any padded
//! variant back to the two events that matter. The clean-build counterpart
//! proves the same schedule is survivable when the CRC check is in place.
//!
//! Run with: `cargo test -p chaos --features chaos-mutants`

/// The two-event reproducer: corrupt rank 0's scratch copy of version 7 at
/// write time, then kill rank 1 after that checkpoint exists. The job
/// aborts and relaunches; rank 0's node never failed, so its (corrupted)
/// scratch copy survives and is the restart's preferred tier. With CRC
/// verification the restart degrades to the intact PFS copy; with the
/// mutant it silently restores garbage. (Killing rank 0 itself would not
/// do: a rank's death takes its node's scratch with it, destroying the
/// corrupted copy before anything can read it.)
const REPRODUCER: &str =
    "strategy=VelocOnly spares=0 kill(rank=1,site=iter,at=9) corrupt(tier=scratch,version=7,rank=0,flip=192)";

#[cfg(feature = "chaos-mutants")]
mod mutant_build {
    use chaos::{shrink, ChaosSchedule, Oracle, Violation};
    use simmpi::Backend;

    /// The reproducer buried under two irrelevant service faults the
    /// shrinker must strip away.
    const PADDED: &str = "strategy=VelocOnly spares=0 kill(rank=1,site=iter,at=9) corrupt(tier=scratch,version=7,rank=0,flip=192) workerdeath(rank=2,after=2) spawnfail(rank=3)";

    /// A fixed seed verified to draw at least one schedule that exercises
    /// the corrupt-then-restore path under the mutant within 40 schedules
    /// (the first such draw is index 7).
    const CAMPAIGN_SEED: u64 = 0xC1A0_5CA8;
    const CAMPAIGN_SCHEDULES: usize = 40;

    #[test]
    fn mutant_is_caught_as_divergence_and_shrinks_to_two_events() {
        // The DES backend makes every shrink-candidate verdict a pure
        // function of the seed. Under the threaded backend, simplifying
        // the kill from at=9 to at=8 lands the abort inside version 7's
        // async-flush window, so whether rank 1's PFS copy exists at
        // restart — and with it the whole verdict — depends on OS thread
        // scheduling; a candidate accepted on a lucky draw then flips to
        // Completed on the re-check below. Threaded-backend coverage of
        // the mutant stays with the seeded campaign test.
        let oracle = Oracle::with_backend(Backend::Des { seed: 0x5eed });
        let padded = ChaosSchedule::parse(PADDED).expect("spec parses");
        let verdict = oracle.check(&padded);
        assert!(
            matches!(verdict, Err(Violation::Divergence { .. })),
            "the mutant should surface as a digest divergence, got {verdict:?}"
        );
        let minimal = shrink(&oracle, &padded);
        assert!(
            minimal.events.len() <= 2,
            "shrinker left {} events: {}",
            minimal.events.len(),
            minimal.to_spec()
        );
        // The minimum still fails for the same reason and still names both
        // halves of the bug: a corruption and a kill that restores it.
        let verdict = oracle.check(&minimal);
        assert!(
            matches!(verdict, Err(Violation::Divergence { .. })),
            "shrunk schedule changed failure class: {verdict:?} (spec: {})",
            minimal.to_spec()
        );
        let spec = minimal.to_spec();
        assert!(
            spec.contains("corrupt("),
            "shrunk away the corruption: {spec}"
        );
        assert!(spec.contains("kill("), "shrunk away the kill: {spec}");
    }

    #[test]
    fn seeded_campaign_finds_the_mutant() {
        // A short campaign at a fixed seed flags at least one divergence.
        // This is the end-to-end claim: the campaign generator itself, not
        // just a hand-written schedule, draws the bug class and the oracle
        // catches it.
        let report = chaos::run_campaign(CAMPAIGN_SEED, CAMPAIGN_SCHEDULES);
        let divergences = report
            .failures()
            .into_iter()
            .filter(|c| matches!(c.outcome, Err(Violation::Divergence { .. })))
            .count();
        assert!(
            divergences >= 1,
            "campaign of {CAMPAIGN_SCHEDULES} schedules at seed {CAMPAIGN_SEED:#x} missed the mutant"
        );
    }

    #[test]
    fn two_event_reproducer_diverges_under_the_mutant() {
        let oracle = Oracle::new();
        let sched = ChaosSchedule::parse(super::REPRODUCER).expect("spec parses");
        assert!(
            matches!(oracle.check(&sched), Err(Violation::Divergence { .. })),
            "the minimal reproducer should diverge under the mutant"
        );
    }
}

#[cfg(not(feature = "chaos-mutants"))]
mod clean_build {
    use chaos::{ChaosSchedule, Oracle, RunOutcome};

    #[test]
    fn clean_build_survives_the_mutant_reproducer() {
        // With CRC verification in place the same schedule must be
        // survivable: the corrupted copy is rejected and restart degrades
        // to an intact one.
        let oracle = Oracle::new();
        let sched = ChaosSchedule::parse(super::REPRODUCER).expect("spec parses");
        match oracle.check(&sched) {
            Ok(RunOutcome::Completed { .. }) => {}
            other => panic!("expected clean completion with CRC verification, got {other:?}"),
        }
    }
}
