//! Directed chaos scenarios: failure shapes the campaign generator can
//! produce, pinned down as named regression tests with stronger assertions
//! than the oracle alone (specific typed errors, specific telemetry
//! evidence, specific detection behavior).

#[cfg(not(feature = "chaos-mutants"))]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(not(feature = "chaos-mutants"))]
use std::sync::Arc;

#[cfg(not(feature = "chaos-mutants"))]
use bytes::Bytes;
use chaos::{ChaosSchedule, Oracle, RunOutcome};
#[cfg(not(feature = "chaos-mutants"))]
use cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
#[cfg(not(feature = "chaos-mutants"))]
use fenix::{DataGroup, ExhaustPolicy, FenixConfig, ImrPolicy, ImrStore, Role};
#[cfg(not(feature = "chaos-mutants"))]
use simmpi::{
    CorruptKind, CorruptTier, FaultSchedule, MpiError, ReduceOp, Universe, UniverseConfig,
};
#[cfg(not(feature = "chaos-mutants"))]
use veloc::serial;

/// Exhausting the spare pool must end in the driver's typed error — with a
/// failure timeline that shows both kills and the one repair that *did*
/// succeed — never in a hang or a panic (ISSUE 4 satellite: the paper's §VI
/// only ever spends one spare; the campaign spends them all).
#[test]
fn spare_exhaustion_yields_typed_error_and_coherent_timeline() {
    let oracle = Oracle::new();
    // One spare, two kills at different fault points: the first repair
    // consumes the pool, the second failure finds it empty.
    let sched = ChaosSchedule::parse(
        "strategy=FenixVeloc spares=1 kill(rank=1,site=iter,at=3) kill(rank=2,site=iter,at=6)",
    )
    .expect("spec parses");
    let report = oracle.run(&sched);
    match &report.verdict {
        Ok(RunOutcome::TypedError(msg)) => {
            assert!(
                msg.contains("unrecoverably"),
                "expected the driver's RankFailed error, got: {msg}"
            );
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    // The oracle already enforced causal order; assert the evidence is
    // complete: both injected kills were recorded, and the first failure's
    // repair ran to completion before the pool emptied.
    let snap = &report.snapshot;
    let kills = snap
        .events
        .iter()
        .filter(|e| e.event.kind() == "rank_killed")
        .count();
    assert!(
        kills >= 2,
        "expected both kills in the timeline, saw {kills}"
    );
    let repairs_done = snap
        .events
        .iter()
        .filter(|e| e.event.kind() == "repair_end")
        .count();
    assert!(
        repairs_done >= 1,
        "the first failure's repair should have completed"
    );
}

/// IMR buddy recovery with a corrupted partner store: the holder's copy of
/// the dead rank's data is tampered with before the failure, so the
/// replacement receives a blob whose CRC frame no longer matches. Detection
/// must be positive (unpack returns `None`, not garbage state), and the job
/// must end in a *consistent* typed abort on every active rank — no hang,
/// no panic (ISSUE 4 satellite).
///
/// Gated out of `chaos-mutants` builds: the mutant disables exactly the
/// CRC rejection this test asserts.
#[cfg(not(feature = "chaos-mutants"))]
#[test]
fn imr_recovery_detects_corrupted_partner_store_and_aborts_cleanly() {
    let c = Cluster::new(ClusterConfig {
        nodes: 5, // 4 active + 1 spare
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    });
    let plan = Arc::new(FaultSchedule::kill_at(0, "after-store", 0));
    let corruption_detected = Arc::new(AtomicBool::new(false));
    let detected = Arc::clone(&corruption_detected);

    let report = Universe::launch(&c, UniverseConfig::default(), plan, move |ctx| {
        let store = ImrStore::new();
        let detected = Arc::clone(&detected);
        fenix::run(
            ctx.world(),
            FenixConfig {
                spares: 1,
                on_exhaustion: ExhaustPolicy::Abort,
            },
            |fx, comm, role| {
                // Pair policy on 4 ranks: rank 1 holds rank 0's data.
                let group = DataGroup::new(Arc::clone(&store), comm, ImrPolicy::Pair);
                if role == Role::Initial {
                    let payload = serial::pack(&[(0u32, Bytes::from(vec![comm.rank() as u8; 32]))]);
                    group.store(0, 1, payload).map_err(|_| MpiError::Aborted)?;
                    if comm.rank() == 1 {
                        assert!(store.tamper_held(0), "holder should have buddy data");
                    }
                    // Rank 0 dies here; survivors detect it at the finalize
                    // rendezvous and repair.
                    ctx.fault_point("after-store", 0)?;
                    return Ok(());
                }
                // Post-repair: collective restore. The replacement's blob
                // comes from the tampered holder.
                let (version, blob) = group
                    .restore(0, &fx.recovered_ranks())
                    .map_err(|_| MpiError::Aborted)?;
                assert_eq!(version, 1);
                let intact = serial::unpack(&blob).is_some();
                if fx.recovered_ranks().contains(&comm.rank()) {
                    assert!(!intact, "CRC frame must reject the tampered blob");
                    detected.store(true, Ordering::SeqCst);
                }
                // Agree on restore validity so every rank takes the same
                // exit — the typed-abort pattern the runner uses.
                let all_ok = comm.allreduce_scalar(intact as i64, ReduceOp::Min)?;
                if all_ok == 0 {
                    return Err(MpiError::Aborted);
                }
                Ok(())
            },
        )
        .map(|_| ())
    });

    assert!(
        corruption_detected.load(Ordering::SeqCst),
        "the replacement never saw the corrupted blob"
    );
    assert_eq!(report.killed_ranks(), vec![0]);
    for o in &report.outcomes {
        if o.rank == 0 {
            continue; // the killed rank
        }
        assert_eq!(
            o.result,
            Err(MpiError::Aborted),
            "rank {} should abort through the typed channel, got {:?}",
            o.rank,
            o.result
        );
    }
}

/// Two ranks of the same redundancy placement group die in the same
/// iteration (ISSUE 6 satellite). Under buddy IMR (auto → Pair on a
/// one-rank-per-node layout) ranks 0 and 1 are each other's buddies, so
/// both copies of both payloads vanish at once and the driver must surface
/// its typed unrecoverable error — while the redundancy store's
/// erasure-coded groups (auto → RS(4,2) on this shape) absorb both
/// erasures and finish bitwise-equal to the baseline.
#[test]
fn placement_group_double_kill_recovers_via_redstore_but_not_buddy_imr() {
    let oracle = Oracle::new();
    let buddy = ChaosSchedule::parse(
        "strategy=FenixImr spares=2 kill(rank=0,site=iter,at=5) kill(rank=1,site=iter,at=5)",
    )
    .expect("spec parses");
    match &oracle.run(&buddy).verdict {
        Ok(RunOutcome::TypedError(msg)) => {
            assert!(
                msg.contains("unrecoverably"),
                "expected the driver's RankFailed error, got: {msg}"
            );
        }
        other => panic!("buddy IMR cannot survive a buddy-pair kill: {other:?}"),
    }

    let red = ChaosSchedule::parse(
        "strategy=FenixRedstore spares=2 kill(rank=0,site=iter,at=5) kill(rank=1,site=iter,at=5)",
    )
    .expect("spec parses");
    let report = oracle.run(&red);
    match &report.verdict {
        Ok(RunOutcome::Completed { .. }) => {}
        other => panic!("redstore should recover the group kill bitwise: {other:?}"),
    }
    // Timeline evidence: both kills recorded, and at least one repair ran
    // to completion (the oracle already enforced causal order).
    let snap = &report.snapshot;
    let kills = snap
        .events
        .iter()
        .filter(|e| e.event.kind() == "rank_killed")
        .count();
    assert!(
        kills >= 2,
        "expected both kills in the timeline, saw {kills}"
    );
    let repairs_done = snap
        .events
        .iter()
        .filter(|e| e.event.kind() == "repair_end")
        .count();
    assert!(repairs_done >= 1, "the group kill's repair should complete");
}

/// A whole node dies on a two-ranks-per-node layout (ISSUE 6 satellite).
/// With the explicitly co-locating `imr=pair` map, ranks 0 and 1 buddy
/// each other on the dead node — a clean typed error. The default map
/// (auto → Topology, routed through redstore's interleaving) and the
/// redundancy store (auto → cross-node k=2 replica groups) both place
/// every copy off-node, so the same node loss completes bitwise-equal.
#[test]
fn node_kill_defeats_colocated_buddies_but_not_topology_aware_placement() {
    let oracle = Oracle::new();
    let colocated = ChaosSchedule::parse(
        "strategy=FenixImr spares=2 rpn=2 imr=pair nodekill(node=0,site=iter,at=5)",
    )
    .expect("spec parses");
    match &oracle.run(&colocated).verdict {
        Ok(RunOutcome::TypedError(msg)) => {
            assert!(
                msg.contains("unrecoverably"),
                "expected the driver's RankFailed error, got: {msg}"
            );
        }
        other => panic!("co-located pair buddies cannot survive a node kill: {other:?}"),
    }

    let topo =
        ChaosSchedule::parse("strategy=FenixImr spares=2 rpn=2 nodekill(node=0,site=iter,at=5)")
            .expect("spec parses");
    match &oracle.run(&topo).verdict {
        Ok(RunOutcome::Completed { .. }) => {}
        other => panic!("topology-aware buddies should survive a node kill: {other:?}"),
    }

    let red = ChaosSchedule::parse(
        "strategy=FenixRedstore spares=2 rpn=2 nodekill(node=0,site=iter,at=5)",
    )
    .expect("spec parses");
    let report = oracle.run(&red);
    match &report.verdict {
        Ok(RunOutcome::Completed { .. }) => {}
        other => panic!("redstore should recover the node kill bitwise: {other:?}"),
    }
    // The node kill lowered to one kill per hosted rank; the repair that
    // replaced them both must appear in the same coherent timeline.
    let snap = &report.snapshot;
    let kills = snap
        .events
        .iter()
        .filter(|e| e.event.kind() == "rank_killed")
        .count();
    assert!(
        kills >= 2,
        "a two-rank node should record two kills, saw {kills}"
    );
    let repairs_done = snap
        .events
        .iter()
        .filter(|e| e.event.kind() == "repair_end")
        .count();
    assert!(repairs_done >= 1, "the node kill's repair should complete");
}

/// Incremental-checkpoint chain integrity under injected corruption (ISSUE 5
/// satellite): the *base* version of a delta chain is damaged through the
/// chaos injection hook at write time, and a later delta frame must never be
/// restored atop it. Detection has to be positive — `version_intact` turns
/// false for the whole chain, agreement degrades past it, and a forced
/// restart of the delta version fails with the typed `Corrupt` error, not
/// stale or hybrid state.
///
/// Gated out of `chaos-mutants` builds: the mutant disables exactly the CRC
/// rejection that makes base damage visible.
#[cfg(not(feature = "chaos-mutants"))]
#[test]
fn corrupted_delta_base_is_never_restored_atop() {
    let c = Cluster::new(ClusterConfig {
        nodes: 1,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    });
    // Flip a payload byte of version 1 on both tiers as it is written; the
    // delta written on top of it at version 2 stays clean.
    let plan = Arc::new(FaultSchedule::none().and_corrupt(
        CorruptTier::Both,
        1,
        0,
        CorruptKind::FlipBack { back: 0 },
    ));
    c.set_injector(Some(plan));

    let client = veloc::Client::init(
        c.clone(),
        0,
        veloc::Config {
            mode: veloc::Mode::Single,
            async_flush: false,
        },
    );
    let hot = veloc::VecRegion::new(vec![1u8; 64]);
    let cold = veloc::VecRegion::new(vec![9u8; 256]);
    client.protect(0, Arc::new(hot.clone()));
    client.protect(1, Arc::new(cold.clone()));

    // v1: full frame — corrupted in flight by the injector.
    client.checkpoint("chain", 1).expect("checkpoint v1");
    // Only the hot region moves, so v2 is a delta referencing base v1.
    hot.lock()[0] = 2;
    client.checkpoint("chain", 2).expect("checkpoint v2");
    let (v2, _) = c
        .scratch()
        .read(0, "chain/v2/r0")
        .expect("v2 blob in scratch");
    let frame = serial::unpack_any(&v2).expect("v2 parses");
    assert_eq!(
        frame.base_version,
        Some(1),
        "v2 should be a delta on base v1"
    );

    // The chain is broken at its base: nothing intact remains, and the
    // single-mode agreement (no communicator: local knowledge) finds none.
    assert!(!client.version_intact("chain", 2));
    assert!(!client.version_intact("chain", 1));
    assert_eq!(
        client
            .agree_intact_version_below("chain", u64::MAX, None)
            .expect("local agreement"),
        None
    );

    // Forcing a restart of the delta version must fail with the typed
    // error and must not touch the protected regions.
    hot.lock().fill(7);
    cold.lock().fill(7);
    let err = client.restart("chain", 2).expect_err("restart must fail");
    assert!(
        matches!(err, veloc::VelocError::Corrupt { .. }),
        "expected Corrupt, got {err:?}"
    );
    assert_eq!(*hot.lock(), vec![7u8; 64], "no partial restore");
    assert_eq!(*cold.lock(), vec![7u8; 256], "no partial restore");
}
