//! Directed chaos scenarios: failure shapes the campaign generator can
//! produce, pinned down as named regression tests with stronger assertions
//! than the oracle alone (specific typed errors, specific telemetry
//! evidence, specific detection behavior).

#[cfg(not(feature = "chaos-mutants"))]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(not(feature = "chaos-mutants"))]
use std::sync::Arc;

#[cfg(not(feature = "chaos-mutants"))]
use bytes::Bytes;
use chaos::{ChaosSchedule, Oracle, RunOutcome};
#[cfg(not(feature = "chaos-mutants"))]
use cluster::{Cluster, ClusterConfig, RelaunchModel, TimeScale};
#[cfg(not(feature = "chaos-mutants"))]
use fenix::{DataGroup, ExhaustPolicy, FenixConfig, ImrPolicy, ImrStore, Role};
#[cfg(not(feature = "chaos-mutants"))]
use simmpi::{FaultSchedule, MpiError, ReduceOp, Universe, UniverseConfig};
#[cfg(not(feature = "chaos-mutants"))]
use veloc::serial;

/// Exhausting the spare pool must end in the driver's typed error — with a
/// failure timeline that shows both kills and the one repair that *did*
/// succeed — never in a hang or a panic (ISSUE 4 satellite: the paper's §VI
/// only ever spends one spare; the campaign spends them all).
#[test]
fn spare_exhaustion_yields_typed_error_and_coherent_timeline() {
    let oracle = Oracle::new();
    // One spare, two kills at different fault points: the first repair
    // consumes the pool, the second failure finds it empty.
    let sched = ChaosSchedule::parse(
        "strategy=FenixVeloc spares=1 kill(rank=1,site=iter,at=3) kill(rank=2,site=iter,at=6)",
    )
    .expect("spec parses");
    let report = oracle.run(&sched);
    match &report.verdict {
        Ok(RunOutcome::TypedError(msg)) => {
            assert!(
                msg.contains("unrecoverably"),
                "expected the driver's RankFailed error, got: {msg}"
            );
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    // The oracle already enforced causal order; assert the evidence is
    // complete: both injected kills were recorded, and the first failure's
    // repair ran to completion before the pool emptied.
    let snap = &report.snapshot;
    let kills = snap
        .events
        .iter()
        .filter(|e| e.event.kind() == "rank_killed")
        .count();
    assert!(
        kills >= 2,
        "expected both kills in the timeline, saw {kills}"
    );
    let repairs_done = snap
        .events
        .iter()
        .filter(|e| e.event.kind() == "repair_end")
        .count();
    assert!(
        repairs_done >= 1,
        "the first failure's repair should have completed"
    );
}

/// IMR buddy recovery with a corrupted partner store: the holder's copy of
/// the dead rank's data is tampered with before the failure, so the
/// replacement receives a blob whose CRC frame no longer matches. Detection
/// must be positive (unpack returns `None`, not garbage state), and the job
/// must end in a *consistent* typed abort on every active rank — no hang,
/// no panic (ISSUE 4 satellite).
///
/// Gated out of `chaos-mutants` builds: the mutant disables exactly the
/// CRC rejection this test asserts.
#[cfg(not(feature = "chaos-mutants"))]
#[test]
fn imr_recovery_detects_corrupted_partner_store_and_aborts_cleanly() {
    let c = Cluster::new(ClusterConfig {
        nodes: 5, // 4 active + 1 spare
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        relaunch: RelaunchModel::free(),
        ..ClusterConfig::default()
    });
    let plan = Arc::new(FaultSchedule::kill_at(0, "after-store", 0));
    let corruption_detected = Arc::new(AtomicBool::new(false));
    let detected = Arc::clone(&corruption_detected);

    let report = Universe::launch(&c, UniverseConfig::default(), plan, move |ctx| {
        let store = ImrStore::new();
        let detected = Arc::clone(&detected);
        fenix::run(
            ctx.world(),
            FenixConfig {
                spares: 1,
                on_exhaustion: ExhaustPolicy::Abort,
            },
            |fx, comm, role| {
                // Pair policy on 4 ranks: rank 1 holds rank 0's data.
                let group = DataGroup::new(Arc::clone(&store), comm, ImrPolicy::Pair);
                if role == Role::Initial {
                    let payload = serial::pack(&[(0u32, Bytes::from(vec![comm.rank() as u8; 32]))]);
                    group.store(0, 1, payload).map_err(|_| MpiError::Aborted)?;
                    if comm.rank() == 1 {
                        assert!(store.tamper_held(0), "holder should have buddy data");
                    }
                    // Rank 0 dies here; survivors detect it at the finalize
                    // rendezvous and repair.
                    ctx.fault_point("after-store", 0)?;
                    return Ok(());
                }
                // Post-repair: collective restore. The replacement's blob
                // comes from the tampered holder.
                let (version, blob) = group
                    .restore(0, &fx.recovered_ranks())
                    .map_err(|_| MpiError::Aborted)?;
                assert_eq!(version, 1);
                let intact = serial::unpack(&blob).is_some();
                if fx.recovered_ranks().contains(&comm.rank()) {
                    assert!(!intact, "CRC frame must reject the tampered blob");
                    detected.store(true, Ordering::SeqCst);
                }
                // Agree on restore validity so every rank takes the same
                // exit — the typed-abort pattern the runner uses.
                let all_ok = comm.allreduce_scalar(intact as i64, ReduceOp::Min)?;
                if all_ok == 0 {
                    return Err(MpiError::Aborted);
                }
                Ok(())
            },
        )
        .map(|_| ())
    });

    assert!(
        corruption_detected.load(Ordering::SeqCst),
        "the replacement never saw the corrupted blob"
    );
    assert_eq!(report.killed_ranks(), vec![0]);
    for o in &report.outcomes {
        if o.rank == 0 {
            continue; // the killed rank
        }
        assert_eq!(
            o.result,
            Err(MpiError::Aborted),
            "rank {} should abort through the typed channel, got {:?}",
            o.rank,
            o.result
        );
    }
}
