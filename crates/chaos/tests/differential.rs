//! DES-vs-threads differential regression (ISSUE 9 satellite): the
//! committed chaos reproducers — the directed failure shapes pinned down by
//! earlier issues' scenario tests — replayed on both execution backends.
//! The deterministic scheduler is only a valid oracle substrate if it
//! reaches the *same verdict* as the thread-per-rank backend on every
//! schedule the campaign has ever flagged: same completion digest, same
//! typed-error class, never a new hang or panic.
//!
//! Digests are comparable across backends because every workload here is a
//! fixed-iteration Heatdis whose answer is schedule-independent; error
//! *messages* may name a different rank (which victim observes exhaustion
//! first is schedule-dependent), so typed errors are compared by class.

use chaos::{ChaosSchedule, Oracle, RunOutcome, Violation};
use simmpi::Backend;
use telemetry::export::to_jsonl;

/// The committed reproducer corpus: one spec per failure shape the directed
/// scenario tests (ISSUEs 4 and 6) pinned down.
const REPRODUCERS: &[&str] = &[
    // Single in-band failure, in-place Fenix/KR recovery.
    "strategy=FenixKokkosResilience spares=1 kill(rank=1,site=iter,at=5)",
    // Spare-pool exhaustion: two kills, one spare -> typed error.
    "strategy=FenixVeloc spares=1 kill(rank=1,site=iter,at=3) kill(rank=2,site=iter,at=6)",
    // Concurrent buddy-pair loss: unrecoverable for buddy IMR...
    "strategy=FenixImr spares=2 kill(rank=0,site=iter,at=5) kill(rank=1,site=iter,at=5)",
    // ...but recovered exactly by the redundancy tier.
    "strategy=FenixRedstore spares=2 kill(rank=0,site=iter,at=5) kill(rank=1,site=iter,at=5)",
    // Relaunch-based recovery (abort, teardown, restart from PFS).
    "strategy=VelocOnly spares=0 kill(rank=1,site=iter,at=4)",
    // Clean run: both backends must complete and agree with the baseline.
    "strategy=FenixKokkosResilience spares=1",
];

/// Verdict comparison key: completion digest exactly; typed errors by
/// class; violations verbatim (any violation is already a failure).
fn verdict_class(v: &Result<RunOutcome, Violation>) -> String {
    match v {
        Ok(RunOutcome::Completed { digest }) => format!("completed:{digest}"),
        Ok(RunOutcome::TypedError(msg)) if msg.contains("unrecoverably") => {
            "typed:rank-failed".into()
        }
        Ok(RunOutcome::TypedError(msg)) if msg.contains("relaunches") => {
            "typed:relaunch-limit".into()
        }
        Ok(RunOutcome::TypedError(msg)) => format!("typed:other:{msg}"),
        Err(v) => format!("violation:{v}"),
    }
}

#[test]
fn des_and_threads_agree_on_every_committed_reproducer() {
    let threads = Oracle::new();
    let des = Oracle::with_backend(Backend::Des { seed: 0x5eed });
    for spec in REPRODUCERS {
        let sched = ChaosSchedule::parse(spec).expect("committed spec parses");
        let t = threads.run(&sched);
        let d = des.run(&sched);
        assert!(
            !matches!(d.verdict, Err(Violation::Hang) | Err(Violation::Panic(_))),
            "DES backend hung or panicked on committed reproducer {spec:?}: {:?}",
            d.verdict
        );
        assert_eq!(
            verdict_class(&t.verdict),
            verdict_class(&d.verdict),
            "backends disagree on {spec:?}\n  threads: {:?}\n  des: {:?}",
            t.verdict,
            d.verdict
        );
    }
}

/// The DES oracle itself is deterministic: the same seed replays the same
/// schedule to the same verdict *and* the same telemetry timeline, byte
/// for byte — this is what makes a chaos finding a reproducer at all.
#[test]
fn des_oracle_replay_is_bitwise_identical() {
    let spec =
        "strategy=FenixVeloc spares=1 kill(rank=1,site=iter,at=3) kill(rank=2,site=iter,at=6)";
    let sched = ChaosSchedule::parse(spec).expect("spec parses");
    let oracle = Oracle::with_backend(Backend::Des { seed: 42 });
    let a = oracle.run(&sched);
    let b = oracle.run(&sched);
    assert_eq!(verdict_class(&a.verdict), verdict_class(&b.verdict));
    assert_eq!(
        to_jsonl(&a.snapshot),
        to_jsonl(&b.snapshot),
        "same seed must replay an identical timeline"
    );
}
