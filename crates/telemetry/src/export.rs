//! Trace exporters: JSONL event dumps, Chrome `trace_event` JSON, and a
//! human-readable failure timeline.
//!
//! All exporters consume a [`TraceSnapshot`] (see [`crate::Telemetry::snapshot`]),
//! whose events are already merged across ranks and sorted by timestamp.

use std::io::Write as _;
use std::path::Path;

use crate::event::Event;
use crate::json::Json;
use crate::TimedEvent;
use crate::TraceSnapshot;

/// The variant-specific payload of an event as JSON pairs.
pub fn event_fields(e: &Event) -> Vec<(&'static str, Json)> {
    match e {
        Event::MpiCall { op, peer, bytes } => {
            let mut f = vec![("op", Json::from(op.name()))];
            if let Some(p) = peer {
                f.push(("peer", Json::from(*p)));
            }
            f.push(("bytes", Json::from(*bytes)));
            f
        }
        Event::FaultInjected { site, count } => vec![
            ("site", Json::from(site.as_str())),
            ("count", Json::from(*count)),
        ],
        Event::RankKilled | Event::Revoke => vec![],
        Event::Agree { seq, flags } => {
            vec![("seq", Json::from(*seq)), ("flags", Json::from(*flags))]
        }
        Event::Shrink { survivors } => vec![("survivors", Json::from(*survivors))],
        Event::FailureDetected { scope } => vec![("scope", Json::from(scope.as_str()))],
        Event::RoleChanged { role } => vec![("role", Json::from(role.as_str()))],
        Event::RepairBegin { epoch } => vec![("epoch", Json::from(*epoch))],
        Event::RepairEnd {
            epoch,
            survivors,
            spares_left,
        } => vec![
            ("epoch", Json::from(*epoch)),
            ("survivors", Json::from(*survivors)),
            ("spares_left", Json::from(*spares_left)),
        ],
        Event::CallbackFired { name } => vec![("name", Json::from(name.as_str()))],
        Event::Protect { name, bytes } => vec![
            ("name", Json::from(name.as_str())),
            ("bytes", Json::from(*bytes)),
        ],
        Event::CheckpointBegin { name, version }
        | Event::FlushEnqueued { name, version }
        | Event::RestartBegin { name, version } => vec![
            ("name", Json::from(name.as_str())),
            ("version", Json::from(*version)),
        ],
        Event::CheckpointLocal {
            name,
            version,
            bytes,
        }
        | Event::FlushDone {
            name,
            version,
            bytes,
        } => vec![
            ("name", Json::from(name.as_str())),
            ("version", Json::from(*version)),
            ("bytes", Json::from(*bytes)),
        ],
        Event::RestartEnd { name, version, ok } => vec![
            ("name", Json::from(name.as_str())),
            ("version", Json::from(*version)),
            ("ok", Json::from(*ok)),
        ],
        Event::RegionEnter { label, iteration } => vec![
            ("label", Json::from(label.as_str())),
            ("iteration", Json::from(*iteration)),
        ],
        Event::RegionCapture {
            label,
            views,
            bytes,
        } => vec![
            ("label", Json::from(label.as_str())),
            ("views", Json::from(*views)),
            ("bytes", Json::from(*bytes)),
        ],
        Event::RegionCommit { label, version } | Event::RegionRestore { label, version } => vec![
            ("label", Json::from(label.as_str())),
            ("version", Json::from(*version)),
        ],
        Event::SpanBegin { phase } | Event::SpanEnd { phase } => {
            vec![("phase", Json::from(phase.name()))]
        }
        Event::Marker { label } => vec![("label", Json::from(label.as_str()))],
    }
}

fn event_json(e: &TimedEvent) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("t_ns".into(), Json::from(e.t_ns)),
        ("rank".into(), Json::from(e.rank)),
        ("layer".into(), Json::from(e.event.layer())),
        ("kind".into(), Json::from(e.event.kind())),
    ];
    pairs.extend(
        event_fields(&e.event)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v)),
    );
    Json::Obj(pairs)
}

/// One JSON object per line, oldest event first.
pub fn to_jsonl(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    for e in &snap.events {
        out.push_str(&event_json(e).to_json());
        out.push('\n');
    }
    out
}

/// Chrome `trace_event` document: spans become `B`/`E` duration events and
/// everything else an instant (`i`), one track (`tid`) per rank. Load in
/// `chrome://tracing` or Perfetto.
pub fn to_chrome_trace(snap: &TraceSnapshot) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(snap.events.len() + 8);

    let mut ranks: Vec<u32> = snap.events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    for r in &ranks {
        events.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(*r)),
            (
                "args",
                Json::obj([("name", Json::from(format!("rank {r}")))]),
            ),
        ]));
    }

    for e in &snap.events {
        let ts = e.t_ns as f64 / 1e3; // trace_event timestamps are µs
        let common = [
            ("ts", Json::Num(ts)),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(e.rank)),
        ];
        let ev = match &e.event {
            Event::SpanBegin { phase } => Json::obj(
                [
                    ("name", Json::from(phase.name())),
                    ("cat", Json::from("phase")),
                    ("ph", Json::from("B")),
                ]
                .into_iter()
                .chain(common),
            ),
            Event::SpanEnd { phase } => Json::obj(
                [
                    ("name", Json::from(phase.name())),
                    ("cat", Json::from("phase")),
                    ("ph", Json::from("E")),
                ]
                .into_iter()
                .chain(common),
            ),
            other => Json::obj(
                [
                    ("name", Json::from(other.kind())),
                    ("cat", Json::from(other.layer())),
                    ("ph", Json::from("i")),
                    ("s", Json::from("t")),
                ]
                .into_iter()
                .chain(common)
                .chain([(
                    "args",
                    Json::Obj(
                        event_fields(other)
                            .into_iter()
                            .map(|(k, v)| (k.to_string(), v))
                            .collect(),
                    ),
                )]),
            ),
        };
        events.push(ev);
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
}

/// Event kinds that tell the failure story (everything but the high-volume
/// MPI-call and span-bracket noise).
fn is_timeline_kind(e: &Event) -> bool {
    !matches!(
        e,
        Event::MpiCall { .. } | Event::SpanBegin { .. } | Event::SpanEnd { .. }
    )
}

/// Human-readable chronological summary of the run's failure handling.
pub fn failure_timeline(snap: &TraceSnapshot) -> String {
    let picked: Vec<&TimedEvent> = snap
        .events
        .iter()
        .filter(|e| is_timeline_kind(&e.event))
        .collect();
    let mut out = format!(
        "failure timeline: {} events ({} shown, {} dropped from rings)\n",
        snap.events.len(),
        picked.len(),
        snap.dropped
    );
    for e in picked {
        let fields = event_fields(&e.event)
            .into_iter()
            .map(|(k, v)| {
                let v = match v {
                    Json::Str(s) => s,
                    other => other.to_json(),
                };
                format!("{k}={v}")
            })
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "  +{:>12.6}s rank {:<3} [{:<17}] {}{}{}\n",
            e.t_ns as f64 / 1e9,
            e.rank,
            e.event.layer(),
            e.event.kind(),
            if fields.is_empty() { "" } else { " " },
            fields,
        ));
    }
    out
}

/// Write the JSONL dump to `path`.
pub fn write_jsonl(path: &Path, snap: &TraceSnapshot) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_jsonl(snap).as_bytes())
}

/// Write the Chrome trace JSON to `path`.
pub fn write_chrome_trace(path: &Path, snap: &TraceSnapshot) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_chrome_trace(snap).to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MpiOp;

    fn snap(events: Vec<TimedEvent>) -> TraceSnapshot {
        TraceSnapshot {
            events,
            dropped: 0,
            pushed: 0,
        }
    }

    fn ev(t_ns: u64, rank: u32, event: Event) -> TimedEvent {
        TimedEvent { t_ns, rank, event }
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let s = snap(vec![
            ev(10, 0, Event::Revoke),
            ev(
                20,
                1,
                Event::CheckpointBegin {
                    name: "heatdis".into(),
                    version: 3,
                },
            ),
        ]);
        let text = to_jsonl(&s);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"t_ns":10,"rank":0,"layer":"simmpi","kind":"revoke"}"#
        );
        assert_eq!(
            lines[1],
            r#"{"t_ns":20,"rank":1,"layer":"veloc","kind":"checkpoint_begin","name":"heatdis","version":3}"#
        );
    }

    #[test]
    fn chrome_trace_has_span_brackets_and_instants() {
        let s = snap(vec![
            ev(
                1_000,
                2,
                Event::SpanBegin {
                    phase: crate::Phase::AppCompute,
                },
            ),
            ev(
                2_000,
                2,
                Event::MpiCall {
                    op: MpiOp::Barrier,
                    peer: None,
                    bytes: 0,
                },
            ),
            ev(
                3_000,
                2,
                Event::SpanEnd {
                    phase: crate::Phase::AppCompute,
                },
            ),
        ]);
        let doc = to_chrome_trace(&s);
        let Json::Obj(pairs) = &doc else { panic!() };
        let Json::Arr(events) = &pairs[0].1 else {
            panic!()
        };
        // 1 thread_name metadata + 3 events.
        assert_eq!(events.len(), 4);
        let phs: Vec<String> = events
            .iter()
            .filter_map(|e| {
                let Json::Obj(p) = e else { return None };
                p.iter().find(|(k, _)| k == "ph").map(|(_, v)| match v {
                    Json::Str(s) => s.clone(),
                    _ => panic!(),
                })
            })
            .collect();
        assert_eq!(phs, vec!["M", "B", "i", "E"]);
    }

    #[test]
    fn timeline_skips_noise_and_reports_drops() {
        let s = TraceSnapshot {
            events: vec![
                ev(
                    5,
                    0,
                    Event::MpiCall {
                        op: MpiOp::Send,
                        peer: Some(1),
                        bytes: 8,
                    },
                ),
                ev(
                    7,
                    0,
                    Event::FaultInjected {
                        site: "iter".into(),
                        count: 3,
                    },
                ),
            ],
            dropped: 4,
            pushed: 6,
        };
        let text = failure_timeline(&s);
        assert!(text.contains("1 shown"));
        assert!(text.contains("4 dropped"));
        assert!(text.contains("fault_injected site=iter count=3"));
        assert!(!text.contains("mpi_call"));
    }
}
