//! Named counters, gauges, and log2 histograms.
//!
//! A [`Metrics`] registry lives on each [`crate::Telemetry`]; layers grab
//! handles once (cheap `Arc` clones backed by atomics) and update them on
//! hot paths without locks. Registration takes a short lock and is expected
//! at setup time only.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Well-known metric names shared across layers, so producers and the
/// experiment harness agree on spelling without string literals scattered
/// through the workspace.
pub mod names {
    /// Bytes the data layer was asked to protect, summed over checkpoint
    /// calls (what a non-incremental pipeline would have written).
    pub const VELOC_BYTES_PROTECTED: &str = "veloc.bytes_protected";
    /// Bytes the data layer actually wrote to scratch, summed over
    /// checkpoint calls. The gap to `VELOC_BYTES_PROTECTED` is what
    /// incremental (VCF2 delta) checkpointing saved.
    pub const VELOC_BYTES_WRITTEN: &str = "veloc.bytes_written";
    /// Checkpoints emitted as delta frames rather than full frames.
    pub const VELOC_DELTA_FRAMES: &str = "veloc.delta_frames";
}

/// Monotonic event count.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed value.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucketed histogram of `u64` samples (e.g. nanoseconds or
/// bytes). Bucket `i` counts samples whose value needs `i` significant
/// bits, i.e. upper bound `2^i - 1`.
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Shareable histogram handle.
#[derive(Clone, Default)]
pub struct HistogramHandle(Arc<Histogram>);

impl HistogramHandle {
    pub fn record(&self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Non-empty buckets as `(upper_bound, count)`.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                if c == 0 {
                    return None;
                }
                let bound = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                Some((bound, c))
            })
            .collect()
    }
}

/// The registry: name → handle, one per [`crate::Telemetry`].
#[derive(Default)]
pub struct Metrics {
    counters: Mutex<HashMap<String, Counter>>,
    gauges: Mutex<HashMap<String, Gauge>>,
    histograms: Mutex<HashMap<String, HistogramHandle>>,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle for counter `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Point-in-time copy of everything, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: v.count(),
                        sum: v.sum(),
                        buckets: v.buckets(),
                    },
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_storage() {
        let m = Metrics::new();
        let a = m.counter("ckpt.commits");
        let b = m.counter("ckpt.commits");
        a.inc();
        b.add(2);
        assert_eq!(m.counter("ckpt.commits").get(), 3);
    }

    #[test]
    fn gauge_set_and_add() {
        let m = Metrics::new();
        let g = m.gauge("spares.left");
        g.set(4);
        g.add(-1);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let m = Metrics::new();
        let h = m.histogram("flush.bytes");
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1002);
        let buckets = h.buckets();
        // 0 → bucket bound 0; 1 → bound 1; 1000 → bound 1023.
        assert_eq!(buckets, vec![(0, 1), (1, 2), (1023, 1)]);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let m = Metrics::new();
        m.counter("b").inc();
        m.counter("a").inc();
        let names: Vec<_> = m.snapshot().counters.into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
