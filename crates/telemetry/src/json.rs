//! Minimal JSON document model used by the exporters and the harness.
//!
//! The workspace builds offline, so instead of `serde_json` this module
//! provides the small subset the repo needs: constructing values and
//! printing them compactly or pretty. Numbers are `f64` (integers up to
//! 2^53 print without a fractional part, matching JSON's number model).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder from `(key, value)` pairs (order preserved).
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact single-line rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering (two spaces per level).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
                write_str(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (level + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * level));
    }
    out.push(close);
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/inf; null is the conventional fallback.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

macro_rules! json_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(x: $t) -> Json {
                Json::Num(x as f64)
            }
        }
    )*};
}

json_from_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("name", Json::from("heatdis")),
            ("ok", Json::from(true)),
            ("versions", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("none", Json::Null),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"name":"heatdis","ok":true,"versions":[1,2],"none":null}"#
        );
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(3u64).to_json(), "3");
        assert_eq!(Json::from(-7i64).to_json(), "-7");
        assert_eq!(Json::from(0.5f64).to_json(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").to_json(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::obj([("xs", Json::arr([Json::from(1u64)]))]);
        assert_eq!(v.to_json_pretty(), "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(Json::arr([]).to_json_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_json_pretty(), "{}");
    }
}
