//! Cost-category phases and the accumulator behind `simmpi::Profile`.
//!
//! The paper reports stacked cost breakdowns; every run carries a per-rank
//! accumulator that books wall time into the same categories: Heatdis uses
//! `AppCompute`/`AppMpi`, MiniMD uses `ForceCompute`/`Neighboring`/
//! `Communicator`, and the resilience layers book their own costs
//! (`ResilienceInit`, `CheckpointFn`, `DataRecovery`, `Recompute`). Whatever
//! the harness measures beyond the in-app phases lands in the paper's
//! "Other" category (job startup/teardown, data initialization).
//!
//! `Phase` used to live in `simmpi::profile`; it moved here so every layer
//! (and the exporters) can speak the same category names without depending
//! on the MPI simulation. `simmpi` re-exports it for compatibility.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cost categories matching the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Heatdis: local stencil compute.
    AppCompute,
    /// Heatdis: time blocked in MPI calls.
    AppMpi,
    /// Fenix + Kokkos Resilience + VeloC initialization.
    ResilienceInit,
    /// Synchronous portion of checkpoint calls.
    CheckpointFn,
    /// Restoring data after a failure (restart reads + deserialization).
    DataRecovery,
    /// Re-executing iterations lost since the last checkpoint.
    Recompute,
    /// MiniMD: force computation (compute-bound).
    ForceCompute,
    /// MiniMD: neighbor-list construction (mostly compute-bound).
    Neighboring,
    /// MiniMD: atom exchange/ghost communication (communication-bound).
    Communicator,
    /// Application initialization (counted toward "Other" on relaunch).
    AppInit,
    /// Offline static-analysis passes (`crates/lint`); never booked inside
    /// an experiment, but carried here so analyzer runs share the span /
    /// trace tooling.
    StaticAnalysis,
}

impl Phase {
    pub const COUNT: usize = 11;

    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::AppCompute,
        Phase::AppMpi,
        Phase::ResilienceInit,
        Phase::CheckpointFn,
        Phase::DataRecovery,
        Phase::Recompute,
        Phase::ForceCompute,
        Phase::Neighboring,
        Phase::Communicator,
        Phase::AppInit,
        Phase::StaticAnalysis,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::AppCompute => "App compute",
            Phase::AppMpi => "App MPI",
            Phase::ResilienceInit => "Resilience Initialization",
            Phase::CheckpointFn => "Checkpoint Function",
            Phase::DataRecovery => "Data Recovery",
            Phase::Recompute => "Recompute",
            Phase::ForceCompute => "Force Compute",
            Phase::Neighboring => "Neighboring",
            Phase::Communicator => "Communicator",
            Phase::AppInit => "App Init",
            Phase::StaticAnalysis => "Static Analysis",
        }
    }

    pub fn from_index(i: usize) -> Option<Phase> {
        Phase::ALL.get(i).copied()
    }
}

/// Thread-safe phase-time accumulator (nanosecond resolution).
///
/// This is the storage behind both `simmpi::Profile` (the compatibility
/// shim) and span timing ([`crate::span`]): spans book their elapsed time
/// here on drop, so legacy `profile.time(..)` callers and span-based
/// callers feed the same per-rank totals.
#[derive(Default)]
pub struct PhaseAccumulator {
    nanos: [AtomicU64; Phase::COUNT],
}

impl PhaseAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a measured duration to a phase.
    pub fn add(&self, phase: Phase, d: Duration) {
        self.nanos[phase as usize].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Accumulated time in a phase.
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase as usize].load(Ordering::Relaxed))
    }

    /// Sum across all phases (the in-app accounted time).
    pub fn total(&self) -> Duration {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }

    /// Snapshot all phases as (phase, duration) pairs.
    pub fn snapshot(&self) -> Vec<(Phase, Duration)> {
        Phase::ALL.iter().map(|&p| (p, self.get(p))).collect()
    }

    /// Zero every accumulator.
    pub fn reset(&self) {
        for n in &self.nanos {
            n.store(0, Ordering::Relaxed);
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge_from(&self, other: &PhaseAccumulator) {
        for &p in &Phase::ALL {
            self.add(p, other.get(p));
        }
    }
}

impl std::fmt::Debug for PhaseAccumulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("PhaseAccumulator");
        for &p in &Phase::ALL {
            let d = self.get(p);
            if !d.is_zero() {
                s.field(p.name(), &d);
            }
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let a = PhaseAccumulator::new();
        a.add(Phase::AppCompute, Duration::from_millis(5));
        a.add(Phase::AppCompute, Duration::from_millis(7));
        a.add(Phase::AppMpi, Duration::from_millis(1));
        assert_eq!(a.get(Phase::AppCompute), Duration::from_millis(12));
        assert_eq!(a.total(), Duration::from_millis(13));
    }

    #[test]
    fn merge_and_reset() {
        let a = PhaseAccumulator::new();
        let b = PhaseAccumulator::new();
        a.add(Phase::Recompute, Duration::from_millis(3));
        b.add(Phase::Recompute, Duration::from_millis(4));
        a.merge_from(&b);
        assert_eq!(a.get(Phase::Recompute), Duration::from_millis(7));
        a.reset();
        assert_eq!(a.total(), Duration::ZERO);
    }

    #[test]
    fn phase_names_unique() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
    }

    #[test]
    fn from_index_roundtrips() {
        for (i, &p) in Phase::ALL.iter().enumerate() {
            assert_eq!(Phase::from_index(i), Some(p));
        }
        assert_eq!(Phase::from_index(Phase::COUNT), None);
    }
}
