//! Lock-free bounded event ring with overwrite-oldest eviction.
//!
//! One ring per rank. Writers (the rank thread, plus auxiliary threads such
//! as VeloC's flush worker) publish fixed-width records with a per-slot
//! sequence-lock protocol built entirely on atomics — no mutex anywhere on
//! the write path, so recording can sit inside simulated MPI calls without
//! perturbing timing. When the ring is full the oldest record is
//! overwritten and counted as dropped rather than blocking or growing.
//!
//! Protocol: `head` is the count of records ever claimed. A writer claims
//! index `h = head.fetch_add(1)`, giving slot `h % capacity` and generation
//! `g = h / capacity`. It then claims the slot itself by CAS-ing its
//! sequence from `2g` (the previous generation's published value) to
//! `2g + 1` (write in progress), fills the words, and publishes `2g + 2`.
//! When the claim observes an odd sequence (a writer from an adjacent
//! generation is mid-flight) or one at/past `2g` (this writer is a full lap
//! behind), the push abandons the record rather than interleave two
//! generations' words; a *stale even* sequence — the residue of an earlier
//! abandoned generation — is reclaimed instead, so one abandonment never
//! leaves the slot permanently dead (see [`EventRing::push`]). A snapshot
//! reader accepts a slot only when the sequence reads `2g + 2` for the
//! generation it expects both before and after copying the words; anything
//! else means the slot was mid-write, abandoned, or already recycled, and
//! the record is skipped.

// loom facade: identical to std::sync::atomic in production; every access
// becomes a schedule point under the modelcheck explorer. The seqlock is
// model-checked by crates/modelcheck/tests/seqlock.rs (including wraparound
// and generation reuse) and its mutant twin in tests/mutant.rs.
use loom::sync::atomic::{fence, AtomicU64, Ordering};

use crate::event::RECORD_WORDS;

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; RECORD_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bounded multi-writer ring of encoded event records.
pub struct EventRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl EventRing {
    /// `capacity` is rounded up to at least 2 slots.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2);
        EventRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records ever pushed (including later-evicted ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records evicted by wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Publish one record. Never blocks; evicts the oldest record when full.
    ///
    /// A push can *abandon* its slot when a writer from an adjacent
    /// generation is still active on it (odd sequence) or this writer is a
    /// full capacity lap behind (sequence already at/past its generation).
    /// The record is then silently lost (it still counts in [`pushed`]); the
    /// alternative, writing anyway, interleaves two generations' words under
    /// a valid sequence, which the modelcheck seqlock suite demonstrates as
    /// a torn read. With realistic capacities a full-lap lag is pathological;
    /// losing that record keeps push effectively wait-free and readers safe.
    /// A *stale even* sequence — left behind when an earlier generation's
    /// push abandoned — is reclaimed rather than treated as a conflict:
    /// abandoning on it would make the slot reject every later generation
    /// forever (the dead-slot bug pinned by
    /// `crates/modelcheck/tests/scratch_deadslot.rs`).
    ///
    /// [`pushed`]: EventRing::pushed
    pub fn push(&self, words: [u64; RECORD_WORDS]) {
        let h = self.head.fetch_add(1, Ordering::AcqRel);
        let cap = self.slots.len() as u64;
        let generation = h / cap;
        let slot = &self.slots[(h % cap) as usize];
        // Claim the slot for this generation. The expected sequence is the
        // previous generation's "published" value (2*generation, which is
        // also the initial 0 for generation 0) — but an abandoned push from
        // an intermediate generation leaves the sequence at an even value
        // *behind* that, and treating it as a conflict would kill the slot
        // for every generation after (the dead-slot interleaving pinned by
        // crates/modelcheck/tests/scratch_deadslot.rs). A stale even value
        // means no writer is active on the slot, so reclaim from it instead;
        // only an odd sequence (writer mid-flight) or one at/past our own
        // generation (we are the lagging writer) abandons. The sequence is
        // monotonic, so each retry observes a strictly larger value and the
        // loop is bounded. Acquire on failure (audited): the observed value
        // seeds the next claim attempt.
        let mut expect = 2 * generation;
        loop {
            match slot.seq.compare_exchange(
                expect,
                2 * generation + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(seen) if seen % 2 == 0 && seen < 2 * generation => expect = seen,
                Err(_) => return,
            }
        }
        // The odd ("write in progress") sequence must become visible before
        // any word store. The AcqRel claim above only orders *earlier*
        // operations before it; this fence orders it before the Relaxed word
        // stores that follow. Without it, a word store could be reordered
        // ahead of the odd mark and a reader of the *previous* generation
        // could validate a half-overwritten record.
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            // Relaxed is sufficient (audited): the words are ordered after
            // the odd mark by the fence above, and before the even mark by
            // the Release store below. Readers never use word values unless
            // both seq checks pass.
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * generation + 2, Ordering::Release);
    }

    /// Copy out the surviving records, oldest first.
    ///
    /// Safe to call while writers are active: records being overwritten
    /// during the scan are simply skipped (they would have been evicted
    /// moments later anyway).
    pub fn snapshot(&self) -> Vec<[u64; RECORD_WORDS]> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for h in start..head {
            let generation = h / cap;
            let slot = &self.slots[(h % cap) as usize];
            let expect = 2 * generation + 2;
            if slot.seq.load(Ordering::Acquire) != expect {
                continue;
            }
            // Relaxed is sufficient (audited): the Acquire load above orders
            // the word loads after the first validation, and the Acquire
            // fence below orders them before the second one. A concurrent
            // overwrite therefore cannot produce a torn record that passes
            // both checks — it flips seq to odd (or a later generation)
            // before touching the words.
            let words: [u64; RECORD_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != expect {
                continue;
            }
            out.push(words);
        }
        out
    }

    /// Deliberately broken push for the modelcheck suite: publishes the
    /// "write complete" sequence *before* filling the words, so a reader
    /// can validate a half-written record. `crates/modelcheck/tests/mutant.rs`
    /// proves the explorer finds the torn read this admits; it is the
    /// demonstration that the suite would catch a real regression of the
    /// protocol in [`EventRing::push`].
    #[cfg(feature = "mc-mutants")]
    #[doc(hidden)]
    pub fn push_publish_before_fill(&self, words: [u64; RECORD_WORDS]) {
        let h = self.head.fetch_add(1, Ordering::AcqRel);
        let cap = self.slots.len() as u64;
        let generation = h / cap;
        let slot = &self.slots[(h % cap) as usize];
        // BUG (on purpose): even mark first, then the words.
        slot.seq.store(2 * generation + 2, Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: u64) -> [u64; RECORD_WORDS] {
        let mut w = [0; RECORD_WORDS];
        w[0] = v;
        w
    }

    #[test]
    fn fifo_below_capacity() {
        let r = EventRing::new(8);
        for v in 0..5 {
            r.push(rec(v));
        }
        let snap = r.snapshot();
        assert_eq!(
            snap.iter().map(|w| w[0]).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let r = EventRing::new(4);
        for v in 0..10 {
            r.push(rec(v));
        }
        let snap = r.snapshot();
        // Newest 4 survive, oldest 6 dropped, nothing panicked.
        assert_eq!(
            snap.iter().map(|w| w[0]).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.pushed(), 10);
    }

    #[test]
    fn concurrent_writers_produce_coherent_records() {
        use std::sync::Arc;
        let r = Arc::new(EventRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..1000 {
                        // All words of one record carry the same value so a
                        // torn read would be detectable.
                        let v = t * 1_000_000 + i;
                        r.push([v; RECORD_WORDS]);
                    }
                });
            }
        });
        assert_eq!(r.pushed(), 4000);
        for w in r.snapshot() {
            assert!(w.iter().all(|&x| x == w[0]), "torn record: {w:?}");
        }
    }

    #[test]
    fn snapshot_while_writing_never_yields_torn_records() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let r = Arc::new(EventRing::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let writer = {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut v = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        r.push([v; RECORD_WORDS]);
                        v += 1;
                    }
                })
            };
            for _ in 0..200 {
                for w in r.snapshot() {
                    assert!(w.iter().all(|&x| x == w[0]), "torn record: {w:?}");
                }
            }
            stop.store(true, Ordering::Relaxed);
            writer.join().unwrap();
        });
    }
}
