//! Unified observability for the layered-resilience stack.
//!
//! One [`Telemetry`] instance covers one experiment (a `Universe` launch or
//! a whole relaunch sequence). Each rank gets a cheap [`Recorder`] handle
//! that feeds three sinks:
//!
//! - a **structured event log** — typed [`Event`]s in a bounded lock-free
//!   per-rank ring ([`ring::EventRing`]) with overwrite-oldest eviction and
//!   drop counting;
//! - **span timers** ([`span::SpanGuard`]) booking inclusive time into the
//!   rank's [`PhaseAccumulator`] (the storage behind `simmpi::Profile`) and
//!   exclusive/self time into a parallel accumulator;
//! - a **metrics registry** ([`metrics::Metrics`]) of named counters,
//!   gauges, and histograms shared across ranks.
//!
//! [`Telemetry::snapshot`] merges every ring into a time-sorted
//! [`TraceSnapshot`] which the exporters ([`export`]) turn into JSONL,
//! Chrome `trace_event` JSON, or a human-readable failure timeline.
//!
//! Overhead control: a defaulted [`Recorder`] (`Recorder::disabled()`) is a
//! `None` and every operation on it is a branch on an `Option` — layers can
//! therefore thread recorders unconditionally. Compiling without the
//! `events` feature removes event recording entirely (spans still
//! accumulate phase time, which the cost model needs).

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod ring;
pub mod span;

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

pub use event::{Event, Interner, MpiOp};
pub use json::Json;
pub use metrics::{names, Counter, Gauge, HistogramHandle, Metrics, MetricsSnapshot};
pub use phase::{Phase, PhaseAccumulator};
pub use ring::EventRing;
pub use span::SpanGuard;

/// Tuning for one [`Telemetry`] instance.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Per-rank ring capacity in records (64 bytes each). When a rank
    /// outruns its ring the oldest records are evicted and counted.
    pub ring_capacity: usize,
    /// Record an [`Event::MpiCall`] for every simulated MPI entry point.
    /// Off by default: calls are the highest-volume event class and the
    /// failure chain is observable without them.
    pub record_mpi_calls: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 16 * 1024,
            record_mpi_calls: false,
        }
    }
}

struct RankSlot {
    rank: u32,
    ring: EventRing,
    exclusive: PhaseAccumulator,
}

/// Where event timestamps come from.
pub enum TimeSource {
    /// Wall-clock nanoseconds since the hub's creation (the default).
    Epoch(Instant),
    /// An external nanosecond counter — the DES backend passes a closure
    /// reading the cluster's virtual clock, so traces carry simulated
    /// timestamps and identical schedules produce identical timelines.
    External(Arc<dyn Fn() -> u64 + Send + Sync>),
}

impl TimeSource {
    fn now_ns(&self) -> u64 {
        match self {
            // lint: sanction(wall-clock): timestamps for traces and
            // metrics; observability only, never read back by the model.
            // Virtual-time hubs use External and never reach this arm.
            // audited 2026-08.
            TimeSource::Epoch(epoch) => epoch.elapsed().as_nanos() as u64,
            TimeSource::External(f) => f(),
        }
    }
}

struct TelemetryInner {
    time: TimeSource,
    config: TelemetryConfig,
    interner: Interner,
    metrics: Metrics,
    slots: Mutex<Vec<Arc<RankSlot>>>,
}

/// Experiment-wide telemetry hub. Clones share state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("ranks", &self.inner.slots.lock().len())
            .field("config", &self.inner.config)
            .finish()
    }
}

impl Telemetry {
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Self::with_time_source(config, TimeSource::Epoch(Instant::now()))
    }

    /// A hub stamping events from an explicit [`TimeSource`] (the DES
    /// backend passes the cluster's virtual clock).
    pub fn with_time_source(config: TelemetryConfig, time: TimeSource) -> Telemetry {
        Telemetry {
            inner: Arc::new(TelemetryInner {
                time,
                config,
                interner: Interner::new(),
                metrics: Metrics::new(),
                slots: Mutex::new(Vec::new()),
            }),
        }
    }

    pub fn config(&self) -> &TelemetryConfig {
        &self.inner.config
    }

    /// Nanoseconds on this hub's time source (since creation for the
    /// wall-clock default, simulated time under DES).
    pub fn now_ns(&self) -> u64 {
        self.inner.time.now_ns()
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Create a recorder for `rank`, booking inclusive span time into
    /// `phases` (share the accumulator with the rank's `Profile` so both
    /// views agree). Each call registers a fresh ring; a relaunched rank
    /// simply registers again and its events merge by timestamp.
    pub fn recorder(&self, rank: usize, phases: Arc<PhaseAccumulator>) -> Recorder {
        let slot = Arc::new(RankSlot {
            rank: rank as u32,
            ring: EventRing::new(self.inner.config.ring_capacity),
            exclusive: PhaseAccumulator::new(),
        });
        self.inner.slots.lock().push(Arc::clone(&slot));
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                tel: Arc::clone(&self.inner),
                slot,
                phases,
            })),
        }
    }

    /// Merge every rank ring into one time-ordered snapshot.
    pub fn snapshot(&self) -> TraceSnapshot {
        let slots: Vec<Arc<RankSlot>> = self.inner.slots.lock().clone();
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut pushed = 0;
        for slot in &slots {
            dropped += slot.ring.dropped();
            pushed += slot.ring.pushed();
            for words in slot.ring.snapshot() {
                if let Some((t_ns, event)) = Event::decode(&words, &self.inner.interner) {
                    events.push(TimedEvent {
                        t_ns,
                        rank: slot.rank,
                        event,
                    });
                }
            }
        }
        events.sort_by_key(|e| (e.t_ns, e.rank));
        TraceSnapshot {
            events,
            dropped,
            pushed,
        }
    }

    /// Per-rank exclusive (self) span time, registration order.
    pub fn exclusive_phases(&self) -> Vec<(u32, Vec<(Phase, Duration)>)> {
        self.inner
            .slots
            .lock()
            .iter()
            .map(|s| (s.rank, s.exclusive.snapshot()))
            .collect()
    }
}

/// All surviving events of a run, merged across ranks and sorted by time.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    pub events: Vec<TimedEvent>,
    /// Records evicted from rings before they could be read.
    pub dropped: u64,
    /// Records ever pushed (including evicted ones).
    pub pushed: u64,
}

impl TraceSnapshot {
    /// Events of one kind, in time order.
    pub fn of_kind(&self, kind: &str) -> Vec<&TimedEvent> {
        self.events
            .iter()
            .filter(|e| e.event.kind() == kind)
            .collect()
    }

    /// Timestamp of the first event of `kind`, if any.
    pub fn first_ns(&self, kind: &str) -> Option<u64> {
        self.events
            .iter()
            .find(|e| e.event.kind() == kind)
            .map(|e| e.t_ns)
    }
}

/// One decoded event with its timestamp and originating rank.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    pub t_ns: u64,
    pub rank: u32,
    pub event: Event,
}

struct RecorderInner {
    tel: Arc<TelemetryInner>,
    slot: Arc<RankSlot>,
    phases: Arc<PhaseAccumulator>,
}

/// Per-rank recording handle. `Default`/[`Recorder::disabled`] is a no-op
/// recorder: every operation short-circuits on one branch, so layers hold a
/// `Recorder` unconditionally instead of an `Option<..>` forest.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// The no-op recorder.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Rank this recorder was registered for (`None` when disabled).
    pub fn rank(&self) -> Option<usize> {
        self.inner.as_ref().map(|i| i.slot.rank as usize)
    }

    /// Whether per-MPI-call events were requested (checked by `simmpi` so
    /// the highest-volume class can stay off by default).
    pub fn wants_mpi_calls(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.tel.config.record_mpi_calls)
    }

    /// The inclusive phase accumulator this recorder books spans into.
    pub fn phases(&self) -> Option<&Arc<PhaseAccumulator>> {
        self.inner.as_ref().map(|i| &i.phases)
    }

    /// Exclusive (self) span times booked so far.
    pub fn exclusive(&self) -> Option<&PhaseAccumulator> {
        self.inner.as_ref().map(|i| &i.slot.exclusive)
    }

    /// Record `event` now. Free when disabled; with the `events` feature
    /// off this compiles to the disabled path unconditionally.
    #[inline]
    pub fn emit(&self, event: Event) {
        #[cfg(feature = "events")]
        if let Some(inner) = &self.inner {
            let words = event.encode(inner.tel.time.now_ns(), &inner.tel.interner);
            inner.slot.ring.push(words);
        }
        #[cfg(not(feature = "events"))]
        let _ = event;
    }

    /// Like [`Recorder::emit`] but the event is only constructed when it
    /// will actually be recorded — use when building it allocates.
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> Event) {
        #[cfg(feature = "events")]
        if self.inner.is_some() {
            self.emit(f());
        }
        #[cfg(not(feature = "events"))]
        let _ = f;
    }

    /// Open a phase span; time books when the guard drops.
    pub fn span(&self, phase: Phase) -> SpanGuard {
        SpanGuard::begin(self.clone(), phase)
    }

    /// Time a closure under `phase` (span-based `Profile::time`).
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(phase);
        f()
    }

    /// Metrics registry of the owning telemetry (`None` when disabled).
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_ref().map(|i| &i.tel.metrics)
    }

    pub(crate) fn book_span(&self, phase: Phase, inclusive: Duration, exclusive: Duration) {
        if let Some(inner) = &self.inner {
            inner.phases.add(phase, inclusive);
            inner.slot.exclusive.add(phase, exclusive);
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "Recorder(rank {})", i.slot.rank),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.emit(Event::Revoke);
        rec.emit_with(|| panic!("must not be constructed"));
        let out = rec.time(Phase::AppCompute, || 7);
        assert_eq!(out, 7);
    }

    #[cfg(feature = "events")]
    #[test]
    fn snapshot_merges_ranks_in_time_order() {
        let tel = Telemetry::new(TelemetryConfig::default());
        let r0 = tel.recorder(0, Arc::new(PhaseAccumulator::new()));
        let r1 = tel.recorder(1, Arc::new(PhaseAccumulator::new()));
        r0.emit(Event::Revoke);
        r1.emit(Event::RankKilled);
        r0.emit(Event::Agree { seq: 1, flags: 0 });
        let snap = tel.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert!(snap.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(snap.pushed, 3);
        assert_eq!(snap.dropped, 0);
    }

    #[cfg(feature = "events")]
    #[test]
    fn overflow_counts_drops_in_snapshot() {
        let tel = Telemetry::new(TelemetryConfig {
            ring_capacity: 4,
            ..Default::default()
        });
        let rec = tel.recorder(0, Arc::new(PhaseAccumulator::new()));
        for i in 0..10 {
            rec.emit(Event::Agree { seq: i, flags: 0 });
        }
        let snap = tel.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        // The survivors are the newest pushes.
        let seqs: Vec<u64> = snap
            .events
            .iter()
            .map(|e| match &e.event {
                Event::Agree { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn metrics_reachable_through_recorder() {
        let tel = Telemetry::new(TelemetryConfig::default());
        let rec = tel.recorder(2, Arc::new(PhaseAccumulator::new()));
        rec.metrics().unwrap().counter("repairs").inc();
        assert_eq!(
            tel.metrics().snapshot().counters,
            vec![("repairs".into(), 1)]
        );
    }
}
