//! Span-based phase timing with nesting attribution.
//!
//! A [`SpanGuard`] (from [`crate::Recorder::span`]) times a region and books
//! it on drop:
//!
//! - **inclusive** time goes to the rank's shared [`PhaseAccumulator`] —
//!   the same totals `simmpi::Profile` exposes, so span users and legacy
//!   `profile.time(..)` callers stay comparable;
//! - **exclusive** (self) time — inclusive minus time spent in nested
//!   spans — goes to a second per-rank accumulator, giving a breakdown
//!   that sums to wall time even when phases nest (e.g. `CheckpointFn`
//!   opened inside `AppCompute`);
//! - when the `events` feature is on, `SpanBegin`/`SpanEnd` events are
//!   emitted so exporters can rebuild the interval tree per rank.
//!
//! Nesting is tracked with a thread-local stack of open frames, which is
//! correct here because a rank is an OS thread and spans are strictly
//! scoped (RAII).

use std::cell::RefCell;
use std::time::Instant;

use crate::event::Event;
use crate::phase::Phase;
use crate::Recorder;

thread_local! {
    /// Nanoseconds consumed by already-closed children of each open span.
    static OPEN_FRAMES: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII span; created by [`Recorder::span`].
pub struct SpanGuard {
    rec: Recorder,
    phase: Phase,
    t0: Instant,
}

impl SpanGuard {
    pub(crate) fn begin(rec: Recorder, phase: Phase) -> SpanGuard {
        if rec.is_enabled() {
            OPEN_FRAMES.with(|f| f.borrow_mut().push(0));
            rec.emit(Event::SpanBegin { phase });
        }
        SpanGuard {
            rec,
            phase,
            // lint: sanction(wall-clock): span timing for profiles and
            // traces; observability only, never read back by the model.
            // audited 2026-08.
            t0: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.rec.is_enabled() {
            return;
        }
        let dt = self.t0.elapsed();
        let dt_ns = dt.as_nanos() as u64;
        let child_ns = OPEN_FRAMES.with(|f| {
            let mut frames = f.borrow_mut();
            let child = frames.pop().unwrap_or(0);
            if let Some(parent) = frames.last_mut() {
                *parent += dt_ns;
            }
            child
        });
        self.rec.book_span(
            self.phase,
            dt,
            std::time::Duration::from_nanos(dt_ns.saturating_sub(child_ns)),
        );
        self.rec.emit(Event::SpanEnd { phase: self.phase });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, TelemetryConfig};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn nested_spans_attribute_exclusive_time() {
        let tel = Telemetry::new(TelemetryConfig::default());
        let acc = Arc::new(crate::PhaseAccumulator::new());
        let rec = tel.recorder(0, Arc::clone(&acc));

        {
            let _outer = rec.span(Phase::AppCompute);
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = rec.span(Phase::CheckpointFn);
                std::thread::sleep(Duration::from_millis(4));
            }
        }

        // Inclusive: outer >= 8ms (contains inner), inner >= 4ms.
        assert!(acc.get(Phase::AppCompute) >= Duration::from_millis(8));
        assert!(acc.get(Phase::CheckpointFn) >= Duration::from_millis(4));

        // Exclusive: outer self-time excludes the nested checkpoint span.
        let excl = rec.exclusive().unwrap();
        let outer_excl = excl.get(Phase::AppCompute);
        let outer_incl = acc.get(Phase::AppCompute);
        assert!(outer_excl < outer_incl);
        assert!(outer_incl - outer_excl >= Duration::from_millis(4));
        // Leaf span: exclusive == inclusive.
        assert_eq!(excl.get(Phase::CheckpointFn), acc.get(Phase::CheckpointFn));
    }

    #[test]
    fn disabled_recorder_spans_are_noops() {
        let rec = Recorder::disabled();
        let _g = rec.span(Phase::AppCompute);
        // Nothing to assert beyond "does not panic / leak frames":
        OPEN_FRAMES.with(|f| assert!(f.borrow().is_empty()));
    }

    #[cfg(feature = "events")]
    #[test]
    fn span_events_bracket_properly() {
        let tel = Telemetry::new(TelemetryConfig::default());
        let acc = Arc::new(crate::PhaseAccumulator::new());
        let rec = tel.recorder(3, acc);
        {
            let _g = rec.span(Phase::AppMpi);
        }
        let snap = tel.snapshot();
        let kinds: Vec<_> = snap.events.iter().map(|e| e.event.kind()).collect();
        assert_eq!(kinds, vec!["span_begin", "span_end"]);
        assert!(snap.events.iter().all(|e| e.rank == 3));
    }
}
