//! Typed structured events and their fixed-width ring encoding.
//!
//! Every resilience layer emits [`Event`]s: the MPI simulation (calls,
//! injected faults, ULFM revoke/agree/shrink), Fenix (failure detection,
//! repair, role transitions), VeloC (checkpoint protect/copy/flush/restart),
//! and Kokkos Resilience (region enter/capture/commit/restore). An event is
//! encoded into a single fixed-size record of `u64` words so the ring
//! buffer ([`crate::ring`]) can store it behind atomics; dynamic strings are
//! interned once per unique value in an [`Interner`] and referenced by id.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::phase::Phase;

/// Words per encoded record: timestamp, tag, and up to six payload fields.
pub const RECORD_WORDS: usize = 8;

/// Which simulated MPI entry point an [`Event::MpiCall`] refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MpiOp {
    Send,
    Recv,
    SendRecv,
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Allgather,
    Split,
}

impl MpiOp {
    pub const ALL: [MpiOp; 10] = [
        MpiOp::Send,
        MpiOp::Recv,
        MpiOp::SendRecv,
        MpiOp::Barrier,
        MpiOp::Bcast,
        MpiOp::Reduce,
        MpiOp::Allreduce,
        MpiOp::Gather,
        MpiOp::Allgather,
        MpiOp::Split,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MpiOp::Send => "send",
            MpiOp::Recv => "recv",
            MpiOp::SendRecv => "sendrecv",
            MpiOp::Barrier => "barrier",
            MpiOp::Bcast => "bcast",
            MpiOp::Reduce => "reduce",
            MpiOp::Allreduce => "allreduce",
            MpiOp::Gather => "gather",
            MpiOp::Allgather => "allgather",
            MpiOp::Split => "split",
        }
    }

    fn from_index(i: u64) -> Option<MpiOp> {
        MpiOp::ALL.get(i as usize).copied()
    }
}

/// One structured observation from some layer of the stack.
///
/// Variants are grouped by emitting layer; the failure chain a fault-
/// injected Fenix run produces is, in causal order:
/// `FaultInjected` → `RankKilled` → `FailureDetected` → `Revoke` →
/// `Agree` → `RepairBegin`/`RepairEnd` → `RoleChanged` →
/// `RestartBegin`/`RestartEnd` (or `RegionRestore`).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    // --- simmpi ---
    /// A simulated MPI entry point ran. `peer` is the remote rank for
    /// point-to-point ops, `bytes` the payload size where meaningful.
    MpiCall {
        op: MpiOp,
        peer: Option<u32>,
        bytes: u64,
    },
    /// A fault-plan site matched and is about to kill this rank.
    FaultInjected { site: String, count: u64 },
    /// This rank died (injected fault or unhandled panic).
    RankKilled,
    /// ULFM: this rank revoked the communicator.
    Revoke,
    /// ULFM: an agreement round completed with the given flag union.
    Agree { seq: u64, flags: u64 },
    /// ULFM: communicator shrunk to `survivors` live ranks.
    Shrink { survivors: u64 },

    // --- fenix ---
    /// Fenix observed a recoverable failure (detect step of the chain).
    FailureDetected { scope: String },
    /// This rank's Fenix role changed (Initial/Survivor/Recovered/Spare).
    RoleChanged { role: String },
    /// Repair rendezvous entered for recovery epoch `epoch`.
    RepairBegin { epoch: u64 },
    /// Repair finished: communicator rebuilt.
    RepairEnd {
        epoch: u64,
        survivors: u64,
        spares_left: u64,
    },
    /// A registered recovery callback ran.
    CallbackFired { name: String },

    // --- veloc ---
    /// A region of memory was registered for checkpointing.
    Protect { name: String, bytes: u64 },
    /// Checkpoint `version` of `name` started (synchronous part).
    CheckpointBegin { name: String, version: u64 },
    /// Synchronous copy to node-local scratch completed.
    CheckpointLocal {
        name: String,
        version: u64,
        bytes: u64,
    },
    /// Asynchronous scratch→PFS flush enqueued.
    FlushEnqueued { name: String, version: u64 },
    /// Asynchronous flush reached the parallel filesystem.
    FlushDone {
        name: String,
        version: u64,
        bytes: u64,
    },
    /// Restart from checkpoint `version` started.
    RestartBegin { name: String, version: u64 },
    /// Restart finished (`ok = false`: no usable checkpoint found).
    RestartEnd {
        name: String,
        version: u64,
        ok: bool,
    },

    // --- kokkos-resilience ---
    /// A resilient region was entered for iteration `iteration`.
    RegionEnter { label: String, iteration: u64 },
    /// View capture ran: `views` views totalling `bytes` selected.
    RegionCapture {
        label: String,
        views: u64,
        bytes: u64,
    },
    /// Region checkpoint committed as `version`.
    RegionCommit { label: String, version: u64 },
    /// Region state restored from `version` after a failure.
    RegionRestore { label: String, version: u64 },

    // --- spans / generic ---
    /// A phase span opened (see [`crate::span`]).
    SpanBegin { phase: Phase },
    /// A phase span closed.
    SpanEnd { phase: Phase },
    /// Free-form instant marker.
    Marker { label: String },
}

impl Event {
    /// Stable kind string used by the JSONL exporter and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::MpiCall { .. } => "mpi_call",
            Event::FaultInjected { .. } => "fault_injected",
            Event::RankKilled => "rank_killed",
            Event::Revoke => "revoke",
            Event::Agree { .. } => "agree",
            Event::Shrink { .. } => "shrink",
            Event::FailureDetected { .. } => "failure_detected",
            Event::RoleChanged { .. } => "role_changed",
            Event::RepairBegin { .. } => "repair_begin",
            Event::RepairEnd { .. } => "repair_end",
            Event::CallbackFired { .. } => "callback_fired",
            Event::Protect { .. } => "protect",
            Event::CheckpointBegin { .. } => "checkpoint_begin",
            Event::CheckpointLocal { .. } => "checkpoint_local",
            Event::FlushEnqueued { .. } => "flush_enqueued",
            Event::FlushDone { .. } => "flush_done",
            Event::RestartBegin { .. } => "restart_begin",
            Event::RestartEnd { .. } => "restart_end",
            Event::RegionEnter { .. } => "region_enter",
            Event::RegionCapture { .. } => "region_capture",
            Event::RegionCommit { .. } => "region_commit",
            Event::RegionRestore { .. } => "region_restore",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::Marker { .. } => "marker",
        }
    }

    /// Which layer of the stack emits this event.
    pub fn layer(&self) -> &'static str {
        match self {
            Event::MpiCall { .. }
            | Event::FaultInjected { .. }
            | Event::RankKilled
            | Event::Revoke
            | Event::Agree { .. }
            | Event::Shrink { .. } => "simmpi",
            Event::FailureDetected { .. }
            | Event::RoleChanged { .. }
            | Event::RepairBegin { .. }
            | Event::RepairEnd { .. }
            | Event::CallbackFired { .. } => "fenix",
            Event::Protect { .. }
            | Event::CheckpointBegin { .. }
            | Event::CheckpointLocal { .. }
            | Event::FlushEnqueued { .. }
            | Event::FlushDone { .. }
            | Event::RestartBegin { .. }
            | Event::RestartEnd { .. } => "veloc",
            Event::RegionEnter { .. }
            | Event::RegionCapture { .. }
            | Event::RegionCommit { .. }
            | Event::RegionRestore { .. } => "kokkos-resilience",
            Event::SpanBegin { .. } | Event::SpanEnd { .. } | Event::Marker { .. } => "span",
        }
    }

    /// Encode into a ring record. `t_ns` is nanoseconds since the
    /// telemetry epoch.
    pub fn encode(&self, t_ns: u64, interner: &Interner) -> [u64; RECORD_WORDS] {
        let mut w = [0u64; RECORD_WORDS];
        w[0] = t_ns;
        let s = |s: &str| interner.intern(s) as u64;
        let (tag, payload): (u64, [u64; 3]) = match self {
            Event::MpiCall { op, peer, bytes } => {
                (1, [*op as u64, peer.map_or(0, |p| p as u64 + 1), *bytes])
            }
            Event::FaultInjected { site, count } => (2, [s(site), *count, 0]),
            Event::RankKilled => (3, [0; 3]),
            Event::Revoke => (4, [0; 3]),
            Event::Agree { seq, flags } => (5, [*seq, *flags, 0]),
            Event::Shrink { survivors } => (6, [*survivors, 0, 0]),
            Event::FailureDetected { scope } => (7, [s(scope), 0, 0]),
            Event::RoleChanged { role } => (8, [s(role), 0, 0]),
            Event::RepairBegin { epoch } => (9, [*epoch, 0, 0]),
            Event::RepairEnd {
                epoch,
                survivors,
                spares_left,
            } => (10, [*epoch, *survivors, *spares_left]),
            Event::CallbackFired { name } => (11, [s(name), 0, 0]),
            Event::Protect { name, bytes } => (12, [s(name), *bytes, 0]),
            Event::CheckpointBegin { name, version } => (13, [s(name), *version, 0]),
            Event::CheckpointLocal {
                name,
                version,
                bytes,
            } => (14, [s(name), *version, *bytes]),
            Event::FlushEnqueued { name, version } => (15, [s(name), *version, 0]),
            Event::FlushDone {
                name,
                version,
                bytes,
            } => (16, [s(name), *version, *bytes]),
            Event::RestartBegin { name, version } => (17, [s(name), *version, 0]),
            Event::RestartEnd { name, version, ok } => (18, [s(name), *version, *ok as u64]),
            Event::RegionEnter { label, iteration } => (19, [s(label), *iteration, 0]),
            Event::RegionCapture {
                label,
                views,
                bytes,
            } => (20, [s(label), *views, *bytes]),
            Event::RegionCommit { label, version } => (21, [s(label), *version, 0]),
            Event::RegionRestore { label, version } => (22, [s(label), *version, 0]),
            Event::SpanBegin { phase } => (23, [*phase as u64, 0, 0]),
            Event::SpanEnd { phase } => (24, [*phase as u64, 0, 0]),
            Event::Marker { label } => (25, [s(label), 0, 0]),
        };
        w[1] = tag;
        w[2..5].copy_from_slice(&payload);
        w
    }

    /// Decode a ring record; returns `None` for unknown tags (e.g. records
    /// from a newer schema) or dangling string ids.
    pub fn decode(w: &[u64; RECORD_WORDS], interner: &Interner) -> Option<(u64, Event)> {
        let t_ns = w[0];
        let s = |id: u64| interner.resolve(id as u32);
        let event = match w[1] {
            1 => Event::MpiCall {
                op: MpiOp::from_index(w[2])?,
                peer: if w[3] == 0 {
                    None
                } else {
                    Some(w[3] as u32 - 1)
                },
                bytes: w[4],
            },
            2 => Event::FaultInjected {
                site: s(w[2])?,
                count: w[3],
            },
            3 => Event::RankKilled,
            4 => Event::Revoke,
            5 => Event::Agree {
                seq: w[2],
                flags: w[3],
            },
            6 => Event::Shrink { survivors: w[2] },
            7 => Event::FailureDetected { scope: s(w[2])? },
            8 => Event::RoleChanged { role: s(w[2])? },
            9 => Event::RepairBegin { epoch: w[2] },
            10 => Event::RepairEnd {
                epoch: w[2],
                survivors: w[3],
                spares_left: w[4],
            },
            11 => Event::CallbackFired { name: s(w[2])? },
            12 => Event::Protect {
                name: s(w[2])?,
                bytes: w[3],
            },
            13 => Event::CheckpointBegin {
                name: s(w[2])?,
                version: w[3],
            },
            14 => Event::CheckpointLocal {
                name: s(w[2])?,
                version: w[3],
                bytes: w[4],
            },
            15 => Event::FlushEnqueued {
                name: s(w[2])?,
                version: w[3],
            },
            16 => Event::FlushDone {
                name: s(w[2])?,
                version: w[3],
                bytes: w[4],
            },
            17 => Event::RestartBegin {
                name: s(w[2])?,
                version: w[3],
            },
            18 => Event::RestartEnd {
                name: s(w[2])?,
                version: w[3],
                ok: w[4] != 0,
            },
            19 => Event::RegionEnter {
                label: s(w[2])?,
                iteration: w[3],
            },
            20 => Event::RegionCapture {
                label: s(w[2])?,
                views: w[3],
                bytes: w[4],
            },
            21 => Event::RegionCommit {
                label: s(w[2])?,
                version: w[3],
            },
            22 => Event::RegionRestore {
                label: s(w[2])?,
                version: w[3],
            },
            23 => Event::SpanBegin {
                phase: Phase::from_index(w[2] as usize)?,
            },
            24 => Event::SpanEnd {
                phase: Phase::from_index(w[2] as usize)?,
            },
            25 => Event::Marker { label: s(w[2])? },
            _ => return None,
        };
        Some((t_ns, event))
    }
}

/// String interning shared by all rings of one [`crate::Telemetry`].
///
/// Event labels repeat heavily (checkpoint names, region labels, roles), so
/// each unique string is stored once and referenced by a `u32` id in the
/// encoded records. Interning takes a short uncontended lock; the ring
/// write itself stays lock-free.
#[derive(Default)]
pub struct Interner {
    inner: Mutex<InternerInner>,
}

#[derive(Default)]
struct InternerInner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `s`, allocating one on first sight.
    pub fn intern(&self, s: &str) -> u32 {
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.ids.get(s) {
            return id;
        }
        let id = inner.names.len() as u32;
        inner.names.push(s.to_string());
        inner.ids.insert(s.to_string(), id);
        id
    }

    /// The string behind `id`, if it exists.
    pub fn resolve(&self, id: u32) -> Option<String> {
        self.inner.lock().names.get(id as usize).cloned()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.inner.lock().names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups() {
        let i = Interner::new();
        let a = i.intern("heatdis");
        let b = i.intern("minimd");
        let c = i.intern("heatdis");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a).as_deref(), Some("heatdis"));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn every_variant_roundtrips() {
        let i = Interner::new();
        let events = vec![
            Event::MpiCall {
                op: MpiOp::Allreduce,
                peer: None,
                bytes: 64,
            },
            Event::MpiCall {
                op: MpiOp::Send,
                peer: Some(3),
                bytes: 1024,
            },
            Event::FaultInjected {
                site: "iter".into(),
                count: 12,
            },
            Event::RankKilled,
            Event::Revoke,
            Event::Agree { seq: 2, flags: 1 },
            Event::Shrink { survivors: 7 },
            Event::FailureDetected {
                scope: "fenix".into(),
            },
            Event::RoleChanged {
                role: "survivor".into(),
            },
            Event::RepairBegin { epoch: 1 },
            Event::RepairEnd {
                epoch: 1,
                survivors: 7,
                spares_left: 1,
            },
            Event::CallbackFired {
                name: "restore".into(),
            },
            Event::Protect {
                name: "grid".into(),
                bytes: 8192,
            },
            Event::CheckpointBegin {
                name: "heatdis".into(),
                version: 4,
            },
            Event::CheckpointLocal {
                name: "heatdis".into(),
                version: 4,
                bytes: 8192,
            },
            Event::FlushEnqueued {
                name: "heatdis".into(),
                version: 4,
            },
            Event::FlushDone {
                name: "heatdis".into(),
                version: 4,
                bytes: 8192,
            },
            Event::RestartBegin {
                name: "heatdis".into(),
                version: 4,
            },
            Event::RestartEnd {
                name: "heatdis".into(),
                version: 4,
                ok: true,
            },
            Event::RegionEnter {
                label: "main_loop".into(),
                iteration: 40,
            },
            Event::RegionCapture {
                label: "main_loop".into(),
                views: 2,
                bytes: 4096,
            },
            Event::RegionCommit {
                label: "main_loop".into(),
                version: 5,
            },
            Event::RegionRestore {
                label: "main_loop".into(),
                version: 5,
            },
            Event::SpanBegin {
                phase: Phase::CheckpointFn,
            },
            Event::SpanEnd {
                phase: Phase::CheckpointFn,
            },
            Event::Marker {
                label: "note".into(),
            },
        ];
        for (n, e) in events.into_iter().enumerate() {
            let w = e.encode(n as u64 * 10, &i);
            let (t, back) = Event::decode(&w, &i).expect("decodes");
            assert_eq!(t, n as u64 * 10);
            assert_eq!(back, e, "variant {n} must roundtrip");
        }
    }

    #[test]
    fn unknown_tag_decodes_to_none() {
        let i = Interner::new();
        let mut w = [0u64; RECORD_WORDS];
        w[1] = 999;
        assert!(Event::decode(&w, &i).is_none());
    }
}
