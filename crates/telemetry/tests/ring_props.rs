//! Property tests for the event-ring wraparound arithmetic (ISSUE
//! satellite): for any capacity and push count, the drop count is exact,
//! the survivors are precisely the newest `capacity` records in push
//! order, and no record is duplicated or torn across the capacity
//! boundary. Single-threaded, so every slot claim succeeds and the
//! overwrite-oldest bookkeeping must be *exact* — the concurrent
//! (claim-abandonment) cases are covered by the modelcheck seqlock suite
//! and the threaded tests in `src/ring.rs`.

use proptest::prelude::*;
use telemetry::event::RECORD_WORDS;
use telemetry::ring::EventRing;

/// A record whose words all carry `v`, so tearing is detectable.
fn rec(v: u64) -> [u64; RECORD_WORDS] {
    [v; RECORD_WORDS]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact drop accounting and survivor set for any (capacity, count),
    /// including counts that land exactly on, just before, and far past
    /// the capacity boundary.
    #[test]
    fn wraparound_keeps_exactly_the_newest_records(cap in 2usize..17, n in 0usize..120) {
        let r = EventRing::new(cap);
        let cap = r.capacity() as u64; // new() may round up
        for v in 0..n as u64 {
            r.push(rec(v));
        }
        let n = n as u64;
        prop_assert_eq!(r.pushed(), n);
        prop_assert_eq!(r.dropped(), n.saturating_sub(cap));

        let snap = r.snapshot();
        let survivors: Vec<u64> = snap.iter().map(|w| w[0]).collect();
        let expect: Vec<u64> = (n.saturating_sub(cap)..n).collect();
        prop_assert_eq!(survivors, expect, "survivors must be the newest {} in order", cap);
        for w in &snap {
            prop_assert!(w.iter().all(|&x| x == w[0]), "torn record: {:?}", w);
        }
    }

    /// Pushing in bursts (arbitrary split points) is indistinguishable
    /// from pushing the same sequence at once: snapshots taken between
    /// bursts never show duplicates or out-of-order records.
    #[test]
    fn interleaved_snapshots_never_duplicate_or_reorder(
        cap in 2usize..9,
        bursts in proptest::collection::vec(0usize..20, 1..6),
    ) {
        let r = EventRing::new(cap);
        let mut next = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                r.push(rec(next));
                next += 1;
            }
            let vals: Vec<u64> = r.snapshot().iter().map(|w| w[0]).collect();
            // Strictly increasing => no duplicates, no reordering.
            prop_assert!(vals.windows(2).all(|p| p[0] < p[1]), "unordered: {:?}", vals);
            // And it is a suffix of what was pushed so far.
            let start = next.saturating_sub(r.capacity() as u64);
            let expect: Vec<u64> = (start..next).collect();
            prop_assert_eq!(vals, expect);
        }
    }
}
