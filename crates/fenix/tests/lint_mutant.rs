//! Built only under `lint-mutants` (CI: `cargo test -p fenix --features
//! lint-mutants`): the seeded violation must compile and actually panic,
//! so `crates/lint/tests/mutant.rs` is testing against a live bug, not a
//! stale decoy.
#![cfg(feature = "lint-mutants")]

#[test]
fn seeded_mutant_panics_on_empty_dead_list() {
    assert_eq!(fenix::mutant::apply_repair(&[3, 1]), 3);
    let caught = std::panic::catch_unwind(|| fenix::mutant::apply_repair(&[]));
    assert!(caught.is_err(), "the seeded violation must actually panic");
}
