//! End-to-end tests of the Fenix run loop: spare promotion, roles, repair,
//! multi-failure, exhaustion policies, and normal completion.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cluster::{Cluster, ClusterConfig, TimeScale};
use fenix::{ExhaustPolicy, FenixConfig, Role};
use parking_lot::Mutex;
use simmpi::{FaultPlan, MpiResult, RankCtx, ReduceOp, Universe, UniverseConfig};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

fn launch<F>(n: usize, plan: FaultPlan, f: F) -> simmpi::LaunchReport
where
    F: Fn(&mut RankCtx) -> MpiResult<()> + Send + Sync,
{
    Universe::launch(&cluster(n), UniverseConfig::default(), Arc::new(plan), f)
}

#[test]
fn failure_free_run_finalizes_spares() {
    let body_runs = Arc::new(AtomicUsize::new(0));
    let br = Arc::clone(&body_runs);
    let report = launch(4, FaultPlan::none(), move |ctx| {
        let cfg = FenixConfig {
            spares: 1,
            on_exhaustion: ExhaustPolicy::Abort,
        };
        let br = Arc::clone(&br);
        let summary = fenix::run(ctx.world(), cfg, |_fx, comm, role| {
            assert_eq!(role, Role::Initial);
            assert_eq!(comm.size(), 3);
            br.fetch_add(1, Ordering::Relaxed);
            comm.barrier()?;
            Ok(())
        })?;
        if ctx.rank() == 3 {
            // The spare never ran the body.
            assert!(!summary.executed_body);
            assert_eq!(summary.final_role, None);
        }
        assert_eq!(summary.repairs, 0);
        Ok(())
    });
    assert!(report.all_ok(), "{:?}", report.outcomes);
    assert_eq!(body_runs.load(Ordering::Relaxed), 3);
}

#[test]
fn single_failure_promotes_spare_in_place() {
    // 4 ranks, 1 spare (global rank 3). Global rank 1 dies at iteration 2.
    // The spare must take comm rank 1; survivors keep their ranks.
    let roles_seen = Arc::new(Mutex::new(Vec::<(usize, Role, usize)>::new()));
    let rs = Arc::clone(&roles_seen);
    let report = launch(4, FaultPlan::kill_at(1, "iter", 2), move |ctx| {
        let cfg = FenixConfig {
            spares: 1,
            on_exhaustion: ExhaustPolicy::Abort,
        };
        let rs = Arc::clone(&rs);
        let me = ctx.rank();
        fenix::run(ctx.world(), cfg, |fx, comm, role| {
            rs.lock().push((me, role, comm.rank()));
            if role != Role::Initial {
                // In-place substitution: comm size unchanged, and the
                // replacement fills slot 1.
                assert_eq!(comm.size(), 3);
                assert_eq!(fx.recovered_ranks(), vec![1]);
                assert_eq!(fx.spares_remaining(), 0);
            }
            for i in 0..5u64 {
                ctx.fault_point("iter", i)?;
                let sum = comm.allreduce_scalar(1u64, ReduceOp::Sum)?;
                assert_eq!(sum, 3);
            }
            Ok(())
        })
        .map(|_| ())
    });
    assert_eq!(report.killed_ranks(), vec![1]);
    // Every non-victim rank completed.
    for o in &report.outcomes {
        if o.rank != 1 {
            assert!(o.result.is_ok(), "rank {} failed: {:?}", o.rank, o.result);
        }
    }
    let roles = roles_seen.lock();
    // Spare (global 3) re-entered as Recovered with comm rank 1.
    assert!(
        roles.contains(&(3, Role::Recovered, 1)),
        "expected spare promotion, got {roles:?}"
    );
    // Survivors re-entered as Survivor keeping their comm ranks.
    assert!(roles.contains(&(0, Role::Survivor, 0)));
    assert!(roles.contains(&(2, Role::Survivor, 2)));
}

#[test]
fn two_failures_consume_two_spares() {
    let repairs_done = Arc::new(AtomicU64::new(0));
    let rd = Arc::clone(&repairs_done);
    let report = launch(
        6,
        FaultPlan::kill_at(0, "iter", 1).and_kill(2, "iter", 3),
        move |ctx| {
            let cfg = FenixConfig {
                spares: 2,
                on_exhaustion: ExhaustPolicy::Abort,
            };
            let rd = Arc::clone(&rd);
            let summary = fenix::run(ctx.world(), cfg, |_fx, comm, _role| {
                for i in 0..6u64 {
                    ctx.fault_point("iter", i)?;
                    let sum = comm.allreduce_scalar(1u64, ReduceOp::Sum)?;
                    assert_eq!(sum, 4);
                }
                Ok(())
            })?;
            rd.fetch_max(summary.repairs, Ordering::Relaxed);
            Ok(())
        },
    );
    let mut killed = report.killed_ranks();
    killed.sort_unstable();
    assert_eq!(killed, vec![0, 2]);
    assert!(
        repairs_done.load(Ordering::Relaxed) >= 2,
        "expected at least two repairs"
    );
}

#[test]
fn exhaustion_abort_policy_aborts() {
    let report = launch(3, FaultPlan::kill_at(0, "iter", 1), |ctx| {
        let cfg = FenixConfig {
            spares: 0,
            on_exhaustion: ExhaustPolicy::Abort,
        };
        fenix::run(ctx.world(), cfg, |_fx, comm, _role| {
            for i in 0..4u64 {
                ctx.fault_point("iter", i)?;
                comm.barrier()?;
            }
            Ok(())
        })
        .map(|_| ())
    });
    assert_eq!(report.killed_ranks(), vec![0]);
    assert!(report.aborted, "exhaustion with Abort policy must abort");
}

#[test]
fn exhaustion_shrink_policy_continues_smaller() {
    let sizes_seen = Arc::new(Mutex::new(Vec::<usize>::new()));
    let ss = Arc::clone(&sizes_seen);
    let report = launch(4, FaultPlan::kill_at(1, "iter", 1), move |ctx| {
        let cfg = FenixConfig {
            spares: 0,
            on_exhaustion: ExhaustPolicy::Shrink,
        };
        let ss = Arc::clone(&ss);
        fenix::run(ctx.world(), cfg, |_fx, comm, role| {
            ss.lock().push(comm.size());
            if role == Role::Initial {
                for i in 0..4u64 {
                    ctx.fault_point("iter", i)?;
                    comm.barrier()?;
                }
            } else {
                // Shrunk continuation: 3 survivors, re-ranked contiguously.
                assert_eq!(comm.size(), 3);
                let sum = comm.allreduce_scalar(comm.rank() as u64, ReduceOp::Sum)?;
                assert_eq!(sum, 3); // 0+1+2
            }
            Ok(())
        })
        .map(|_| ())
    });
    assert_eq!(report.killed_ranks(), vec![1]);
    let sizes = sizes_seen.lock();
    assert!(sizes.contains(&4) && sizes.contains(&3), "{sizes:?}");
}

#[test]
fn spare_failure_is_tolerated() {
    // The spare itself (global 3) dies; actives complete unaffected.
    let report = launch(4, FaultPlan::kill_at(3, "spare-death", 0), |ctx| {
        if ctx.rank() == 3 {
            // Simulate the spare crashing while parked: it dies before
            // even entering fenix::run.
            ctx.fault_point("spare-death", 0)?;
        }
        let cfg = FenixConfig {
            spares: 1,
            on_exhaustion: ExhaustPolicy::Abort,
        };
        fenix::run(ctx.world(), cfg, |_fx, comm, _role| {
            comm.barrier()?;
            Ok(())
        })
        .map(|_| ())
    });
    assert_eq!(report.killed_ranks(), vec![3]);
    for o in &report.outcomes {
        if o.rank != 3 {
            assert!(o.result.is_ok(), "rank {} failed: {:?}", o.rank, o.result);
        }
    }
}

#[test]
fn survivor_state_persists_across_repair() {
    // Survivors keep local (non-checkpointed) state across the repair —
    // the property partial rollback exploits. The progress loop performs no
    // collectives because ranks resume at different points (collective
    // counts would mismatch, which is an application error under MPI).
    let report = launch(4, FaultPlan::kill_at(2, "iter", 1), |ctx| {
        let cfg = FenixConfig {
            spares: 1,
            on_exhaustion: ExhaustPolicy::Abort,
        };
        let mut local_progress = 0u64;
        fenix::run(ctx.world(), cfg, |_fx, comm, role| {
            if role == Role::Survivor {
                assert!(
                    local_progress > 0,
                    "survivor must still see pre-failure progress"
                );
            }
            if role == Role::Recovered {
                assert_eq!(local_progress, 0, "recovered rank starts fresh");
            }
            while local_progress < 4 {
                ctx.fault_point("iter", local_progress)?;
                local_progress += 1;
            }
            // One collective everyone reaches with matched counts.
            comm.barrier()?;
            Ok(())
        })
        .map(|_| ())
    });
    assert_eq!(report.killed_ranks(), vec![2]);
    for o in &report.outcomes {
        if o.rank != 2 {
            assert!(o.result.is_ok(), "rank {}: {:?}", o.rank, o.result);
        }
    }
}

#[test]
fn imr_store_restore_over_fenix() {
    use bytes::Bytes;
    use fenix::{DataGroup, ImrPolicy, ImrStore};

    // 5 ranks: 4 active (even, Pair policy), 1 spare. Rank 1 dies after
    // checkpoint v2 (committed at i=5); the recovered rank must get v2 back
    // from its buddy.
    let report = launch(5, FaultPlan::kill_at(1, "iter", 7), |ctx| {
        let cfg = FenixConfig {
            spares: 1,
            on_exhaustion: ExhaustPolicy::Abort,
        };
        let store = ImrStore::new();
        let ctx = &*ctx;
        fenix::run(ctx.world(), cfg, |fx, comm, role| {
            let group = DataGroup::new(Arc::clone(&store), comm, ImrPolicy::Pair);
            let mut start = 0u64;
            if role != Role::Initial {
                let (version, data) = group
                    .restore(0, &fx.recovered_ranks())
                    .expect("IMR restore");
                assert_eq!(version, 2);
                // Payload is the owning comm rank repeated.
                assert!(data.iter().all(|&b| b == comm.rank() as u8));
                start = version * 3;
            }
            for i in start..8 {
                ctx.fault_point("iter", i)?;
                if i % 3 == 2 {
                    let version = i / 3 + 1;
                    let payload = Bytes::from(vec![comm.rank() as u8; 64]);
                    group.store(0, version, payload)?;
                }
                comm.barrier()?;
            }
            Ok(())
        })
        .map(|_| ())
    });
    assert_eq!(report.killed_ranks(), vec![1]);
    for o in &report.outcomes {
        if o.rank != 1 {
            assert!(o.result.is_ok(), "rank {}: {:?}", o.rank, o.result);
        }
    }
}

#[test]
fn recovery_callbacks_fire_with_repair_facts() {
    use fenix::RepairInfo;
    use parking_lot::Mutex as PMutex;

    // Paper §IV: after repairing the communicator, Fenix "runs any
    // application callbacks before returning control to the application".
    let seen: Arc<PMutex<Vec<(usize, RepairInfo)>>> = Arc::new(PMutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    let report = launch(5, FaultPlan::kill_at(1, "iter", 2), move |ctx| {
        let cfg = FenixConfig {
            spares: 1,
            on_exhaustion: ExhaustPolicy::Abort,
        };
        let me = ctx.rank();
        let seen = Arc::clone(&seen2);
        let mut registered = false;
        fenix::run(ctx.world(), cfg, |fx, comm, _role| {
            if !registered {
                registered = true;
                let seen = Arc::clone(&seen);
                fx.register_callback(Box::new(move |info| {
                    seen.lock().push((me, info.clone()));
                }));
            }
            for i in 0..5u64 {
                ctx.fault_point("iter", i)?;
                comm.barrier()?;
            }
            Ok(())
        })
        .map(|_| ())
    });
    assert_eq!(report.killed_ranks(), vec![1]);
    let calls = seen.lock();
    // Survivors 0, 2, 3 registered before the failure and must each have
    // been called once. (The promoted spare registers after the repair.)
    let callers: Vec<usize> = calls.iter().map(|(r, _)| *r).collect();
    for r in [0usize, 2, 3] {
        assert!(
            callers.contains(&r),
            "rank {r} callback missing: {callers:?}"
        );
    }
    for (_, info) in calls.iter() {
        assert_eq!(info.repair_count, 1);
        assert_eq!(info.failed_global, vec![1]);
        assert_eq!(info.recovered_ranks, vec![1]);
        assert_eq!(info.resilient_size, 4);
        assert_eq!(info.spares_remaining, 0);
    }
}
