//! Fenix-style process resilience over simulated MPI-ULFM.
//!
//! Fenix's two promises (paper §IV):
//!
//! 1. **A resilient communicator** that appears to keep a consistent process
//!    pool across failures: spare ranks are held out of the communicator and
//!    substituted *in place* for failed ranks during repair, so surviving
//!    ranks keep their rank ids and the communicator keeps its size.
//! 2. **A single control-flow exit point** for failures: in C, an error
//!    handler long-jumps back to `Fenix_Init`. The Rust rendering is
//!    [`runtime::run`] — a re-entry loop. The application body is a closure;
//!    any recoverable MPI error unwinds out of it (via `?`), Fenix repairs
//!    the communicator, and the closure is invoked again with a
//!    [`runtime::Role`] describing what this rank now is (`Initial`,
//!    `Survivor`, or `Recovered`), exactly the roles of the paper's
//!    Figure 2.
//!
//! The repair protocol rides on the ULFM primitives: revoke the resilient
//! communicator, reach fault-tolerant agreement on the dead set (a
//! rendezvous all spares pre-join, which is also how blocked spares learn
//! about failures and about normal completion), rebuild the communicator,
//! and purge stale traffic.
//!
//! [`imr`] implements Fenix's In-Memory-Redundancy data interface with the
//! buddy-rank policy the paper evaluates: each rank keeps a local copy of
//! its checkpoint and stores a remote copy in a partner rank's memory.

pub mod imr;
pub mod mutant;
pub mod runtime;

pub use imr::{DataGroup, ImrError, ImrPolicy, ImrStore};
pub use runtime::{
    run, ExhaustPolicy, Fenix, FenixConfig, RecoveryCallback, RepairInfo, Role, RunSummary,
};
