//! Fenix In-Memory-Redundancy (IMR) data storage, buddy-rank policy.
//!
//! "The IMR policies benefit from process-level resiliency by storing
//! checkpoint data in the memory of other ranks … ranks form pairs and store
//! each other's checkpointed data. Local copies of checkpoints are also
//! kept, increasing memory use in exchange for quick, local recovery on
//! surviving ranks." (paper §V.A)
//!
//! The [`ImrStore`] is per-rank memory that *persists across Fenix
//! re-entries* (it lives outside the run loop, like any application state a
//! survivor keeps). A [`DataGroup`] binds the store to the current resilient
//! communicator for collective store/restore operations.
//!
//! Costs: a store is a synchronous exchange with the buddy — its time grows
//! linearly with checkpoint size but uses disjoint rank-to-rank links, so
//! aggregate IMR bandwidth *scales with the number of ranks* while the
//! parallel filesystem's does not. That contrast is the crossover the
//! paper's Figure 5 shows.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simmpi::{Comm, MpiError, MpiResult};

/// Buddy assignment policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImrPolicy {
    /// Ranks pair up by XOR (0↔1, 2↔3, …). Requires an even communicator
    /// size. This is the paper's "buddy rank policy".
    Pair,
    /// Each rank stores to its right neighbor and holds for its left
    /// neighbor (works for any size ≥ 2).
    Ring,
    /// A ring over the topology-interleaved rank order: consecutive ring
    /// positions alternate modeled nodes wherever the layout permits, so a
    /// rank's buddy lands on a *different node* and a whole-node failure no
    /// longer takes both copies. With one rank per node this degenerates to
    /// a plain ring; Pair/Ring on a multi-rank-per-node layout can pair
    /// co-located ranks (rank 0 ↔ rank 1 on the same node = zero coverage
    /// against node loss).
    Topology,
}

impl ImrPolicy {
    /// The rank that will hold `rank`'s data.
    ///
    /// Pair/Ring buddies are pure functions of rank and size. Topology
    /// buddies depend on the rank→node layout — use [`ImrPolicy::maps`];
    /// without one, Topology degenerates to its one-rank-per-node shape,
    /// a plain ring.
    pub fn holder_of(self, rank: usize, size: usize) -> usize {
        match self {
            ImrPolicy::Pair => rank ^ 1,
            ImrPolicy::Ring | ImrPolicy::Topology => (rank + 1) % size,
        }
    }

    /// The rank whose data `rank` holds. See [`ImrPolicy::holder_of`].
    pub fn source_of(self, rank: usize, size: usize) -> usize {
        match self {
            ImrPolicy::Pair => rank ^ 1,
            ImrPolicy::Ring | ImrPolicy::Topology => (rank + size - 1) % size,
        }
    }

    /// Full buddy maps for a communicator whose rank→node layout is
    /// `nodes`: returns `(holder, source)` where `holder[r]` stores `r`'s
    /// data and `source[r]` is the rank whose data `r` holds.
    pub fn maps(self, nodes: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let n = nodes.len();
        match self {
            ImrPolicy::Pair | ImrPolicy::Ring => (
                (0..n).map(|r| self.holder_of(r, n)).collect(),
                (0..n).map(|r| self.source_of(r, n)).collect(),
            ),
            ImrPolicy::Topology => {
                // The same placement helper the redundancy-store tier uses:
                // round-robin across node buckets, most-loaded node first.
                // Adjacent positions in that order sit on different nodes
                // whenever the rank counts allow it.
                let order = redstore::node_interleaved_order(nodes);
                let mut holder = vec![0usize; n];
                let mut source = vec![0usize; n];
                for (i, &r) in order.iter().enumerate() {
                    // `order` is a permutation of 0..n, so these lookups
                    // cannot miss; stay panic-free on the recovery path
                    // anyway — a malformed map must surface as a bad
                    // placement, not a dead rank.
                    let Some(&next) = order.get((i + 1) % n) else {
                        continue;
                    };
                    if let Some(h) = holder.get_mut(r) {
                        *h = next;
                    }
                    if let Some(s) = source.get_mut(next) {
                        *s = r;
                    }
                }
                (holder, source)
            }
        }
    }

    /// Default policy for a rank→node layout: Topology as soon as any node
    /// hosts two or more communicator ranks (and more than one node
    /// exists — otherwise no placement can help), else the historical
    /// parity rule (Pair when even, Ring when odd).
    pub fn auto(nodes: &[usize]) -> ImrPolicy {
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        let co_located = sorted
            .iter()
            .zip(sorted.iter().skip(1))
            .any(|(a, b)| a == b);
        let multi_node = sorted.first() != sorted.last();
        if co_located && multi_node {
            ImrPolicy::Topology
        } else if nodes.len().is_multiple_of(2) {
            ImrPolicy::Pair
        } else {
            ImrPolicy::Ring
        }
    }

    fn validate(self, size: usize) {
        assert!(size >= 2, "IMR needs at least 2 ranks");
        if self == ImrPolicy::Pair {
            assert!(
                size.is_multiple_of(2),
                "Pair policy requires an even rank count"
            );
        }
    }
}

/// IMR errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImrError {
    /// Both a member's local copy and its buddy copy are gone (e.g. a whole
    /// buddy pair failed) — IMR cannot recover this data.
    DataLost { member: u32, rank: usize },
    /// Communication failed mid-operation (recover via Fenix).
    Mpi(MpiError),
}

impl From<MpiError> for ImrError {
    fn from(e: MpiError) -> Self {
        ImrError::Mpi(e)
    }
}

impl std::fmt::Display for ImrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImrError::DataLost { member, rank } => {
                write!(f, "IMR member {member} of rank {rank} unrecoverable")
            }
            ImrError::Mpi(e) => write!(f, "IMR communication failed: {e}"),
        }
    }
}

impl std::error::Error for ImrError {}

/// Decode the 8-byte little-endian version prefix of a restore payload.
///
/// A short payload means the peer sent a malformed frame; that is a
/// transport-level fault the recovering rank must survive, not panic on.
fn version_header(payload: &[u8]) -> Result<u64, ImrError> {
    if payload.len() < 8 {
        return Err(ImrError::Mpi(MpiError::TypeMismatch {
            expected: 8,
            got: payload.len(),
        }));
    }
    let mut head = [0u8; 8];
    head.copy_from_slice(&payload[..8]);
    Ok(u64::from_le_bytes(head))
}

#[derive(Clone, Debug)]
struct Held {
    owner: usize,
    version: u64,
    data: Bytes,
}

/// Per-rank IMR memory. Create it *outside* the Fenix run loop so survivor
/// copies persist across repairs.
#[derive(Default)]
pub struct ImrStore {
    /// member id → this rank's own latest committed data.
    own: Mutex<HashMap<u32, (u64, Bytes)>>,
    /// member id → the buddy data this rank holds.
    held: Mutex<HashMap<u32, Held>>,
}

impl ImrStore {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// This rank's latest committed copy of a member.
    pub fn own(&self, member: u32) -> Option<(u64, Bytes)> {
        self.own.lock().get(&member).cloned()
    }

    /// Latest committed version of a member, if any.
    pub fn latest_version(&self, member: u32) -> Option<u64> {
        self.own.lock().get(&member).map(|(v, _)| *v)
    }

    /// Total bytes resident (own + held) — IMR's memory-overhead figure.
    pub fn resident_bytes(&self) -> usize {
        let own: usize = self.own.lock().values().map(|(_, b)| b.len()).sum();
        let held: usize = self.held.lock().values().map(|h| h.data.len()).sum();
        own + held
    }

    /// Drop everything (a recovered rank starts empty anyway; tests).
    pub fn clear(&self) {
        self.own.lock().clear();
        self.held.lock().clear();
    }

    /// Chaos hook: silently flip the last byte of the buddy copy this rank
    /// holds for `member`, as a bit-rotted partner store would. Returns
    /// `false` when nothing is held. IMR itself ships bytes verbatim —
    /// integrity is the payload framing's job — so the damage must surface
    /// at restore-unpack on the recovering rank, never as a panic.
    pub fn tamper_held(&self, member: u32) -> bool {
        let mut held = self.held.lock();
        match held.get_mut(&member) {
            Some(h) if !h.data.is_empty() => {
                let mut out = h.data.to_vec();
                let last = out.len() - 1;
                out[last] ^= 0xFF;
                h.data = Bytes::from(out);
                true
            }
            _ => false,
        }
    }
}

const IMR_TAG_BASE: u64 = 0x0100_0000;

/// A data group bound to the current resilient communicator.
pub struct DataGroup<'a> {
    comm: &'a Comm,
    policy: ImrPolicy,
    store: Arc<ImrStore>,
    /// `holder[r]` stores rank `r`'s data; `source[r]` is the rank whose
    /// data `r` holds. Fixed at construction — for [`ImrPolicy::Topology`]
    /// they derive from the communicator's rank→node layout.
    holder: Vec<usize>,
    source: Vec<usize>,
}

impl<'a> DataGroup<'a> {
    pub fn new(store: Arc<ImrStore>, comm: &'a Comm, policy: ImrPolicy) -> Self {
        policy.validate(comm.size());
        let nodes = redstore::comm_node_map(comm);
        let (holder, source) = policy.maps(&nodes);
        DataGroup {
            comm,
            policy,
            store,
            holder,
            source,
        }
    }

    pub fn policy(&self) -> ImrPolicy {
        self.policy
    }

    /// The rank holding `rank`'s data under this group's buddy map.
    /// Out-of-range ranks map to themselves (no remote copy).
    pub fn holder_of(&self, rank: usize) -> usize {
        self.holder.get(rank).copied().unwrap_or(rank)
    }

    fn tag(member: u32, leg: u64) -> u64 {
        IMR_TAG_BASE | (leg << 32) | member as u64
    }

    /// Collectively commit `data` as `member`'s checkpoint at `version`.
    /// Every rank of the communicator must call with its own data: the local
    /// copy is kept and a remote copy is exchanged with the buddy.
    ///
    /// The commit is two-phase (Fenix's `data_commit`): the exchange happens
    /// first, then a fault-tolerant agreement decides — identically on every
    /// survivor — whether the version is committed. A failure during the
    /// store therefore leaves *every* rank on the previous committed
    /// version, never a mix.
    pub fn store(&self, member: u32, version: u64, data: Bytes) -> MpiResult<()> {
        let me = self.comm.rank();
        let out_of_range = |rank: usize| MpiError::RankOutOfRange {
            rank,
            size: self.holder.len(),
        };
        let to = self.holder.get(me).copied().ok_or(out_of_range(me))?;
        let from = self.source.get(me).copied().ok_or(out_of_range(me))?;

        // Phase 1: exchange. My data goes to my holder; I receive my
        // source's data. Nothing is committed yet.
        let exchange = (|| -> MpiResult<Bytes> {
            self.comm
                .send_bytes(to, Self::tag(member, 0), data.clone())?;
            let (buddy_data, _) = self.comm.recv_bytes(Some(from), Self::tag(member, 0))?;
            Ok(buddy_data)
        })();
        match &exchange {
            // This rank is going down or the job is aborting: unwind now —
            // the agreement below would never complete.
            Err(MpiError::Killed) => return Err(MpiError::Killed),
            Err(MpiError::Aborted) => return Err(MpiError::Aborted),
            // Recoverable failures and local argument errors still reach the
            // agreement: every survivor must learn the commit is off.
            Ok(_)
            | Err(MpiError::ProcFailed { .. })
            | Err(MpiError::Revoked)
            | Err(MpiError::RankOutOfRange { .. })
            | Err(MpiError::TypeMismatch { .. }) => {}
        }

        // Phase 2: agree on commit. The agreement value is identical on all
        // survivors, so either everyone commits or nobody does. The sequence
        // number mixes in the member id so concurrent members cannot collide.
        let seq = ((member as u64) << 48) | (version & 0xffff_ffff_ffff);
        let outcome = self.comm.agree(seq, exchange.is_ok() as u64)?;
        if outcome.flags & 1 == 1 && outcome.failed.is_empty() {
            match exchange {
                Ok(buddy_data) => {
                    self.store.own.lock().insert(member, (version, data));
                    self.store.held.lock().insert(
                        member,
                        Held {
                            owner: from,
                            version,
                            data: buddy_data,
                        },
                    );
                    Ok(())
                }
                // Agreed flags imply every rank's exchange succeeded; if ours
                // did not, the agreement is stale — surface the failure it
                // missed rather than panic the rank mid-commit.
                Err(e) => Err(e),
            }
        } else {
            match exchange {
                Err(e) => Err(e),
                Ok(_) => Err(MpiError::ProcFailed {
                    ranks: outcome.failed,
                }),
            }
        }
    }

    /// Collectively restore `member` after a repair.
    ///
    /// `recovered` is the list of resilient-communicator ranks that were
    /// just replaced by spares ([`crate::Fenix::recovered_ranks`]). Survivors
    /// recover from their local copy instantly; each recovered rank receives
    /// its lost data from the rank holding it, and redundancy is then
    /// re-established under the current buddy maps with a full exchange.
    ///
    /// Holder discovery is possession-based (an allgather of each rank's
    /// held-owner), not map-based: a repair can move replacement ranks onto
    /// different nodes, which shifts [`ImrPolicy::Topology`] maps away from
    /// the ones the data was stored under. The closing exchange is what
    /// brings the store back in line with the recomputed maps.
    ///
    /// Every rank of the communicator must call with the same `recovered`
    /// list. Fails with [`ImrError::DataLost`] when a recovered rank's
    /// holder was also replaced.
    pub fn restore(&self, member: u32, recovered: &[usize]) -> Result<(u64, Bytes), ImrError> {
        let me = self.comm.rank();

        // Whose data does each rank actually hold? Replacements report -1:
        // their stores are empty (and must not shadow a survivor's claim).
        let claim: i64 = if recovered.contains(&me) {
            -1
        } else {
            self.store
                .held
                .lock()
                .get(&member)
                .map_or(-1, |h| h.owner as i64)
        };
        let owners = self.comm.allgather(&[claim]).map_err(ImrError::from)?;
        let holder_of = |q: usize| owners.iter().position(|&o| o == q as i64);

        // Feasibility check is deterministic — the gathered view is
        // identical everywhere, so every rank reaches the same verdict.
        for &q in recovered {
            if holder_of(q).is_none() {
                return Err(ImrError::DataLost { member, rank: q });
            }
        }

        // Sends first (buffered), then receives: no ordering deadlock.
        for &q in recovered {
            if holder_of(q) == Some(me) && me != q {
                let held = self.store.held.lock().get(&member).cloned();
                let held = held.ok_or(ImrError::DataLost { member, rank: q })?;
                debug_assert_eq!(held.owner, q, "held data owner mismatch");
                let mut payload = Vec::with_capacity(8 + held.data.len());
                payload.extend_from_slice(&held.version.to_le_bytes());
                payload.extend_from_slice(&held.data);
                self.comm
                    .send_bytes(q, Self::tag(member, 1), Bytes::from(payload))
                    .map_err(ImrError::from)?;
            }
        }

        let (version, data) = if recovered.contains(&me) {
            // Feasibility was checked above; losing the holder between the
            // gather and here is a data-lost condition, not a panic.
            let holder = holder_of(me).ok_or(ImrError::DataLost { member, rank: me })?;
            let (payload, _) = self
                .comm
                .recv_bytes(Some(holder), Self::tag(member, 1))
                .map_err(ImrError::from)?;
            let version = version_header(&payload)?;
            let data = payload.slice(8..);
            self.store
                .own
                .lock()
                .insert(member, (version, data.clone()));
            (version, data)
        } else {
            // Survivor: local copy is authoritative (this is IMR's "quick,
            // local recovery on surviving ranks").
            self.store
                .own
                .lock()
                .get(&member)
                .cloned()
                .ok_or(ImrError::DataLost { member, rank: me })?
        };

        // Re-establish redundancy under the *current* maps: every rank's
        // copy moves to its present-day holder, restoring the placement the
        // repair may have disturbed.
        let out_of_range = |rank: usize| {
            ImrError::Mpi(MpiError::RankOutOfRange {
                rank,
                size: self.holder.len(),
            })
        };
        let to = self.holder.get(me).copied().ok_or(out_of_range(me))?;
        let mut payload = Vec::with_capacity(8 + data.len());
        payload.extend_from_slice(&version.to_le_bytes());
        payload.extend_from_slice(&data);
        self.comm
            .send_bytes(to, Self::tag(member, 2), Bytes::from(payload))
            .map_err(ImrError::from)?;
        let source = self.source.get(me).copied().ok_or(out_of_range(me))?;
        let (payload, _) = self
            .comm
            .recv_bytes(Some(source), Self::tag(member, 2))
            .map_err(ImrError::from)?;
        let sversion = version_header(&payload)?;
        self.store.held.lock().insert(
            member,
            Held {
                owner: source,
                version: sversion,
                data: payload.slice(8..),
            },
        );

        Ok((version, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_header_decodes_and_rejects_short_frames() {
        let mut payload = 7u64.to_le_bytes().to_vec();
        payload.extend_from_slice(b"xyz");
        assert_eq!(version_header(&payload).unwrap(), 7);
        assert!(matches!(
            version_header(&payload[..5]),
            Err(ImrError::Mpi(MpiError::TypeMismatch {
                expected: 8,
                got: 5
            }))
        ));
    }

    #[test]
    fn pair_policy_is_involutive() {
        for n in [2usize, 4, 8] {
            for r in 0..n {
                let h = ImrPolicy::Pair.holder_of(r, n);
                assert_eq!(ImrPolicy::Pair.holder_of(h, n), r);
                assert_eq!(ImrPolicy::Pair.source_of(r, n), h);
            }
        }
    }

    #[test]
    fn ring_policy_covers_all_ranks() {
        let n = 5;
        let mut held_by: Vec<usize> = (0..n).map(|r| ImrPolicy::Ring.holder_of(r, n)).collect();
        held_by.sort_unstable();
        assert_eq!(held_by, (0..n).collect::<Vec<_>>());
        for r in 0..n {
            let h = ImrPolicy::Ring.holder_of(r, n);
            assert_eq!(ImrPolicy::Ring.source_of(h, n), r);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn pair_rejects_odd_sizes() {
        ImrPolicy::Pair.validate(3);
    }

    #[test]
    fn topology_buddies_cross_nodes_when_the_layout_permits() {
        // Two nodes × two ranks: Pair would co-locate (0↔1 on node 0,
        // 2↔3 on node 1) — exactly the layouts where Topology must differ.
        let nodes = [0usize, 0, 1, 1];
        let (holder, source) = ImrPolicy::Topology.maps(&nodes);
        let mut holders = holder.clone();
        holders.sort_unstable();
        assert_eq!(holders, vec![0, 1, 2, 3], "holder map is a permutation");
        for r in 0..nodes.len() {
            assert_ne!(
                nodes[r], nodes[holder[r]],
                "rank {r}'s buddy must sit on another node"
            );
            assert_eq!(source[holder[r]], r, "holder/source maps are inverse");
        }
    }

    #[test]
    fn topology_balanced_layouts_never_colocate() {
        for (n_nodes, rpn) in [(2usize, 2usize), (2, 3), (3, 2), (4, 2), (3, 3)] {
            let nodes: Vec<usize> = (0..n_nodes * rpn).map(|r| r / rpn).collect();
            let (holder, _) = ImrPolicy::Topology.maps(&nodes);
            for (r, &h) in holder.iter().enumerate() {
                assert_ne!(nodes[r], nodes[h], "{n_nodes}x{rpn}: rank {r} → {h}");
            }
        }
    }

    #[test]
    fn auto_picks_topology_only_for_multi_rank_nodes() {
        assert_eq!(ImrPolicy::auto(&[0, 1, 2, 3]), ImrPolicy::Pair);
        assert_eq!(ImrPolicy::auto(&[0, 1, 2]), ImrPolicy::Ring);
        assert_eq!(ImrPolicy::auto(&[0, 0, 1, 1]), ImrPolicy::Topology);
        assert_eq!(ImrPolicy::auto(&[0, 0, 0, 1]), ImrPolicy::Topology);
        // All ranks on one node: no placement helps — historical rule.
        assert_eq!(ImrPolicy::auto(&[0, 0, 0, 0]), ImrPolicy::Pair);
    }

    #[test]
    fn store_tracks_versions_and_bytes() {
        let s = ImrStore::new();
        assert_eq!(s.latest_version(0), None);
        s.own.lock().insert(0, (3, Bytes::from_static(b"abc")));
        assert_eq!(s.latest_version(0), Some(3));
        assert_eq!(s.resident_bytes(), 3);
        s.clear();
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn tamper_held_flips_exactly_one_byte() {
        let s = ImrStore::new();
        assert!(!s.tamper_held(0), "nothing held yet");
        s.held.lock().insert(
            0,
            Held {
                owner: 1,
                version: 2,
                data: Bytes::from_static(b"abc"),
            },
        );
        assert!(s.tamper_held(0));
        let got = s.held.lock().get(&0).cloned().map(|h| h.data);
        assert_eq!(got.as_deref(), Some(&[b'a', b'b', b'c' ^ 0xFF][..]));
    }
}
