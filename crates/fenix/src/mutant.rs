//! Seeded protocol violations, compiled only under the `lint-mutants`
//! feature (the static-analysis analogue of telemetry's `mc-mutants`).
//!
//! `crates/lint/tests/mutant.rs` proves the analyzer catches the violation
//! below *transitively* — the panic site lives in a helper, not in the
//! entry point — and that it stays invisible without the opt-in, so the
//! default workspace scan remains clean.

/// A recovery entry point by name (`apply_repair` roots the `panic-reach`
/// traversal) that reaches a panic site only through [`rebuild_group`].
#[cfg(feature = "lint-mutants")]
pub fn apply_repair(dead: &[usize]) -> usize {
    rebuild_group(dead)
}

/// BUG (on purpose): panics on an empty dead list — exactly the class of
/// failure-during-recovery the paper's layering must exclude.
#[cfg(feature = "lint-mutants")]
fn rebuild_group(dead: &[usize]) -> usize {
    *dead.first().unwrap()
}
