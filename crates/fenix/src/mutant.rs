//! Seeded protocol violations, compiled only under the `lint-mutants`
//! feature (the static-analysis analogue of telemetry's `mc-mutants`).
//!
//! `crates/lint/tests/mutant.rs` proves the analyzer catches the violation
//! below *transitively* — the panic site lives in a helper, not in the
//! entry point — and that it stays invisible without the opt-in, so the
//! default workspace scan remains clean.

/// A recovery entry point by name (`apply_repair` roots the `panic-reach`
/// traversal) that reaches a panic site only through [`rebuild_group`].
#[cfg(feature = "lint-mutants")]
pub fn apply_repair(dead: &[usize]) -> usize {
    rebuild_group(dead)
}

/// BUG (on purpose): panics on an empty dead list — exactly the class of
/// failure-during-recovery the paper's layering must exclude.
#[cfg(feature = "lint-mutants")]
fn rebuild_group(dead: &[usize]) -> usize {
    *dead.first().unwrap()
}

/// BUG (on purpose): revokes the communicator with no preceding failure
/// detection (`is_recoverable`/`failed_ranks`) — the ULFM recovery order
/// is detect → revoke → agree/shrink, so `protocol-typestate` must flag
/// the revoke as illegal from the `live` state.
#[cfg(feature = "lint-mutants")]
pub fn revoke_without_detect(comm: &simmpi::Comm) {
    comm.revoke();
}

/// BUG (on purpose): only the root rank enters the barrier — the classic
/// unmatched collective `collective-match` must flag. Every other rank
/// falls through and the root blocks forever.
#[cfg(feature = "lint-mutants")]
pub fn lopsided_barrier(comm: &simmpi::Comm) {
    if comm.rank() == 0 {
        comm.barrier().ok();
    }
}
