//! The Fenix run loop: spare-rank management, repair, and role tracking.

use std::cell::{Cell, RefCell};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use simmpi::rendezvous::{purpose, RendezvousKey};
use simmpi::router::Router;
use simmpi::{Comm, MpiError, MpiResult};
use telemetry::{Event, Recorder};

/// What a rank is, as seen by the application on (re-)entry — the rank
/// states of the paper's Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// First entry; no failure has been recovered yet.
    Initial,
    /// This rank was active when a failure occurred elsewhere; its memory
    /// (including in-progress data) is intact.
    Survivor,
    /// This rank was a spare and has just been substituted for a failed
    /// rank; it has no application state and must restore from a checkpoint.
    Recovered,
}

/// What to do when a failure occurs and no spares remain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExhaustPolicy {
    /// Abort the job (Fenix's default).
    Abort,
    /// Continue with a shrunk resilient communicator; rank ids are
    /// reassigned and the application must cope (paper §IV: requires
    /// updating cached rank ids in Kokkos Resilience and VeloC).
    Shrink,
}

/// Fenix initialization options.
#[derive(Clone, Copy, Debug)]
pub struct FenixConfig {
    /// Number of world ranks held out as spares (the highest ranks).
    pub spares: usize,
    pub on_exhaustion: ExhaustPolicy,
}

impl Default for FenixConfig {
    fn default() -> Self {
        FenixConfig {
            spares: 1,
            on_exhaustion: ExhaustPolicy::Abort,
        }
    }
}

/// Outcome of a completed [`run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// How many repairs this rank participated in.
    pub repairs: u64,
    /// Whether this rank ever executed the application body.
    pub executed_body: bool,
    /// The rank's final role (`None` if it remained an unused spare).
    pub final_role: Option<Role>,
}

/// Information handed to recovery callbacks after a repair.
#[derive(Clone, Debug)]
pub struct RepairInfo {
    /// Repairs completed so far (including this one).
    pub repair_count: u64,
    /// Global ranks known dead after this repair.
    pub failed_global: Vec<usize>,
    /// Resilient-communicator ranks replaced by spares in this repair.
    pub recovered_ranks: Vec<usize>,
    /// Size of the repaired resilient communicator.
    pub resilient_size: usize,
    /// Spares still available.
    pub spares_remaining: usize,
}

/// A recovery callback (paper §IV: Fenix "runs any application callbacks
/// before returning control to the application").
pub type RecoveryCallback = Box<dyn FnMut(&RepairInfo) + Send>;

/// Handle to the Fenix runtime state, passed to the application body.
pub struct Fenix {
    world: Comm,
    config: FenixConfig,
    repair_count: Cell<u64>,
    /// Global ranks currently filling the resilient communicator's slots.
    active_group: RefCell<Vec<usize>>,
    /// Unconsumed spares, lowest first.
    spare_pool: RefCell<VecDeque<usize>>,
    /// Resilient-communicator ranks replaced in the most recent repair
    /// (needed by IMR restore and partial-rollback logic).
    last_recovered: RefCell<Vec<usize>>,
    /// Failures already handled by earlier repairs. The rendezvous reports
    /// the *full* dead history; only previously unseen failures (or explicit
    /// repair votes) trigger another repair — otherwise a finalize after a
    /// recovery would re-repair forever. Updated only from agreed rendezvous
    /// outcomes, so it stays identical on every rank.
    known_dead: RefCell<HashSet<usize>>,
    /// Application recovery callbacks (`Fenix_Callback_register`), invoked
    /// after every repair, before the body re-runs.
    callbacks: RefCell<Vec<RecoveryCallback>>,
}

/// Repair-rendezvous contributions.
const VOTE_FINALIZE: u8 = 0;
const VOTE_REPAIR: u8 = 1;
const VOTE_SPARE: u8 = 2;

/// Base id for resilient communicators, shared by all ranks.
const FENIX_COMM_SALT: u64 = 0xFE21;

impl Fenix {
    fn new(world: &Comm, config: FenixConfig) -> Self {
        let n = world.size();
        assert!(
            config.spares < n,
            "need at least one non-spare rank ({} spares of {} ranks)",
            config.spares,
            n
        );
        let n_active = n - config.spares;
        Fenix {
            world: world.clone(),
            config,
            repair_count: Cell::new(0),
            active_group: RefCell::new((0..n_active).map(|r| world.global_of(r)).collect()),
            spare_pool: RefCell::new((n_active..n).map(|r| world.global_of(r)).collect()),
            last_recovered: RefCell::new(Vec::new()),
            known_dead: RefCell::new(HashSet::new()),
            callbacks: RefCell::new(Vec::new()),
        }
    }

    /// Register a recovery callback (`Fenix_Callback_register`): invoked on
    /// this rank after each repair completes, with the repair's facts,
    /// before the application body re-runs. Callbacks persist across
    /// repairs; registering the same logic twice runs it twice.
    pub fn register_callback(&self, cb: RecoveryCallback) {
        self.callbacks.borrow_mut().push(cb);
    }

    fn fire_callbacks(&self) {
        let info = RepairInfo {
            repair_count: self.repair_count.get(),
            failed_global: {
                let mut v: Vec<usize> = self.known_dead.borrow().iter().copied().collect();
                v.sort_unstable();
                v
            },
            recovered_ranks: self.last_recovered.borrow().clone(),
            resilient_size: self.active_group.borrow().len(),
            spares_remaining: self.spare_pool.borrow().len(),
        };
        let rec = self.recorder();
        for (i, cb) in self.callbacks.borrow_mut().iter_mut().enumerate() {
            rec.emit_with(|| Event::CallbackFired {
                name: format!("callback{i}"),
            });
            cb(&info);
        }
    }

    /// Number of repairs performed so far.
    pub fn repair_count(&self) -> u64 {
        self.repair_count.get()
    }

    /// Spares not yet consumed.
    pub fn spares_remaining(&self) -> usize {
        self.spare_pool.borrow().len()
    }

    /// Resilient-communicator ranks that were replaced by spares in the most
    /// recent repair.
    pub fn recovered_ranks(&self) -> Vec<usize> {
        self.last_recovered.borrow().clone()
    }

    /// The size of the current resilient communicator.
    pub fn resilient_size(&self) -> usize {
        self.active_group.borrow().len()
    }

    fn router(&self) -> &Arc<Router> {
        self.world.router()
    }

    fn recorder(&self) -> Recorder {
        self.router().recorder(self.world.my_global())
    }

    fn build_resilient_comm(&self) -> Comm {
        let id = Router::derive_comm_id(
            self.world.id(),
            FENIX_COMM_SALT.wrapping_add(self.repair_count.get()),
        );
        Comm::from_group(
            Arc::clone(self.router()),
            id,
            0,
            Arc::new(self.active_group.borrow().clone()),
            self.world.my_global(),
        )
    }

    fn is_active(&self) -> bool {
        self.active_group.borrow().contains(&self.world.my_global())
    }

    /// Join the repair rendezvous for the current epoch with a vote.
    /// Returns `Ok(None)` for normal completion (finalize), or
    /// `Ok(Some(dead))` when a repair must be applied.
    fn repair_rendezvous(&self, vote: u8) -> MpiResult<Option<Vec<usize>>> {
        let key = RendezvousKey {
            comm: self.world.id(),
            epoch: self.world.epoch(),
            purpose: purpose::FENIX,
            seq: self.repair_count.get(),
        };
        let outcome = self.router().rendezvous(
            key,
            self.world.my_global(),
            self.world.group(),
            Bytes::copy_from_slice(&[vote]),
            |parts| {
                let any_repair = parts.iter().any(|(_, b)| b.first() == Some(&VOTE_REPAIR));
                Bytes::copy_from_slice(&[if any_repair {
                    VOTE_REPAIR
                } else {
                    VOTE_FINALIZE
                }])
            },
        )?;
        // The rendezvous *is* the agreement step of the failure chain.
        self.recorder().emit_with(|| Event::Agree {
            seq: self.repair_count.get(),
            flags: outcome.value.first().copied().unwrap_or(0) as u64,
        });
        let repair_voted = outcome.value.first() == Some(&VOTE_REPAIR);
        let any_new_dead = {
            let known = self.known_dead.borrow();
            outcome.failures_observed.iter().any(|r| !known.contains(r))
        };
        if repair_voted || any_new_dead {
            self.recorder().emit_with(|| Event::FailureDetected {
                scope: if repair_voted { "voted" } else { "observed" }.to_string(),
            });
            Ok(Some(outcome.failures_observed))
        } else {
            Ok(None)
        }
    }

    /// Apply a repair given the agreed dead set (full history of dead global
    /// ranks — deterministic and identical on every rank).
    fn apply_repair(&self, dead: &[usize]) -> MpiResult<()> {
        let rec = self.recorder();
        rec.emit_with(|| Event::RepairBegin {
            epoch: self.repair_count.get(),
        });
        let old_id = Router::derive_comm_id(
            self.world.id(),
            FENIX_COMM_SALT.wrapping_add(self.repair_count.get()),
        );

        {
            let mut spares = self.spare_pool.borrow_mut();
            spares.retain(|g| !dead.contains(g));
            let mut group = self.active_group.borrow_mut();
            let mut recovered = Vec::new();
            for (slot, member) in group.iter_mut().enumerate() {
                if dead.contains(member) {
                    if let Some(spare) = spares.pop_front() {
                        *member = spare;
                        recovered.push(slot);
                    }
                }
            }
            // Any slot still dead means spares ran out.
            let exhausted = group.iter().any(|g| dead.contains(g));
            if exhausted {
                match self.config.on_exhaustion {
                    ExhaustPolicy::Abort => {
                        self.router().abort();
                        return Err(MpiError::Aborted);
                    }
                    ExhaustPolicy::Shrink => {
                        group.retain(|g| !dead.contains(g));
                        // Rank ids shifted; recovered slots are stale.
                        recovered.clear();
                    }
                }
            }
            *self.last_recovered.borrow_mut() = recovered;
        }

        self.known_dead.borrow_mut().extend(dead.iter().copied());
        self.repair_count.set(self.repair_count.get() + 1);
        // Stale traffic on the retired communicator must not accumulate.
        self.router().purge_comm(old_id, 0);
        rec.emit_with(|| Event::RepairEnd {
            epoch: self.repair_count.get(),
            survivors: self.active_group.borrow().len() as u64,
            spares_left: self.spare_pool.borrow().len() as u64,
        });
        Ok(())
    }
}

/// Run an application body under Fenix process resilience — the equivalent
/// of the paper's `Fenix_Init` … `Fenix_Finalize` bracket (Figure 2).
///
/// The world communicator is split into `world.size() - config.spares`
/// active ranks (which execute `body` on a resilient communicator) and
/// spares (which block inside this call until promoted or until the job
/// completes). On a recoverable failure, `body` unwinds with the error,
/// Fenix repairs the resilient communicator by substituting spares in place,
/// and `body` re-runs with `Role::Survivor` / `Role::Recovered`.
///
/// `body` receives the [`Fenix`] handle, the current resilient communicator,
/// and this rank's role. It must propagate MPI errors with `?` — swallowing
/// them defeats failure detection.
pub fn run<F>(world: &Comm, config: FenixConfig, mut body: F) -> MpiResult<RunSummary>
where
    F: FnMut(&Fenix, &Comm, Role) -> MpiResult<()>,
{
    let fenix = Fenix::new(world, config);
    let mut role = Role::Initial;
    let mut executed_body = false;
    let mut final_role = None;

    loop {
        if fenix.is_active() {
            let res_comm = fenix.build_resilient_comm();
            executed_body = true;
            final_role = Some(role);
            match body(&fenix, &res_comm, role) {
                Ok(()) => {
                    // Normal completion: vote to finalize. A concurrent
                    // failure turns this into a repair and the body re-runs
                    // (its work loop finds nothing left to do and returns).
                    match fenix.repair_rendezvous(VOTE_FINALIZE)? {
                        None => {
                            return Ok(RunSummary {
                                repairs: fenix.repair_count(),
                                executed_body,
                                final_role,
                            })
                        }
                        Some(dead) => {
                            fenix.apply_repair(&dead)?;
                            fenix.fire_callbacks();
                            role = Role::Survivor;
                            fenix.recorder().emit_with(|| Event::RoleChanged {
                                role: "survivor".to_string(),
                            });
                        }
                    }
                }
                Err(e) if e.is_recoverable() => {
                    // The single control-flow exit point: detect, propagate
                    // failure knowledge (revoke), agree, repair, re-enter.
                    fenix.recorder().emit_with(|| Event::FailureDetected {
                        scope: e.to_string(),
                    });
                    res_comm.revoke();
                    match fenix.repair_rendezvous(VOTE_REPAIR)? {
                        Some(dead) => {
                            fenix.apply_repair(&dead)?;
                            fenix.fire_callbacks();
                            role = Role::Survivor;
                            fenix.recorder().emit_with(|| Event::RoleChanged {
                                role: "survivor".to_string(),
                            });
                        }
                        None => unreachable!("a REPAIR vote cannot yield finalize"),
                    }
                }
                Err(e) => return Err(e),
            }
        } else {
            // Spare: park in the repair rendezvous. Wakes on failure (to be
            // promoted or keep waiting) or on normal completion.
            match fenix.repair_rendezvous(VOTE_SPARE)? {
                None => {
                    return Ok(RunSummary {
                        repairs: fenix.repair_count(),
                        executed_body,
                        final_role,
                    })
                }
                Some(dead) => {
                    fenix.apply_repair(&dead)?;
                    fenix.fire_callbacks();
                    if fenix.is_active() {
                        role = Role::Recovered;
                        fenix.recorder().emit_with(|| Event::RoleChanged {
                            role: "recovered".to_string(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_has_one_spare() {
        let c = FenixConfig::default();
        assert_eq!(c.spares, 1);
        assert_eq!(c.on_exhaustion, ExhaustPolicy::Abort);
    }

    #[test]
    fn roles_are_distinct() {
        assert_ne!(Role::Initial, Role::Survivor);
        assert_ne!(Role::Survivor, Role::Recovered);
    }
}
