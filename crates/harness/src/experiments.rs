//! Shared experiment drivers.

use std::sync::Arc;

use apps::{Heatdis, MiniMd};
use cluster::{Cluster, ClusterConfig, TimeScale};
use resilience::{run_experiment, ExperimentConfig, IterativeApp, RunRecord, Strategy};
use simmpi::FaultPlan;
use telemetry::{Json, Telemetry};

/// A no-failure/with-failure pair of averaged runs for one configuration —
/// the paper's protocol: "Each tested application is run four times, twice
/// with failure and twice without. The times are averaged."
#[derive(Clone, Debug)]
pub struct PairedRuns {
    pub strategy: Strategy,
    pub no_failure: RunRecord,
    pub with_failure: Option<RunRecord>,
}

impl PairedRuns {
    /// The paper's "failure cost": wall-time difference.
    pub fn failure_cost_secs(&self) -> Option<f64> {
        self.with_failure
            .as_ref()
            .map(|f| f.wall.as_secs_f64() - self.no_failure.wall.as_secs_f64())
    }
}

/// One x-axis point of a figure: label plus the per-strategy pairs.
#[derive(Clone, Debug)]
pub struct ExperimentPoint {
    pub label: String,
    pub active_ranks: usize,
    pub pairs: Vec<PairedRuns>,
}

/// Serializable flat record for `--json` output.
pub struct JsonRecord {
    pub point: String,
    pub strategy: String,
    pub failed: bool,
    pub ranks: usize,
    pub wall_s: f64,
    pub categories: Vec<(String, f64)>,
    pub relaunches: usize,
    pub repairs: u64,
    pub iterations: u64,
}

impl JsonRecord {
    pub fn from_record(point: &str, failed: bool, rec: &RunRecord) -> Self {
        JsonRecord {
            point: point.to_owned(),
            strategy: rec.strategy.label().to_owned(),
            failed,
            ranks: rec.ranks,
            wall_s: rec.wall.as_secs_f64(),
            categories: rec
                .breakdown
                .rows()
                .into_iter()
                .map(|(n, v)| (n.to_owned(), v))
                .collect(),
            relaunches: rec.relaunches,
            repairs: rec.repairs,
            iterations: rec.iterations,
        }
    }

    /// Flat JSON object for this record.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("point", Json::from(self.point.as_str())),
            ("strategy", Json::from(self.strategy.as_str())),
            ("failed", Json::from(self.failed)),
            ("ranks", Json::from(self.ranks)),
            ("wall_s", Json::from(self.wall_s)),
            (
                "categories",
                Json::arr(
                    self.categories
                        .iter()
                        .map(|(n, v)| Json::arr([Json::from(n.as_str()), Json::from(*v)])),
                ),
            ),
            ("relaunches", Json::from(self.relaunches)),
            ("repairs", Json::from(self.repairs)),
            ("iterations", Json::from(self.iterations)),
        ])
    }
}

/// Build the experiment cluster for a given active-rank count (Fenix
/// strategies get their spares as extra nodes, like the paper's spare
/// nodes).
pub fn experiment_cluster(nodes: usize, time_scale: f64) -> Cluster {
    let cfg = ClusterConfig {
        nodes,
        ranks_per_node: 1,
        time_scale: TimeScale(time_scale),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

fn averaged(records: Vec<RunRecord>) -> RunRecord {
    // Average wall and each category over repeats; keep the rest from the
    // first record.
    let n = records.len() as f64;
    let mut it = records.into_iter();
    let mut acc = it.next().expect("at least one repeat");
    let mut wall = acc.wall.as_secs_f64();
    let mut cats: Vec<f64> = acc.breakdown.rows().iter().map(|(_, v)| *v).collect();
    for r in it {
        wall += r.wall.as_secs_f64();
        for (c, (_, v)) in cats.iter_mut().zip(r.breakdown.rows()) {
            *c += v;
        }
        acc.relaunches = acc.relaunches.max(r.relaunches);
        acc.repairs = acc.repairs.max(r.repairs);
    }
    wall /= n;
    for c in &mut cats {
        *c /= n;
    }
    // Write the averages back through the breakdown fields.
    acc.wall = std::time::Duration::from_secs_f64(wall);
    let b = &mut acc.breakdown;
    let assign = |d: &mut std::time::Duration, v: f64| {
        *d = std::time::Duration::from_secs_f64(v.max(0.0));
    };
    assign(&mut b.app_compute, cats[0]);
    assign(&mut b.app_mpi, cats[1]);
    assign(&mut b.force_compute, cats[2]);
    assign(&mut b.neighboring, cats[3]);
    assign(&mut b.communicator, cats[4]);
    assign(&mut b.resilience_init, cats[5]);
    assign(&mut b.checkpoint_fn, cats[6]);
    assign(&mut b.data_recovery, cats[7]);
    assign(&mut b.recompute, cats[8]);
    {
        // "Other" row merges other+app_init; store it all in `other`.
        b.app_init = std::time::Duration::ZERO;
        assign(&mut b.other, cats[9]);
    }
    acc
}

/// Run one strategy at one point: `repeats`× without failure and (if
/// `fail_at` is set) `repeats`× with a failure at that iteration.
#[allow(clippy::too_many_arguments)]
pub fn run_pair(
    app: &dyn IterativeApp,
    strategy: Strategy,
    active_ranks: usize,
    spares: usize,
    checkpoints: u64,
    fail_at: Option<(usize, u64)>,
    repeats: usize,
    time_scale: f64,
    telemetry: Option<Telemetry>,
) -> PairedRuns {
    let nodes = if strategy.uses_fenix() {
        active_ranks + spares
    } else {
        active_ranks
    };
    let cluster = experiment_cluster(nodes, time_scale);
    let cfg = ExperimentConfig {
        strategy,
        spares: if strategy.uses_fenix() { spares } else { 0 },
        checkpoints,
        max_relaunches: 6,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry,
        backend: simmpi::Backend::default(),
    };

    let no_failure = averaged(
        (0..repeats)
            .map(|_| run_experiment(&cluster, app, &cfg, Arc::new(FaultPlan::none())))
            .collect(),
    );
    let with_failure = fail_at.map(|(rank, iter)| {
        averaged(
            (0..repeats)
                .map(|_| {
                    run_experiment(
                        &cluster,
                        app,
                        &cfg,
                        Arc::new(FaultPlan::kill_at(rank, "iter", iter)),
                    )
                })
                .collect(),
        )
    });
    PairedRuns {
        strategy,
        no_failure,
        with_failure,
    }
}

/// Figure 5 configuration.
#[derive(Clone, Debug)]
pub struct Fig5Config {
    pub strategies: Vec<Strategy>,
    pub iterations: u64,
    pub checkpoints: u64,
    pub cols: usize,
    pub repeats: usize,
    pub time_scale: f64,
    /// Observability hub shared by every run of the panel (`--trace`).
    pub telemetry: Option<Telemetry>,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            strategies: vec![
                Strategy::Unprotected,
                Strategy::KokkosResilience,
                Strategy::FenixKokkosResilience,
                Strategy::FenixImr,
            ],
            iterations: 60,
            checkpoints: 6,
            cols: 512,
            repeats: 2,
            time_scale: 1.0,
            telemetry: None,
        }
    }
}

/// The paper's failure point: ~95% of the way between checkpoints 4 and 5
/// (clamped into the run for configurations with fewer checkpoints).
pub fn default_fail_iteration(iterations: u64, checkpoints: u64) -> u64 {
    let interval = (iterations / checkpoints.max(1)).max(1);
    let paper_point = 4 * interval + ((interval as f64) * 0.95) as u64;
    paper_point.min(iterations.saturating_sub(2))
}

/// One Figure 5 panel: Heatdis at each `(label, mb_per_rank, ranks)` point.
pub fn fig5_panel(cfg: &Fig5Config, points: &[(String, f64, usize)]) -> Vec<ExperimentPoint> {
    points
        .iter()
        .map(|(label, mb, ranks)| {
            let app = Heatdis::fixed((mb * 1e6) as usize, cfg.cols, cfg.iterations);
            let fail_iter = default_fail_iteration(cfg.iterations, cfg.checkpoints);
            let pairs = cfg
                .strategies
                .iter()
                .map(|&s| {
                    run_pair(
                        &app,
                        s,
                        *ranks,
                        1,
                        cfg.checkpoints,
                        Some((ranks / 2, fail_iter)),
                        cfg.repeats,
                        cfg.time_scale,
                        cfg.telemetry.clone(),
                    )
                })
                .collect();
            ExperimentPoint {
                label: label.clone(),
                active_ranks: *ranks,
                pairs,
            }
        })
        .collect()
}

/// Figure 6: MiniMD weak scaling under the integrated framework, with the
/// no-Fenix baseline for the relaunch comparison.
#[allow(clippy::too_many_arguments)]
pub fn fig6_weak_scaling(
    rank_counts: &[usize],
    cells: [usize; 3],
    iterations: u64,
    checkpoints: u64,
    repeats: usize,
    time_scale: f64,
    telemetry: Option<Telemetry>,
) -> Vec<ExperimentPoint> {
    rank_counts
        .iter()
        .map(|&ranks| {
            let app = MiniMd::new(cells, iterations);
            let fail_iter = default_fail_iteration(iterations, checkpoints);
            let pairs = [Strategy::KokkosResilience, Strategy::FenixKokkosResilience]
                .iter()
                .map(|&s| {
                    run_pair(
                        &app,
                        s,
                        ranks,
                        1,
                        checkpoints,
                        Some((ranks / 2, fail_iter)),
                        repeats,
                        time_scale,
                        telemetry.clone(),
                    )
                })
                .collect();
            ExperimentPoint {
                label: format!("{ranks} ranks"),
                active_ranks: ranks,
                pairs,
            }
        })
        .collect()
}

/// Figure 7: view statistics per simulation size.
pub struct Fig7Row {
    pub label: String,
    pub total_views: usize,
    pub checkpointed: (usize, usize),
    pub alias: (usize, usize),
    pub skipped: (usize, usize),
}

pub fn fig7_stats(cell_sizes: &[usize]) -> Vec<Fig7Row> {
    fig7_stats_traced(cell_sizes, None)
}

/// [`fig7_stats`] with an optional observability hub (`--trace`).
pub fn fig7_stats_traced(cell_sizes: &[usize], telemetry: Option<Telemetry>) -> Vec<Fig7Row> {
    use kokkos_resilience::{BackendKind, CheckpointFilter, Context, ContextConfig, ViewClass};
    use resilience::{Bookkeeper, RankApp};
    use simmpi::{Profile, Universe, UniverseConfig};

    cell_sizes
        .iter()
        .map(|&n| {
            let cluster = experiment_cluster(1, 0.0);
            let row = std::sync::Mutex::new(None);
            let report = Universe::launch(
                &cluster,
                UniverseConfig {
                    telemetry: telemetry.clone(),
                    ..UniverseConfig::default()
                },
                Arc::new(FaultPlan::none()),
                |ctx| {
                    let app = MiniMd::new([n, n, n], 1);
                    let comm = ctx.world().clone();
                    let bk = Bookkeeper::new(Arc::new(Profile::new()));
                    let mut st = app.state_for(&comm);
                    let kr = Context::new(
                        ctx.cluster(),
                        comm.clone(),
                        ContextConfig {
                            name: format!("fig7-{n}"),
                            filter: CheckpointFilter::Never,
                            backend: BackendKind::VelocSingle,
                            aliases: app.alias_labels(),
                        },
                    );
                    kr.set_recorder(ctx.recorder().clone());
                    kr.checkpoint("loop", 0, || st.step(&comm, 0, &bk))?;
                    let stats = kr.region_stats("loop").expect("region detected");
                    *row.lock().unwrap() = Some(Fig7Row {
                        label: format!("{n}^3 cells ({} atoms)", app.atoms_per_rank()),
                        total_views: stats.total_views(),
                        checkpointed: (
                            stats.count(ViewClass::Checkpointed),
                            stats.bytes(ViewClass::Checkpointed),
                        ),
                        alias: (stats.count(ViewClass::Alias), stats.bytes(ViewClass::Alias)),
                        skipped: (
                            stats.count(ViewClass::Skipped),
                            stats.bytes(ViewClass::Skipped),
                        ),
                    });
                    Ok(())
                },
            );
            assert!(report.all_ok());
            row.into_inner().unwrap().expect("stats recorded")
        })
        .collect()
}

/// §VI.D.2: partial vs full rollback on converging Heatdis.
pub struct PartialRollbackResult {
    pub free_iterations: u64,
    /// Loop iteration the recovered runs resumed from (checkpoint + 1).
    pub resume_iteration: u64,
    pub full: RunRecord,
    pub partial: RunRecord,
}

impl PartialRollbackResult {
    /// Iterations executed after the failure (the recovery work).
    pub fn post_failure_iterations(&self, rec: &RunRecord) -> u64 {
        rec.iterations.saturating_sub(self.resume_iteration)
    }

    /// How much less recovery work partial rollback needed (the paper's
    /// "nearly 2× speedup of recovery").
    pub fn recovery_speedup(&self) -> f64 {
        let full = self.post_failure_iterations(&self.full).max(1);
        let partial = self.post_failure_iterations(&self.partial).max(1);
        full as f64 / partial as f64
    }
}

pub fn partial_rollback_comparison(
    per_rank_bytes: usize,
    cols: usize,
    ranks: usize,
    time_scale: f64,
    telemetry: Option<Telemetry>,
) -> PartialRollbackResult {
    let app = Heatdis::converging(per_rank_bytes, cols, 12_000).with_eps(0.3);
    let cluster = experiment_cluster(ranks + 1, time_scale);
    let cfg = |strategy| ExperimentConfig {
        strategy,
        spares: 1,
        checkpoints: 6,
        max_relaunches: 4,
        imr_policy: None,
        redundancy: None,
        fresh_storage: true,
        telemetry: telemetry.clone(),
        backend: simmpi::Backend::default(),
    };
    let free = run_experiment(
        &cluster,
        &app,
        &cfg(Strategy::FenixKokkosResilience),
        Arc::new(FaultPlan::none()),
    );
    let kill = free.iterations * 3 / 4;
    // Checkpoints fire at i % interval == interval-1; the recovered runs
    // resume at the first iteration after the last checkpoint before the
    // kill.
    let interval = 12_000u64 / 6;
    let resume_iteration = (kill / interval) * interval;
    let full = run_experiment(
        &cluster,
        &app,
        &cfg(Strategy::FenixKokkosResilience),
        Arc::new(FaultPlan::kill_at(1, "iter", kill)),
    );
    let partial = run_experiment(
        &cluster,
        &app,
        &cfg(Strategy::PartialRollback),
        Arc::new(FaultPlan::kill_at(1, "iter", kill)),
    );
    PartialRollbackResult {
        free_iterations: free.iterations,
        resume_iteration,
        full,
        partial,
    }
}
