//! Table rendering and JSON output.

use std::io::Write;
use std::path::Path;

use crate::experiments::{ExperimentPoint, JsonRecord};

/// Print the paper-style stacked-cost table for a set of points: one block
/// per point, one column per strategy, rows = cost categories, followed by
/// the failure-cost line.
pub fn print_breakdown_table(title: &str, points: &[ExperimentPoint]) {
    println!("== {title} ==");
    for point in points {
        println!(
            "\n--- {} ({} active ranks) ---",
            point.label, point.active_ranks
        );
        let strategies: Vec<&str> = point.pairs.iter().map(|p| p.strategy.label()).collect();
        print!("{:<28}", "category / strategy");
        for s in &strategies {
            print!(" {s:>18}");
        }
        println!();

        let categories: Vec<&'static str> = point.pairs[0]
            .no_failure
            .breakdown
            .rows()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        for (ci, cat) in categories.iter().enumerate() {
            // Skip all-zero categories to keep tables readable.
            let any = point.pairs.iter().any(|p| {
                p.no_failure.breakdown.rows()[ci].1 > 1e-6
                    || p.with_failure
                        .as_ref()
                        .is_some_and(|f| f.breakdown.rows()[ci].1 > 1e-6)
            });
            if !any {
                continue;
            }
            print!("{cat:<28}");
            for p in &point.pairs {
                print!(" {:>18.4}", p.no_failure.breakdown.rows()[ci].1);
            }
            println!();
        }
        print!("{:<28}", "TOTAL wall (no failure)");
        for p in &point.pairs {
            print!(" {:>18.4}", p.no_failure.wall.as_secs_f64());
        }
        println!();
        if point.pairs.iter().any(|p| p.with_failure.is_some()) {
            print!("{:<28}", "TOTAL wall (with failure)");
            for p in &point.pairs {
                match &p.with_failure {
                    Some(f) => print!(" {:>18.4}", f.wall.as_secs_f64()),
                    None => print!(" {:>18}", "-"),
                }
            }
            println!();
            print!("{:<28}", "FAILURE COST");
            for p in &point.pairs {
                match p.failure_cost_secs() {
                    Some(c) => print!(" {:>18.4}", c),
                    None => print!(" {:>18}", "-"),
                }
            }
            println!();
            print!("{:<28}", "recovery (recomp+recov)");
            for p in &point.pairs {
                match &p.with_failure {
                    Some(f) => print!(
                        " {:>18.4}",
                        f.breakdown.recompute.as_secs_f64()
                            + f.breakdown.data_recovery.as_secs_f64()
                    ),
                    None => print!(" {:>18}", "-"),
                }
            }
            println!();
        }
    }
    println!();
}

/// Write flat JSON records for every run in `points`.
pub fn write_json(path: &Path, points: &[ExperimentPoint]) -> std::io::Result<()> {
    let mut records = Vec::new();
    for point in points {
        for pair in &point.pairs {
            records.push(JsonRecord::from_record(
                &point.label,
                false,
                &pair.no_failure,
            ));
            if let Some(f) = &pair.with_failure {
                records.push(JsonRecord::from_record(&point.label, true, f));
            }
        }
    }
    let doc = telemetry::Json::arr(records.iter().map(|r| r.to_json()));
    let mut file = std::fs::File::create(path)?;
    file.write_all(doc.to_json_pretty().as_bytes())?;
    Ok(())
}

/// Export a run's telemetry next to `base`: `<base>.jsonl` (one event per
/// line) and `<base>.trace.json` (Chrome `trace_event`, loadable in
/// `about:tracing` / Perfetto). Returns the human-readable failure timeline
/// for the caller to print.
pub fn write_trace(base: &Path, tel: &telemetry::Telemetry) -> std::io::Result<String> {
    let snap = tel.snapshot();
    telemetry::export::write_jsonl(&base.with_extension("jsonl"), &snap)?;
    telemetry::export::write_chrome_trace(&base.with_extension("trace.json"), &snap)?;
    Ok(telemetry::export::failure_timeline(&snap))
}

/// Build the `--trace` observability hub if the flag is present. Returns the
/// hub plus the base path traces will be written under.
pub fn arg_trace(args: &[String]) -> Option<(telemetry::Telemetry, std::path::PathBuf)> {
    arg_value(args, "--trace").map(|p| {
        (
            telemetry::Telemetry::new(telemetry::TelemetryConfig::default()),
            std::path::PathBuf::from(p),
        )
    })
}

/// Pull a `--flag value` pair out of CLI args.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}
