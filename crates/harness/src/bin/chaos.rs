//! Seeded chaos campaign runner.
//!
//! Fuzzes the three resilience layers with deterministic fault schedules
//! and checks every run against the differential oracle (complete with the
//! uninterrupted run's digest, or fail with a typed error — never panic,
//! hang, or diverge). Failures are shrunk to a minimal reproducer whose
//! spec string replays directly.
//!
//! Usage:
//!   cargo run -p harness --bin chaos -- [--schedules N] [--seed S]
//!   cargo run -p harness --bin chaos -- --schedule "strategy=FenixVeloc spares=1 kill(rank=1,site=iter,at=3)"
//!
//! Exit status: 0 when every schedule satisfied the oracle, 1 otherwise.

use chaos::schedule::DEFAULT_SEED;
use chaos::{replay, run_campaign, CaseResult, ChaosSchedule, RunOutcome};
use harness::table::arg_value;

fn print_failure(case: &CaseResult) {
    let Err(v) = &case.outcome else { return };
    eprintln!("FAIL schedule #{}: {v}", case.index);
    eprintln!("  schedule: {}", case.schedule.to_spec());
    if let Some(min) = &case.shrunk {
        eprintln!("  shrunk:   {}", min.to_spec());
        eprintln!(
            "  replay:   cargo run -p harness --bin chaos -- --schedule \"{}\"",
            min.to_spec()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(spec) = arg_value(&args, "--schedule") {
        let sched = match ChaosSchedule::parse(&spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bad --schedule spec: {e}");
                std::process::exit(2);
            }
        };
        let case = replay(&sched);
        match &case.outcome {
            Ok(RunOutcome::Completed { digest }) => {
                println!("PASS: completed, digest {digest:#018x} matches baseline");
            }
            Ok(RunOutcome::TypedError(msg)) => {
                println!("PASS: clean typed error: {msg}");
            }
            Err(_) => {
                print_failure(&case);
                std::process::exit(1);
            }
        }
        return;
    }

    let schedules: usize = arg_value(&args, "--schedules")
        .map(|v| v.parse().expect("--schedules takes a number"))
        .unwrap_or(200);
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes a number"))
        .unwrap_or(DEFAULT_SEED);

    println!("chaos campaign: {schedules} schedules from seed {seed:#x}");
    let report = run_campaign(seed, schedules);
    let failures = report.failures();
    println!(
        "completed={} typed-errors={} failures={}",
        report.completed(),
        report.typed_errors(),
        failures.len()
    );
    for case in &failures {
        print_failure(case);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    println!("oracle satisfied on all {schedules} schedules");
}
