//! Figure 6: MiniMD resilience weak scaling.
//!
//! Runs MiniMD under the integrated framework (and the no-Fenix baseline)
//! across rank counts, printing the phase breakdown — Force Compute /
//! Neighboring / Communicator / Checkpoint Function / Data Recovery /
//! Other — plus failure costs.
//!
//! Options: `--quick`, `--repeats N`, `--json PATH`, `--trace PATH`.

use std::path::PathBuf;

use harness::experiments::fig6_weak_scaling;
use harness::table::{
    arg_flag, arg_trace, arg_value, print_breakdown_table, write_json, write_trace,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = arg_flag(&args, "--quick");
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 1 } else { 2 });

    let rank_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let cells = [3, 3, 3];
    let iterations = if quick { 20 } else { 40 };
    // MiniMD aligns checkpoint intervals with neighbor rebuilds itself.
    let checkpoints = 4;

    let trace = arg_trace(&args);
    let results = fig6_weak_scaling(
        rank_counts,
        cells,
        iterations,
        checkpoints,
        repeats,
        1.0,
        trace.as_ref().map(|(t, _)| t.clone()),
    );
    print_breakdown_table(
        &format!(
            "Figure 6: MiniMD weak scaling ({}x{}x{} cells/rank, {iterations} steps)",
            cells[0], cells[1], cells[2]
        ),
        &results,
    );
    if let Some(path) = arg_value(&args, "--json") {
        write_json(&PathBuf::from(path), &results).expect("write json");
    }
    if let Some((tel, base)) = &trace {
        match write_trace(base, tel) {
            Ok(timeline) => print!("{timeline}"),
            Err(e) => {
                eprintln!(
                    "error: failed to write trace files at {}: {e}",
                    base.display()
                );
                std::process::exit(2);
            }
        }
    }
}
