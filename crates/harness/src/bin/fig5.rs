//! Figure 5: Heatdis overhead and recovery costs.
//!
//! Two panels, as in the paper:
//! * `--panel data` — fixed rank count, per-rank data-size sweep
//!   (the paper's "64-Node Data Scaling (MB)");
//! * `--panel weak` — fixed per-rank data, rank-count sweep
//!   (the paper's "1GB-Data Node Weak-Scaling");
//! * `--panel partial` — the §VI.D.2 partial-rollback comparison.
//!
//! Options: `--quick` (smaller sweep), `--repeats N`, `--json PATH`,
//! `--trace PATH` (write `PATH.jsonl` + `PATH.trace.json` and print the
//! failure timeline).

use std::path::PathBuf;

use harness::experiments::{fig5_panel, partial_rollback_comparison, Fig5Config};
use harness::table::{
    arg_flag, arg_trace, arg_value, print_breakdown_table, write_json, write_trace,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = arg_value(&args, "--panel").unwrap_or_else(|| "data".into());
    let quick = arg_flag(&args, "--quick");
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 1 } else { 2 });

    let trace = arg_trace(&args);
    let mut cfg = Fig5Config {
        telemetry: trace.as_ref().map(|(t, _)| t.clone()),
        repeats,
        ..Fig5Config::default()
    };
    if quick {
        cfg.iterations = 30;
        cfg.cols = 256;
    }

    match panel.as_str() {
        "data" => {
            // Paper: 64 nodes, MB..GB per node. Scaled: 4 ranks, MB sizes
            // (sized so a full sweep finishes in minutes on one core).
            let ranks = 4;
            let sizes: &[f64] = if quick {
                &[2.0, 8.0]
            } else {
                &[2.0, 4.0, 8.0, 16.0]
            };
            let points: Vec<(String, f64, usize)> = sizes
                .iter()
                .map(|&mb| (format!("{mb} MB/rank"), mb, ranks))
                .collect();
            let results = fig5_panel(&cfg, &points);
            print_breakdown_table(
                &format!("Figure 5 (left): Heatdis data scaling at {ranks} ranks"),
                &results,
            );
            if let Some(path) = arg_value(&args, "--json") {
                write_json(&PathBuf::from(path), &results).expect("write json");
            }
        }
        "weak" => {
            // Paper: 1 GB/node across node counts. Scaled: 4 MB/rank.
            let mb = 4.0;
            let rank_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
            let points: Vec<(String, f64, usize)> = rank_counts
                .iter()
                .map(|&r| (format!("{r} ranks"), mb, r))
                .collect();
            let results = fig5_panel(&cfg, &points);
            print_breakdown_table(
                &format!("Figure 5 (right): Heatdis weak scaling at {mb} MB/rank"),
                &results,
            );
            if let Some(path) = arg_value(&args, "--json") {
                write_json(&PathBuf::from(path), &results).expect("write json");
            }
        }
        "partial" => {
            // Jacobi needs O(N²) sweeps: keep the global grid small enough
            // (48×32) that the converging variant actually converges.
            let r = partial_rollback_comparison(
                2 * 8 * 32 * 12,
                32,
                4,
                1.0,
                trace.as_ref().map(|(t, _)| t.clone()),
            );
            println!("== §VI.D.2: partial vs full rollback (converging Heatdis) ==");
            println!("failure-free convergence: {} iterations", r.free_iterations);
            println!(
                "recovered runs resume at iteration {} (last checkpoint + 1)",
                r.resume_iteration
            );
            println!(
                "full rollback:    converged at {} — {} iterations of recovery work, wall {:.3}s",
                r.full.iterations,
                r.post_failure_iterations(&r.full),
                r.full.wall.as_secs_f64(),
            );
            println!(
                "partial rollback: converged at {} — {} iterations of recovery work, wall {:.3}s",
                r.partial.iterations,
                r.post_failure_iterations(&r.partial),
                r.partial.wall.as_secs_f64(),
            );
            println!(
                "recovery speedup from keeping survivor data: {:.2}x (paper: ~2x)",
                r.recovery_speedup()
            );
        }
        other => {
            eprintln!("unknown panel '{other}': use data | weak | partial");
            std::process::exit(2);
        }
    }

    if let Some((tel, base)) = &trace {
        match write_trace(base, tel) {
            Ok(timeline) => print!("{timeline}"),
            Err(e) => {
                eprintln!(
                    "error: failed to write trace files at {}: {e}",
                    base.display()
                );
                std::process::exit(2);
            }
        }
    }
}
