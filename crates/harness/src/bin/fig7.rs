//! Figure 7: MiniMD view-memory classification.
//!
//! For each simulation size, runs automatic view detection over one MiniMD
//! step and reports how many view objects (and what fraction of the view
//! memory) are Checkpointed / Alias / Skipped — the paper's Figure 7 bars
//! and the §VI.E counts (61 views: 39 checkpointed, 3 alias, 19 skipped).

use harness::experiments::fig7_stats_traced;
use harness::table::{arg_trace, write_trace};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace = arg_trace(&args);
    // Paper sizes are 100^3..400^3 sites; scaled to unit cells per rank.
    let sizes: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4, 5] };

    println!("== Figure 7: MiniMD view classification by simulation size ==\n");
    println!(
        "{:<26} {:>6} {:>22} {:>22} {:>22}",
        "simulation size", "views", "checkpointed", "alias", "skipped"
    );
    for row in fig7_stats_traced(sizes, trace.as_ref().map(|(t, _)| t.clone())) {
        let total_bytes = (row.checkpointed.1 + row.alias.1 + row.skipped.1).max(1) as f64;
        let fmt =
            |c: (usize, usize)| format!("{:>3} ({:>5.1}%)", c.0, 100.0 * c.1 as f64 / total_bytes);
        println!(
            "{:<26} {:>6} {:>22} {:>22} {:>22}",
            row.label,
            row.total_views,
            fmt(row.checkpointed),
            fmt(row.alias),
            fmt(row.skipped)
        );
    }
    println!("\npaper reference: 61 view objects — 39 checkpointed, 3 alias, 19 skipped;");
    println!("alias+skipped fractions of memory shrink as the dominant data view grows.");
    if let Some((tel, base)) = &trace {
        match write_trace(base, tel) {
            Ok(timeline) => print!("{timeline}"),
            Err(e) => {
                eprintln!(
                    "error: failed to write trace files at {}: {e}",
                    base.display()
                );
                std::process::exit(2);
            }
        }
    }
}
