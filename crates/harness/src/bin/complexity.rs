//! §VI.E "Complexity of Use" statistics, computed against this repository.
//!
//! The paper quantifies integration effort on MiniMD: 61 view objects
//! (39 checkpointed / 3 aliases / 19 skipped), 148 MPI call sites across 15
//! of 20+ source files — each of which would need ULFM error handling —
//! versus under 20 lines of resilience code in one file with Fenix. This
//! binary reproduces the view statistics from live capture and counts the
//! MPI call sites in our own MiniMD sources.

use harness::experiments::fig7_stats_traced;
use harness::table::{arg_trace, write_trace};

fn count_in_dir(dir: &std::path::Path, pred: &dyn Fn(&str) -> usize) -> (usize, usize, usize) {
    // (files scanned, files with hits, total hits)
    let mut scanned = 0;
    let mut with_hits = 0;
    let mut hits = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                scanned += 1;
                let content = std::fs::read_to_string(&p).unwrap_or_default();
                let h = pred(&content);
                if h > 0 {
                    with_hits += 1;
                }
                hits += h;
            }
        }
    }
    (scanned, with_hits, hits)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = arg_trace(&args);
    println!("== §VI.E complexity-of-use statistics ==\n");

    // View statistics from live automatic capture (4^3-cell MiniMD).
    let row = fig7_stats_traced(&[4], trace.as_ref().map(|(t, _)| t.clone())).remove(0);
    println!("view objects detected in the MiniMD checkpoint region:");
    println!("   total:        {:>3}   (paper: 61)", row.total_views);
    println!("   checkpointed: {:>3}   (paper: 39)", row.checkpointed.0);
    println!("   aliases:      {:>3}   (paper: 3)", row.alias.0);
    println!("   skipped:      {:>3}   (paper: 19)", row.skipped.0);

    // MPI call-site counts over the MiniMD application sources.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let minimd_dir = root.join("crates/apps/src/minimd");
    let mpi_calls = |s: &str| {
        s.lines()
            .filter(|l| {
                let l = l.trim_start();
                !l.starts_with("//")
                    && (l.contains("comm.send")
                        || l.contains("comm.recv")
                        || l.contains("comm.sendrecv")
                        || l.contains("comm.allreduce")
                        || l.contains("comm.barrier")
                        || l.contains("comm.bcast")
                        || l.contains("comm.gather")
                        || l.contains("comm.agree"))
            })
            .count()
    };
    let (scanned, files_with_mpi, sites) = count_in_dir(&minimd_dir, &mpi_calls);
    println!("\nMPI call sites in our MiniMD sources:");
    println!("   {sites} call sites across {files_with_mpi} of {scanned} files");
    println!("   (paper: 148 sites across 15 of 20+ files — every one would");
    println!("   need explicit ULFM error handling without Fenix)");

    // Resilience-integration line count: what the application itself adds
    // to run under the full stack (the IterativeApp hooks beyond pure
    // physics).
    let hooks = [
        "checkpoint_views",
        "post_restore",
        "alias_labels",
        "fault_point",
    ];
    let hook_lines = |s: &str| {
        s.lines()
            .filter(|l| hooks.iter().any(|h| l.contains(h)) && !l.trim_start().starts_with("//"))
            .count()
    };
    let (_, _, lines) = count_in_dir(&minimd_dir, &hook_lines);
    println!("\nresilience-specific hook references in MiniMD sources: {lines}");
    println!("   (paper: fewer than 20 lines of simple code in a single file)");

    if let Some((tel, base)) = &trace {
        match write_trace(base, tel) {
            Ok(timeline) => print!("{timeline}"),
            Err(e) => {
                eprintln!(
                    "error: failed to write trace files at {}: {e}",
                    base.display()
                );
                std::process::exit(2);
            }
        }
    }
}
