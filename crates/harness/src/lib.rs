//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section at laptop scale.
//!
//! Binaries (see `src/bin/`):
//!
//! * `fig5` — Heatdis overhead & recovery costs: data-scaling panel and
//!   node weak-scaling panel (paper Figure 5), plus the partial-rollback
//!   comparison (§VI.D.2).
//! * `fig6` — MiniMD weak scaling with the phase breakdown (Figure 6).
//! * `fig7` — MiniMD view-classification statistics (Figure 7).
//! * `complexity` — the §VI.E complexity-of-use statistics, computed from
//!   this repository's own sources.
//!
//! Every binary prints human-readable tables and, with `--json PATH`,
//! writes machine-readable records. Absolute numbers are not expected to
//! match the paper (a 100-node Cray is not simulated wall-for-wall); the
//! *shape* — which strategy wins, how costs scale, where crossovers fall —
//! is the reproduction target (see `EXPERIMENTS.md`).

pub mod experiments;
pub mod table;

pub use experiments::{
    fig5_panel, fig6_weak_scaling, fig7_stats, partial_rollback_comparison, ExperimentPoint,
    Fig5Config, PairedRuns,
};
pub use table::{print_breakdown_table, write_json};
