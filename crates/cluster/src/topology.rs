//! Rank→node placement.

/// Static placement of MPI ranks onto physical nodes.
///
/// Ranks are block-distributed: ranks `[n*rpn, (n+1)*rpn)` live on node `n`.
/// The paper runs one rank per node, so by default `node_of` is the identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    ranks_per_node: usize,
}

impl Topology {
    pub fn new(nodes: usize, ranks_per_node: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(
            ranks_per_node > 0,
            "topology needs at least one rank per node"
        );
        Topology {
            nodes,
            ranks_per_node,
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    pub fn total_ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.total_ranks(), "rank {rank} out of range");
        rank / self.ranks_per_node
    }

    /// All ranks co-located on `node`.
    pub fn ranks_on(&self, node: usize) -> std::ops::Range<usize> {
        assert!(node < self.nodes, "node {node} out of range");
        node * self.ranks_per_node..(node + 1) * self.ranks_per_node
    }

    /// Whether two ranks share a node (intra-node traffic skips the NIC).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement() {
        let t = Topology::new(3, 4);
        assert_eq!(t.total_ranks(), 12);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(11), 2);
        assert_eq!(t.ranks_on(1), 4..8);
    }

    #[test]
    fn one_rank_per_node_is_identity() {
        let t = Topology::new(5, 1);
        for r in 0..5 {
            assert_eq!(t.node_of(r), r);
        }
    }

    #[test]
    fn same_node_detection() {
        let t = Topology::new(2, 2);
        assert!(t.same_node(0, 1));
        assert!(!t.same_node(1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_bounds_checked() {
        Topology::new(2, 2).node_of(4);
    }
}
