//! Job relaunch cost model.
//!
//! The paper measures `mpirun` with the bash `time` utility precisely because
//! relaunch-based recovery pays costs *outside* the application: tearing down
//! every process, rescheduling the job, and restarting MPI. Fenix-based
//! recovery avoids all of this. The model charges a base cost plus a
//! per-rank cost for each of teardown and startup; the harness sleeps the
//! scaled sum whenever a non-Fenix strategy recovers from a failure, and
//! books it under the paper's "Other" category.

use std::time::Duration;

/// Modeled cost of stopping and restarting an entire MPI job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelaunchModel {
    /// Fixed cost of tearing the job down (signal propagation, cleanup).
    pub teardown_base: Duration,
    /// Additional teardown cost per rank.
    pub teardown_per_rank: Duration,
    /// Fixed cost of launching the job (scheduler, `mpirun` wireup).
    pub startup_base: Duration,
    /// Additional startup cost per rank.
    pub startup_per_rank: Duration,
}

impl Default for RelaunchModel {
    fn default() -> Self {
        RelaunchModel {
            teardown_base: Duration::from_millis(800),
            teardown_per_rank: Duration::from_millis(30),
            startup_base: Duration::from_millis(1500),
            startup_per_rank: Duration::from_millis(60),
        }
    }
}

impl RelaunchModel {
    /// Modeled teardown time for an `n`-rank job.
    pub fn teardown(&self, ranks: usize) -> Duration {
        self.teardown_base + self.teardown_per_rank * ranks as u32
    }

    /// Modeled startup time for an `n`-rank job.
    pub fn startup(&self, ranks: usize) -> Duration {
        self.startup_base + self.startup_per_rank * ranks as u32
    }

    /// Full relaunch = teardown + startup.
    pub fn relaunch(&self, ranks: usize) -> Duration {
        self.teardown(ranks) + self.startup(ranks)
    }

    /// A model with no cost (unit tests).
    pub fn free() -> Self {
        RelaunchModel {
            teardown_base: Duration::ZERO,
            teardown_per_rank: Duration::ZERO,
            startup_base: Duration::ZERO,
            startup_per_rank: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaunch_is_teardown_plus_startup() {
        let m = RelaunchModel::default();
        assert_eq!(m.relaunch(10), m.teardown(10) + m.startup(10));
    }

    #[test]
    fn costs_grow_with_ranks() {
        let m = RelaunchModel::default();
        assert!(m.startup(64) > m.startup(1));
        assert!(m.teardown(64) > m.teardown(1));
    }

    #[test]
    fn free_model_is_zero() {
        assert_eq!(RelaunchModel::free().relaunch(100), Duration::ZERO);
    }
}
