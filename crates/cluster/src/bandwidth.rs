//! FIFO bandwidth reservation.
//!
//! A [`Governor`] models a shared channel with a fixed data rate. Callers
//! *reserve* a transfer of `n` bytes: the reservation is appended to the
//! channel's timeline and the caller learns how long (in modeled time) it
//! must wait for its transfer to complete. Under contention the channel
//! delivers exactly its configured aggregate rate; an idle channel imposes
//! only the serialization delay of the transfer itself.
//!
//! Reservations are split from sleeping so that a transfer crossing several
//! resources (source NIC, bisection, destination NIC) can reserve on each and
//! sleep only the *maximum* — the resources operate in parallel, and the
//! slowest one determines completion.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

use crate::clock::Clock;
use crate::TimeScale;

/// A shared channel with a fixed modeled bandwidth.
pub struct Governor {
    /// Bytes per second of *modeled* time.
    rate: f64,
    /// Fixed per-operation latency added to every reservation.
    latency: Duration,
    state: Mutex<State>,
    scale: TimeScale,
    /// Time source for queue bookkeeping. Wall by default; a discrete-event
    /// scheduler shares one virtual clock across every governor instead.
    clock: Arc<Clock>,
}

struct State {
    /// Clock time (nanoseconds on `Governor::clock`, pre-scaling) at which
    /// the channel next becomes free.
    next_free_ns: Option<u64>,
}

impl Governor {
    /// Create a governor delivering `rate` bytes per modeled second,
    /// tracking queue time on a wall [`Clock`].
    pub fn new(rate: f64, latency: Duration, scale: TimeScale) -> Self {
        Self::with_clock(rate, latency, scale, Arc::new(Clock::wall()))
    }

    /// Create a governor on an explicit time source. Pass a shared
    /// [`Clock::virtual_at`] to drive reservations from simulated time.
    pub fn with_clock(rate: f64, latency: Duration, scale: TimeScale, clock: Arc<Clock>) -> Self {
        assert!(rate > 0.0, "bandwidth rate must be positive");
        Governor {
            rate,
            latency,
            state: Mutex::new(State { next_free_ns: None }),
            scale,
            clock,
        }
    }

    /// The time source this governor tracks its queue on.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// The configured rate in bytes per modeled second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Modeled serialization time of `bytes` on an otherwise idle channel.
    pub fn service_time(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.rate)
    }

    /// Reserve a transfer of `bytes` and return the modeled duration until
    /// it completes (queueing + serialization). Does not sleep.
    pub fn reserve(&self, bytes: usize) -> Duration {
        let service = self.service_time(bytes);
        // Queueing is tracked on the real clock but in modeled units scaled
        // by `scale` so that the queue drains at the same (real-time) rate at
        // which callers actually sleep.
        let real_service = self.scale.to_real(service);
        let now_ns = self.clock.now_ns();
        let service_ns = real_service.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut st = self.state.lock();
        let start_ns = match st.next_free_ns {
            Some(nf) if nf > now_ns => nf,
            _ => now_ns,
        };
        let done_ns = start_ns.saturating_add(service_ns);
        st.next_free_ns = Some(done_ns);
        let real_wait = Duration::from_nanos(done_ns - now_ns);
        // Convert the real wait back to modeled units for the caller.
        if self.scale.0 > 0.0 {
            real_wait.div_f64(self.scale.0)
        } else {
            // With an instant time scale there is no queueing: report pure
            // modeled service time for accounting purposes.
            service
        }
    }

    /// Reserve and sleep until the transfer completes. Returns the modeled
    /// duration of the whole operation (for accounting).
    pub fn transfer(&self, bytes: usize) -> Duration {
        let modeled = self.reserve(bytes);
        self.scale.sleep(modeled);
        modeled
    }
}

impl std::fmt::Debug for Governor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Governor")
            .field("rate", &self.rate)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov(rate: f64) -> Governor {
        Governor::new(rate, Duration::ZERO, TimeScale::instant())
    }

    #[test]
    fn service_time_is_linear_in_bytes() {
        let g = gov(1000.0);
        assert_eq!(g.service_time(1000), Duration::from_secs(1));
        assert_eq!(g.service_time(500), Duration::from_millis(500));
    }

    #[test]
    fn latency_is_added() {
        let g = Governor::new(1000.0, Duration::from_millis(5), TimeScale::instant());
        assert_eq!(g.service_time(0), Duration::from_millis(5));
    }

    #[test]
    fn instant_scale_reports_service_time() {
        let g = gov(1_000_000.0);
        let d = g.reserve(1_000_000);
        assert_eq!(d, Duration::from_secs(1));
    }

    #[test]
    fn queueing_accumulates_under_contention() {
        // With a realtime scale, two back-to-back reservations must queue.
        let g = Governor::new(1.0e9, Duration::ZERO, TimeScale::realtime());
        let a = g.reserve(100_000_000); // 100 ms of channel time
        let b = g.reserve(100_000_000);
        assert!(a >= Duration::from_millis(99), "first ~100ms, got {a:?}");
        assert!(b >= Duration::from_millis(199), "second queues, got {b:?}");
    }

    #[test]
    fn aggregate_rate_is_respected_across_threads() {
        use std::sync::Arc;
        let g = Arc::new(Governor::new(1.0e9, Duration::ZERO, TimeScale::realtime()));
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || g.transfer(25_000_000))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 * 25 MB at 1 GB/s = 100 ms minimum regardless of thread count.
        assert!(start.elapsed() >= Duration::from_millis(95));
    }

    #[test]
    fn coalesced_reservation_amortizes_per_op_latency() {
        // The batched-flush premise: N small reservations pay N per-op
        // latencies, one reservation for the same bytes pays exactly one.
        let lat = Duration::from_millis(1);
        let n = 16u32;
        let many = Governor::new(1.0e9, lat, TimeScale::instant());
        let summed: Duration = (0..n).map(|_| many.reserve(1000)).sum();
        let one = Governor::new(1.0e9, lat, TimeScale::instant());
        let coalesced = one.reserve(16_000);
        assert_eq!(summed, coalesced + lat * (n - 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = Governor::new(0.0, Duration::ZERO, TimeScale::instant());
    }

    #[test]
    fn virtual_clock_queueing_is_deterministic() {
        // On a virtual clock, reservation is a pure function of queue state:
        // exact results, no real time consulted.
        let clock = Arc::new(Clock::virtual_at(0));
        let g = Governor::with_clock(1000.0, Duration::ZERO, TimeScale::realtime(), clock.clone());
        assert_eq!(g.reserve(1000), Duration::from_secs(1));
        assert_eq!(g.reserve(1000), Duration::from_secs(2));
        // Advancing simulated time drains the queue.
        clock.advance(2_000_000_000);
        assert_eq!(g.reserve(1000), Duration::from_secs(1));
    }
}
