//! Interconnect model: per-rank NICs plus a shared bisection channel.
//!
//! A transfer from rank `a` to rank `b` occupies `a`'s NIC, `b`'s NIC, and
//! the bisection simultaneously; the transfer completes when the slowest of
//! the three reservations drains. Both the MPI simulator and the VeloC-style
//! asynchronous checkpoint flusher charge their traffic here, which is what
//! lets background checkpoint flushes congest application messaging.

use std::sync::Arc;
use std::time::Duration;

use crate::bandwidth::Governor;
use crate::clock::Clock;
use crate::TimeScale;

/// The modeled interconnect.
pub struct Network {
    nics: Vec<Governor>,
    bisection: Governor,
    scale: TimeScale,
}

impl Network {
    pub fn new(
        ranks: usize,
        nic_bandwidth: f64,
        bisection_bandwidth: f64,
        latency: Duration,
        scale: TimeScale,
    ) -> Self {
        Self::with_clock(
            ranks,
            nic_bandwidth,
            bisection_bandwidth,
            latency,
            scale,
            &Arc::new(Clock::wall()),
        )
    }

    /// Like [`Network::new`], but every governor tracks its queue on the
    /// given shared time source (the DES backend passes one virtual clock
    /// for the whole cluster).
    pub fn with_clock(
        ranks: usize,
        nic_bandwidth: f64,
        bisection_bandwidth: f64,
        latency: Duration,
        scale: TimeScale,
        clock: &Arc<Clock>,
    ) -> Self {
        let nics = (0..ranks)
            .map(|_| Governor::with_clock(nic_bandwidth, latency, scale, Arc::clone(clock)))
            .collect();
        Network {
            nics,
            bisection: Governor::with_clock(
                bisection_bandwidth,
                Duration::ZERO,
                scale,
                Arc::clone(clock),
            ),
            scale,
        }
    }

    pub fn ranks(&self) -> usize {
        self.nics.len()
    }

    /// Reserve a rank-to-rank transfer and return its modeled completion
    /// time. Does not sleep.
    pub fn reserve_transfer(&self, src: usize, dst: usize, bytes: usize) -> Duration {
        let s = self.nics[src].reserve(bytes);
        let d = self.nics[dst].reserve(bytes);
        let b = self.bisection.reserve(bytes);
        s.max(d).max(b)
    }

    /// Perform (sleep through) a rank-to-rank transfer. Returns the modeled
    /// duration for accounting.
    pub fn transfer(&self, src: usize, dst: usize, bytes: usize) -> Duration {
        let modeled = self.reserve_transfer(src, dst, bytes);
        self.scale.sleep(modeled);
        modeled
    }

    /// A one-sided egress reservation (e.g. a rank pushing checkpoint data
    /// toward storage): occupies only the source NIC and the bisection.
    pub fn egress(&self, src: usize, bytes: usize) -> Duration {
        let s = self.nics[src].reserve(bytes);
        let b = self.bisection.reserve(bytes);
        let modeled = s.max(b);
        self.scale.sleep(modeled);
        modeled
    }

    pub fn time_scale(&self) -> TimeScale {
        self.scale
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("ranks", &self.nics.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(ranks: usize) -> Network {
        Network::new(ranks, 1.0e9, 8.0e9, Duration::ZERO, TimeScale::instant())
    }

    #[test]
    fn transfer_time_bounded_by_slowest_resource() {
        let n = net(2);
        // 1 MB at 1 GB/s NIC = 1 ms; bisection is faster so NIC dominates.
        let d = n.reserve_transfer(0, 1, 1_000_000);
        assert_eq!(d, Duration::from_millis(1));
    }

    #[test]
    fn egress_does_not_touch_destination_nic() {
        let n = Network::new(2, 1.0e9, 8.0e9, Duration::ZERO, TimeScale::realtime());
        // Saturate rank 1's NIC...
        let _ = n.nics[1].reserve(100_000_000);
        // ...egress from rank 0 is unaffected.
        let d = n.egress(0, 1_000_000);
        assert!(d < Duration::from_millis(10), "egress delayed: {d:?}");
    }

    #[test]
    fn bisection_caps_aggregate() {
        // Tiny bisection: many pairs contend even with fast NICs.
        let n = Network::new(4, 100.0e9, 1.0e9, Duration::ZERO, TimeScale::realtime());
        let d1 = n.reserve_transfer(0, 1, 100_000_000); // 100 ms of bisection
        let d2 = n.reserve_transfer(2, 3, 100_000_000); // queues behind it
        assert!(d2 > d1, "second pair should queue on bisection");
    }
}
