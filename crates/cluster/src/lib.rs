//! Modeled HPC cluster resources.
//!
//! The paper evaluates on a 100-node Cray XC40 with an Aries interconnect and
//! a Lustre parallel filesystem. This crate provides laptop-scale synthetic
//! equivalents whose *contention structure* matches those resources:
//!
//! * [`bandwidth::Governor`] — a FIFO bandwidth reservation model. Any shared
//!   channel (a NIC, the filesystem's aggregate ingest bandwidth, the network
//!   bisection) is a governor; concurrent transfers queue and the channel
//!   delivers its configured rate in aggregate.
//! * [`net::Network`] — per-rank NIC governors plus a global bisection cap.
//!   Both the simulated MPI layer and the VeloC-style asynchronous checkpoint
//!   flusher draw from the *same* network, so background checkpoint traffic
//!   delays application messaging — the effect Figures 5 and 6 of the paper
//!   measure.
//! * [`pfs::ParallelFileSystem`] — a blob store fronted by a small, fixed
//!   number of I/O servers with fixed aggregate bandwidth (it does **not**
//!   scale with the number of compute ranks, which is what makes disk-based
//!   checkpointing bottleneck at scale).
//! * [`scratch::NodeScratch`] — per-node in-memory checkpoint staging, lost
//!   only when that node dies.
//! * [`relaunch::RelaunchModel`] — the cost of tearing down and restarting an
//!   entire MPI job, paid by non-Fenix recovery strategies.
//!
//! Modeled durations are converted to real sleeps through a [`TimeScale`] so
//! whole experiments finish in seconds.

pub mod bandwidth;
pub mod clock;
pub mod inject;
#[cfg(feature = "lint-mutants")]
pub mod mutant;
pub mod net;
pub mod pfs;
pub mod relaunch;
pub mod scratch;
pub mod topology;

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

pub use bandwidth::Governor;
pub use clock::Clock;
pub use inject::{FaultInjector, StorageTier};
pub use net::Network;
pub use pfs::ParallelFileSystem;
pub use relaunch::RelaunchModel;
pub use scratch::NodeScratch;
pub use topology::Topology;

/// A per-thread hook that consumes modeled durations instead of sleeping.
///
/// Under the discrete-event backend every modeled sleep must become a
/// virtual-time event: rank threads install a closure that parks the task
/// on the scheduler until the simulated clock reaches `now + modeled`, and
/// driver threads install one that advances the shared [`Clock`] directly.
/// The hook always receives the **modeled** (pre-[`TimeScale`]) duration.
pub type VirtualSleeper = Arc<dyn Fn(Duration) + Send + Sync>;

thread_local! {
    static VIRTUAL_SLEEPER: RefCell<Option<VirtualSleeper>> = const { RefCell::new(None) };
}

/// Install a [`VirtualSleeper`] on the current thread; the returned guard
/// restores the previous hook (usually none) when dropped, so a panicking
/// experiment cannot leak virtual-time behavior into an unrelated caller
/// reusing the thread.
pub fn install_virtual_sleeper(hook: VirtualSleeper) -> SleeperGuard {
    let prev = VIRTUAL_SLEEPER.with(|s| s.borrow_mut().replace(hook));
    SleeperGuard { prev }
}

/// Restores the previously installed [`VirtualSleeper`] on drop.
pub struct SleeperGuard {
    prev: Option<VirtualSleeper>,
}

impl Drop for SleeperGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        VIRTUAL_SLEEPER.with(|s| *s.borrow_mut() = prev);
    }
}

/// Route `modeled` to the current thread's virtual sleeper, if one is
/// installed. Returns `true` when the hook consumed the duration.
fn virtual_sleep(modeled: Duration) -> bool {
    let hook = VIRTUAL_SLEEPER.with(|s| s.borrow().clone());
    match hook {
        Some(hook) => {
            hook(modeled);
            true
        }
        None => false,
    }
}

/// Conversion factor between *modeled* time (what the cost models compute)
/// and *real* wall-clock time (what threads actually sleep).
///
/// A scale of `0.1` makes a modeled 100 ms transfer sleep 10 ms of real time.
/// `TimeScale::instant()` disables sleeping entirely (useful in unit tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeScale(pub f64);

impl TimeScale {
    /// No time is actually spent; modeled durations are only accounted.
    pub fn instant() -> Self {
        TimeScale(0.0)
    }

    /// Real time equals modeled time.
    pub fn realtime() -> Self {
        TimeScale(1.0)
    }

    /// Convert a modeled duration into the real duration to sleep.
    pub fn to_real(&self, modeled: Duration) -> Duration {
        modeled.mul_f64(self.0.max(0.0))
    }

    /// Sleep for the scaled equivalent of `modeled`.
    ///
    /// When the current thread carries a [`VirtualSleeper`] the modeled
    /// duration is handed to it *unscaled* and no real time passes — the
    /// DES backend turns every modeled sleep into a simulated-clock event.
    pub fn sleep(&self, modeled: Duration) {
        if virtual_sleep(modeled) {
            return;
        }
        let real = self.to_real(modeled);
        if !real.is_zero() {
            // lint: sanction(wall-clock, blocks): modeled time is burned as a
            // real scaled sleep; the DES scheduler replaces this with a
            // virtual-time event and the branch goes dead. audited 2026-08.
            std::thread::sleep(real);
        }
    }
}

impl Default for TimeScale {
    fn default() -> Self {
        // Default keeps modeled transfer times visible but small.
        TimeScale(0.05)
    }
}

/// Static description of the modeled machine.
///
/// Defaults are a scaled-down stand-in for the paper's platform: a fat
/// interconnect whose per-rank links are much faster than the *fixed*
/// aggregate filesystem bandwidth, and near-memcpy-speed node-local scratch.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of physical nodes.
    pub nodes: usize,
    /// Ranks placed on each node (the paper runs one rank per node).
    pub ranks_per_node: usize,
    /// Per-rank NIC bandwidth, bytes/second (modeled).
    pub nic_bandwidth: f64,
    /// Total network bisection bandwidth, bytes/second (modeled).
    pub bisection_bandwidth: f64,
    /// Per-message network latency (modeled).
    pub net_latency: Duration,
    /// Number of filesystem I/O servers (Lustre OSS equivalents).
    pub pfs_servers: usize,
    /// Aggregate filesystem bandwidth across all servers, bytes/second.
    pub pfs_bandwidth: f64,
    /// Per-filesystem-operation latency (modeled).
    pub pfs_latency: Duration,
    /// Node-local scratch (tmpfs) bandwidth, bytes/second.
    pub scratch_bandwidth: f64,
    /// Modeled→real time conversion.
    pub time_scale: TimeScale,
    /// Job relaunch cost model.
    pub relaunch: RelaunchModel,
    /// Drive every bandwidth governor from one shared virtual [`Clock`]
    /// instead of the wall. Set by the DES backend; implies
    /// `time_scale = realtime()` so governor queue bookkeeping (tracked in
    /// scaled nanoseconds) coincides with modeled nanoseconds and
    /// reservation math is an exact function of simulated time.
    pub virtual_time: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 8,
            ranks_per_node: 1,
            nic_bandwidth: 8.0e9,
            bisection_bandwidth: 64.0e9,
            net_latency: Duration::from_micros(2),
            pfs_servers: 2,
            pfs_bandwidth: 2.0e9,
            pfs_latency: Duration::from_micros(50),
            scratch_bandwidth: 40.0e9,
            time_scale: TimeScale::default(),
            relaunch: RelaunchModel::default(),
            virtual_time: false,
        }
    }
}

impl ClusterConfig {
    /// Total rank count implied by the topology.
    pub fn total_ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }
}

/// A fully assembled modeled cluster: topology plus all shared resources.
///
/// `Cluster` is cheap to clone (everything inside is reference counted) and
/// is shared by the MPI simulator, the checkpoint runtimes, and the
/// experiment harness. It survives simulated job relaunches: the harness
/// keeps the same `Cluster` across `Universe` launches so persistent and
/// node-local checkpoint state carries over, exactly like real storage does.
#[derive(Clone)]
pub struct Cluster {
    config: ClusterConfig,
    topology: Topology,
    network: Arc<Network>,
    pfs: Arc<ParallelFileSystem>,
    scratch: Arc<NodeScratch>,
    /// Storage-path fault hooks (chaos injection). Shared by every clone so
    /// an injector installed at launch is seen by all layers.
    injector: Arc<RwLock<Option<Arc<dyn FaultInjector>>>>,
    /// Time source shared by every governor: wall by default, one virtual
    /// clock for the whole cluster when `config.virtual_time` is set.
    clock: Arc<Clock>,
}

impl Cluster {
    pub fn new(mut config: ClusterConfig) -> Self {
        if config.virtual_time {
            // Governor queue state is kept in scaled nanoseconds; a 1:1
            // scale makes those coincide with modeled nanoseconds on the
            // shared virtual clock, so queueing math is exact and no real
            // sleep ever fires (every sleep routes to a VirtualSleeper).
            config.time_scale = TimeScale::realtime();
        }
        let clock = Arc::new(if config.virtual_time {
            Clock::virtual_at(0)
        } else {
            Clock::wall()
        });
        let topology = Topology::new(config.nodes, config.ranks_per_node);
        let network = Arc::new(Network::with_clock(
            topology.total_ranks(),
            config.nic_bandwidth,
            config.bisection_bandwidth,
            config.net_latency,
            config.time_scale,
            &clock,
        ));
        let pfs = Arc::new(ParallelFileSystem::with_clock(
            config.pfs_servers,
            config.pfs_bandwidth,
            config.pfs_latency,
            config.time_scale,
            &clock,
        ));
        let scratch = Arc::new(NodeScratch::with_clock(
            config.nodes,
            config.scratch_bandwidth,
            config.time_scale,
            &clock,
        ));
        Cluster {
            config,
            topology,
            network,
            pfs,
            scratch,
            injector: Arc::new(RwLock::new(None)),
            clock,
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    pub fn pfs(&self) -> &Arc<ParallelFileSystem> {
        &self.pfs
    }

    pub fn scratch(&self) -> &Arc<NodeScratch> {
        &self.scratch
    }

    pub fn time_scale(&self) -> TimeScale {
        self.config.time_scale
    }

    /// The cluster-wide time source. Virtual iff the cluster was built
    /// with [`ClusterConfig::virtual_time`].
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Install (or replace) the storage-path fault injector. The slot is
    /// shared by every clone of this cluster; pass `None` to clear it.
    pub fn set_injector(&self, injector: Option<Arc<dyn FaultInjector>>) {
        *self.injector.write() = injector;
    }

    /// The currently installed fault injector, if any.
    pub fn injector(&self) -> Option<Arc<dyn FaultInjector>> {
        self.injector.read().clone()
    }

    /// Simulate the failure of the node hosting `rank`: its scratch space is
    /// lost. (Persistent filesystem contents survive.)
    pub fn fail_node_of(&self, rank: usize) {
        let node = self.topology.node_of(rank);
        self.scratch.purge_node(node);
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.config.nodes)
            .field("ranks_per_node", &self.config.ranks_per_node)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scale_scales() {
        let ts = TimeScale(0.5);
        assert_eq!(
            ts.to_real(Duration::from_millis(100)),
            Duration::from_millis(50)
        );
    }

    #[test]
    fn instant_scale_is_zero() {
        let ts = TimeScale::instant();
        assert!(ts.to_real(Duration::from_secs(1000)).is_zero());
    }

    #[test]
    fn cluster_wires_topology() {
        let cfg = ClusterConfig {
            nodes: 4,
            ranks_per_node: 2,
            ..ClusterConfig::default()
        };
        let c = Cluster::new(cfg);
        assert_eq!(c.topology().total_ranks(), 8);
        assert_eq!(c.topology().node_of(7), 3);
    }

    #[test]
    fn fail_node_purges_scratch() {
        let cfg = ClusterConfig {
            time_scale: TimeScale::instant(),
            ..ClusterConfig::default()
        };
        let c = Cluster::new(cfg);
        c.scratch()
            .write(0, "ckpt", bytes::Bytes::from_static(b"x"));
        assert!(c.scratch().read(0, "ckpt").is_some());
        c.fail_node_of(0);
        assert!(c.scratch().read(0, "ckpt").is_none());
    }
}
