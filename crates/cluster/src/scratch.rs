//! Node-local scratch storage (tmpfs-like).
//!
//! The paper configures VeloC's scratch tier as "a filesystem folder mapped
//! to local memory", so the synchronous part of a checkpoint is just a memory
//! copy. Scratch contents are per-node: they survive the failure of *other*
//! nodes and even a full job relaunch (the node keeps running; only the
//! processes die), but are lost when their own node fails.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::RwLock;

use std::sync::Arc;

use crate::bandwidth::Governor;
use crate::clock::Clock;
use crate::TimeScale;

/// Per-node in-memory blob store with memory-speed bandwidth accounting.
pub struct NodeScratch {
    nodes: Vec<NodeStore>,
}

struct NodeStore {
    gov: Governor,
    blobs: RwLock<HashMap<String, Bytes>>,
}

impl NodeScratch {
    pub fn new(nodes: usize, bandwidth: f64, scale: TimeScale) -> Self {
        Self::with_clock(nodes, bandwidth, scale, &Arc::new(Clock::wall()))
    }

    /// Like [`NodeScratch::new`], with every node governor on the given
    /// shared time source.
    pub fn with_clock(nodes: usize, bandwidth: f64, scale: TimeScale, clock: &Arc<Clock>) -> Self {
        NodeScratch {
            nodes: (0..nodes)
                .map(|_| NodeStore {
                    gov: Governor::with_clock(bandwidth, Duration::ZERO, scale, Arc::clone(clock)),
                    blobs: RwLock::new(HashMap::new()),
                })
                .collect(),
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, node: usize) -> &NodeStore {
        &self.nodes[node]
    }

    /// Store a blob on `node`, paying the modeled memory-copy time.
    pub fn write(&self, node: usize, path: &str, data: Bytes) -> Duration {
        let n = self.node(node);
        let d = n.gov.transfer(data.len());
        n.blobs.write().insert(path.to_owned(), data);
        d
    }

    /// Read a blob from `node`.
    pub fn read(&self, node: usize, path: &str) -> Option<(Bytes, Duration)> {
        let n = self.node(node);
        let data = n.blobs.read().get(path).cloned()?;
        let d = n.gov.transfer(data.len());
        Some((data, d))
    }

    pub fn exists(&self, node: usize, path: &str) -> bool {
        self.node(node).blobs.read().contains_key(path)
    }

    pub fn remove(&self, node: usize, path: &str) -> bool {
        self.node(node).blobs.write().remove(path).is_some()
    }

    /// List blobs on `node` with the given prefix.
    pub fn list(&self, node: usize, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .node(node)
            .blobs
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Node failure: all scratch contents on `node` vanish.
    pub fn purge_node(&self, node: usize) {
        self.node(node).blobs.write().clear();
    }

    /// Drop everything (between harness experiments).
    pub fn clear(&self) {
        for n in &self.nodes {
            n.blobs.write().clear();
        }
    }

    pub fn stored_bytes(&self, node: usize) -> usize {
        self.node(node).blobs.read().values().map(|b| b.len()).sum()
    }
}

impl std::fmt::Debug for NodeScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeScratch")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(nodes: usize) -> NodeScratch {
        NodeScratch::new(nodes, 1.0e12, TimeScale::instant())
    }

    #[test]
    fn per_node_isolation() {
        let s = scratch(2);
        s.write(0, "x", Bytes::from_static(b"a"));
        assert!(s.exists(0, "x"));
        assert!(!s.exists(1, "x"));
    }

    #[test]
    fn purge_only_affects_one_node() {
        let s = scratch(2);
        s.write(0, "x", Bytes::from_static(b"a"));
        s.write(1, "x", Bytes::from_static(b"b"));
        s.purge_node(0);
        assert!(!s.exists(0, "x"));
        assert!(s.exists(1, "x"));
    }

    #[test]
    fn list_is_sorted_and_filtered() {
        let s = scratch(1);
        s.write(0, "v2", Bytes::new());
        s.write(0, "v1", Bytes::new());
        s.write(0, "w1", Bytes::new());
        assert_eq!(s.list(0, "v"), vec!["v1", "v2"]);
    }

    #[test]
    fn stored_bytes_counts() {
        let s = scratch(1);
        s.write(0, "a", Bytes::from(vec![0u8; 10]));
        s.write(0, "b", Bytes::from(vec![0u8; 5]));
        assert_eq!(s.stored_bytes(0), 15);
    }
}
