//! Parallel filesystem model.
//!
//! A small, fixed pool of I/O servers fronts a persistent blob store. Writers
//! are striped across servers by path hash; each server is a bandwidth
//! governor, so the filesystem's aggregate ingest rate is fixed regardless of
//! how many compute ranks write simultaneously. That fixed ceiling is what
//! bottlenecks disk-based checkpointing in the paper's Figure 5 while also
//! bounding the congestion it can generate.
//!
//! Contents survive simulated job relaunches and node failures — the harness
//! holds the same `ParallelFileSystem` across `Universe` launches.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::RwLock;

use std::sync::Arc;

use crate::bandwidth::Governor;
use crate::clock::Clock;
use crate::TimeScale;

/// Persistent, bandwidth-limited blob storage.
pub struct ParallelFileSystem {
    servers: Vec<Governor>,
    store: RwLock<HashMap<String, Bytes>>,
}

impl ParallelFileSystem {
    /// `aggregate_bandwidth` is split evenly across `servers` governors.
    pub fn new(
        servers: usize,
        aggregate_bandwidth: f64,
        latency: Duration,
        scale: TimeScale,
    ) -> Self {
        Self::with_clock(
            servers,
            aggregate_bandwidth,
            latency,
            scale,
            &Arc::new(Clock::wall()),
        )
    }

    /// Like [`ParallelFileSystem::new`], with every server governor on the
    /// given shared time source.
    pub fn with_clock(
        servers: usize,
        aggregate_bandwidth: f64,
        latency: Duration,
        scale: TimeScale,
        clock: &Arc<Clock>,
    ) -> Self {
        assert!(servers > 0, "need at least one I/O server");
        let per_server = aggregate_bandwidth / servers as f64;
        ParallelFileSystem {
            servers: (0..servers)
                .map(|_| Governor::with_clock(per_server, latency, scale, Arc::clone(clock)))
                .collect(),
            store: RwLock::new(HashMap::new()),
        }
    }

    fn server_for(&self, path: &str) -> &Governor {
        let mut h = DefaultHasher::new();
        path.hash(&mut h);
        &self.servers[(h.finish() as usize) % self.servers.len()]
    }

    /// Write a blob, paying the modeled transfer time on the responsible
    /// server. Returns the modeled duration.
    pub fn write(&self, path: &str, data: Bytes) -> Duration {
        let d = self.server_for(path).transfer(data.len());
        self.store.write().insert(path.to_owned(), data);
        d
    }

    /// Read a blob, paying the modeled transfer time.
    pub fn read(&self, path: &str) -> Option<(Bytes, Duration)> {
        let data = self.store.read().get(path).cloned()?;
        let d = self.server_for(path).transfer(data.len());
        Some((data, d))
    }

    /// Whether a blob exists (metadata query; free).
    pub fn exists(&self, path: &str) -> bool {
        self.store.read().contains_key(path)
    }

    /// Remove a blob. Returns whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.store.write().remove(path).is_some()
    }

    /// List stored paths with the given prefix (metadata query; free).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .store
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Total stored bytes (for tests and reporting).
    pub fn stored_bytes(&self) -> usize {
        self.store.read().values().map(|b| b.len()).sum()
    }

    /// Drop all contents (between harness experiments).
    pub fn clear(&self) {
        self.store.write().clear();
    }
}

impl std::fmt::Debug for ParallelFileSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelFileSystem")
            .field("servers", &self.servers.len())
            .field("blobs", &self.store.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> ParallelFileSystem {
        ParallelFileSystem::new(2, 1.0e9, Duration::ZERO, TimeScale::instant())
    }

    #[test]
    fn write_read_roundtrip() {
        let p = pfs();
        p.write("a/b", Bytes::from_static(b"hello"));
        let (data, _) = p.read("a/b").unwrap();
        assert_eq!(&data[..], b"hello");
    }

    #[test]
    fn read_missing_is_none() {
        assert!(pfs().read("nope").is_none());
    }

    #[test]
    fn list_filters_by_prefix() {
        let p = pfs();
        p.write("ckpt/1/r0", Bytes::new());
        p.write("ckpt/1/r1", Bytes::new());
        p.write("other", Bytes::new());
        assert_eq!(p.list("ckpt/1/"), vec!["ckpt/1/r0", "ckpt/1/r1"]);
    }

    #[test]
    fn remove_and_exists() {
        let p = pfs();
        p.write("x", Bytes::from_static(b"1"));
        assert!(p.exists("x"));
        assert!(p.remove("x"));
        assert!(!p.exists("x"));
        assert!(!p.remove("x"));
    }

    #[test]
    fn overwrite_replaces() {
        let p = pfs();
        p.write("x", Bytes::from_static(b"old"));
        p.write("x", Bytes::from_static(b"new"));
        assert_eq!(&p.read("x").unwrap().0[..], b"new");
        assert_eq!(p.stored_bytes(), 3);
    }

    #[test]
    fn aggregate_bandwidth_is_fixed() {
        // One server at 1 GB/s: two 100 MB writes to the same stripe queue.
        let p = ParallelFileSystem::new(1, 1.0e9, Duration::ZERO, TimeScale::realtime());
        let d1 = p.write("a", Bytes::from(vec![0u8; 50_000_000]));
        let d2 = p.write("a", Bytes::from(vec![0u8; 50_000_000]));
        assert!(d2 >= d1, "second write should observe queueing");
    }
}
