//! Parallel filesystem model.
//!
//! A small, fixed pool of I/O servers fronts a persistent blob store. Writers
//! are striped across servers by path hash; each server is a bandwidth
//! governor, so the filesystem's aggregate ingest rate is fixed regardless of
//! how many compute ranks write simultaneously. That fixed ceiling is what
//! bottlenecks disk-based checkpointing in the paper's Figure 5 while also
//! bounding the congestion it can generate.
//!
//! Contents survive simulated job relaunches and node failures — the harness
//! holds the same `ParallelFileSystem` across `Universe` launches.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::RwLock;

use std::sync::Arc;

use crate::bandwidth::Governor;
use crate::clock::Clock;
use crate::TimeScale;

/// Persistent, bandwidth-limited blob storage.
pub struct ParallelFileSystem {
    servers: Vec<Governor>,
    store: RwLock<HashMap<String, Bytes>>,
    scale: TimeScale,
}

impl ParallelFileSystem {
    /// `aggregate_bandwidth` is split evenly across `servers` governors.
    pub fn new(
        servers: usize,
        aggregate_bandwidth: f64,
        latency: Duration,
        scale: TimeScale,
    ) -> Self {
        Self::with_clock(
            servers,
            aggregate_bandwidth,
            latency,
            scale,
            &Arc::new(Clock::wall()),
        )
    }

    /// Like [`ParallelFileSystem::new`], with every server governor on the
    /// given shared time source.
    pub fn with_clock(
        servers: usize,
        aggregate_bandwidth: f64,
        latency: Duration,
        scale: TimeScale,
        clock: &Arc<Clock>,
    ) -> Self {
        assert!(servers > 0, "need at least one I/O server");
        let per_server = aggregate_bandwidth / servers as f64;
        ParallelFileSystem {
            servers: (0..servers)
                .map(|_| Governor::with_clock(per_server, latency, scale, Arc::clone(clock)))
                .collect(),
            store: RwLock::new(HashMap::new()),
            scale,
        }
    }

    fn server_idx(&self, path: &str) -> usize {
        let mut h = DefaultHasher::new();
        path.hash(&mut h);
        (h.finish() as usize) % self.servers.len()
    }

    fn server_for(&self, path: &str) -> &Governor {
        &self.servers[self.server_idx(path)]
    }

    /// Write a blob, paying the modeled transfer time on the responsible
    /// server. Returns the modeled duration.
    pub fn write(&self, path: &str, data: Bytes) -> Duration {
        let d = self.server_for(path).transfer(data.len());
        self.store.write().insert(path.to_owned(), data);
        d
    }

    /// Write several blobs as one coalesced operation. Each responsible
    /// server makes a *single* reservation for its whole share of the batch
    /// — one per-operation latency per server instead of one per blob — and
    /// the servers ingest in parallel, so the caller sleeps only the slowest
    /// server's duration (which is returned). Small-blob flush storms
    /// (many tiny regions checkpointed per step) amortize to near the cost
    /// of one large write.
    pub fn write_batch(&self, items: Vec<(String, Bytes)>) -> Duration {
        let mut bytes_per_server = vec![0usize; self.servers.len()];
        let mut blobs_per_server = vec![0usize; self.servers.len()];
        for (path, data) in &items {
            let idx = self.server_idx(path);
            bytes_per_server[idx] += data.len();
            blobs_per_server[idx] += 1;
        }
        let mut worst = Duration::ZERO;
        for (idx, server) in self.servers.iter().enumerate() {
            if blobs_per_server[idx] > 0 {
                worst = worst.max(server.reserve(bytes_per_server[idx]));
            }
        }
        self.scale.sleep(worst);
        let mut store = self.store.write();
        for (path, data) in items {
            store.insert(path, data);
        }
        worst
    }

    /// Read a blob, paying the modeled transfer time.
    pub fn read(&self, path: &str) -> Option<(Bytes, Duration)> {
        let data = self.store.read().get(path).cloned()?;
        let d = self.server_for(path).transfer(data.len());
        Some((data, d))
    }

    /// Whether a blob exists (metadata query; free).
    pub fn exists(&self, path: &str) -> bool {
        self.store.read().contains_key(path)
    }

    /// Remove a blob. Returns whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.store.write().remove(path).is_some()
    }

    /// List stored paths with the given prefix (metadata query; free).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .store
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Total stored bytes (for tests and reporting).
    pub fn stored_bytes(&self) -> usize {
        self.store.read().values().map(|b| b.len()).sum()
    }

    /// Drop all contents (between harness experiments).
    pub fn clear(&self) {
        self.store.write().clear();
    }
}

impl std::fmt::Debug for ParallelFileSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelFileSystem")
            .field("servers", &self.servers.len())
            .field("blobs", &self.store.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> ParallelFileSystem {
        ParallelFileSystem::new(2, 1.0e9, Duration::ZERO, TimeScale::instant())
    }

    #[test]
    fn write_read_roundtrip() {
        let p = pfs();
        p.write("a/b", Bytes::from_static(b"hello"));
        let (data, _) = p.read("a/b").unwrap();
        assert_eq!(&data[..], b"hello");
    }

    #[test]
    fn read_missing_is_none() {
        assert!(pfs().read("nope").is_none());
    }

    #[test]
    fn list_filters_by_prefix() {
        let p = pfs();
        p.write("ckpt/1/r0", Bytes::new());
        p.write("ckpt/1/r1", Bytes::new());
        p.write("other", Bytes::new());
        assert_eq!(p.list("ckpt/1/"), vec!["ckpt/1/r0", "ckpt/1/r1"]);
    }

    #[test]
    fn remove_and_exists() {
        let p = pfs();
        p.write("x", Bytes::from_static(b"1"));
        assert!(p.exists("x"));
        assert!(p.remove("x"));
        assert!(!p.exists("x"));
        assert!(!p.remove("x"));
    }

    #[test]
    fn overwrite_replaces() {
        let p = pfs();
        p.write("x", Bytes::from_static(b"old"));
        p.write("x", Bytes::from_static(b"new"));
        assert_eq!(&p.read("x").unwrap().0[..], b"new");
        assert_eq!(p.stored_bytes(), 3);
    }

    #[test]
    fn write_batch_stores_everything_and_coalesces_latency() {
        // One server with a visible per-op latency: a 16-blob batch must pay
        // the latency once, not sixteen times.
        let lat = Duration::from_millis(1);
        let p = ParallelFileSystem::new(1, 1.0e9, lat, TimeScale::instant());
        let items: Vec<(String, Bytes)> = (0..16)
            .map(|i| (format!("ck/v1/r{i}"), Bytes::from(vec![i as u8; 1000])))
            .collect();
        let d = p.write_batch(items);
        assert_eq!(p.list("ck/v1/").len(), 16);
        assert_eq!(&p.read("ck/v1/r3").unwrap().0[..], &[3u8; 1000][..]);
        // Exactly one reservation: latency + 16 KB / 1 GB/s.
        assert_eq!(d, lat + Duration::from_nanos(16_000));
    }

    #[test]
    fn empty_batch_is_free() {
        let p = ParallelFileSystem::new(2, 1.0e9, Duration::from_millis(1), TimeScale::instant());
        assert_eq!(p.write_batch(Vec::new()), Duration::ZERO);
        assert_eq!(p.stored_bytes(), 0);
    }

    #[test]
    fn batch_spreads_across_servers() {
        // Two servers: the batch duration is the slowest server's share,
        // not the sum — servers ingest in parallel.
        let p = ParallelFileSystem::new(2, 2.0e9, Duration::ZERO, TimeScale::instant());
        let items: Vec<(String, Bytes)> = (0..32)
            .map(|i| (format!("b/{i}"), Bytes::from(vec![0u8; 1_000_000])))
            .collect();
        let total: usize = 32 * 1_000_000;
        let d = p.write_batch(items);
        // All on one 1 GB/s server would be 32 ms; a perfect split is 16 ms.
        // Either way the parallel-ingest bound holds: d <= total / per_server
        // and d < sum-of-sequential-writes.
        assert!(d <= Duration::from_secs_f64(total as f64 / 1.0e9));
        assert_eq!(p.stored_bytes(), total);
    }

    #[test]
    fn aggregate_bandwidth_is_fixed() {
        // One server at 1 GB/s: two 100 MB writes to the same stripe queue.
        let p = ParallelFileSystem::new(1, 1.0e9, Duration::ZERO, TimeScale::realtime());
        let d1 = p.write("a", Bytes::from(vec![0u8; 50_000_000]));
        let d2 = p.write("a", Bytes::from(vec![0u8; 50_000_000]));
        assert!(d2 >= d1, "second write should observe queueing");
    }
}
