//! Storage/backend fault injection hooks.
//!
//! The chaos engine (`crates/chaos`) needs to corrupt checkpoint blobs and
//! kill flush workers *inside* the storage path, deterministically and
//! without the storage layers knowing who is doing the injecting. This
//! module defines the seam: a [`FaultInjector`] installed on the
//! [`crate::Cluster`] (shared by every clone) that the VeloC client and its
//! flush backend consult at each write and at each worker lifecycle point.
//!
//! Every hook has a no-op default, so a plain `FaultPlan` — kills only —
//! implements the trait for free and production runs pay nothing beyond an
//! `RwLock` read of an empty slot.

use bytes::Bytes;

/// Which checkpoint storage tier a write is headed for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageTier {
    /// Node-local scratch (lost with the node).
    Scratch,
    /// The parallel filesystem (survives node failures).
    Pfs,
}

impl std::fmt::Display for StorageTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageTier::Scratch => f.write_str("scratch"),
            StorageTier::Pfs => f.write_str("pfs"),
        }
    }
}

/// Deterministic fault hooks consulted by the storage path.
///
/// Implementations must be idempotent-safe: the same hook may be consulted
/// from relaunched jobs, so "fire at most once" bookkeeping belongs to the
/// implementor (the pattern `simmpi`'s kill plan already uses).
pub trait FaultInjector: Send + Sync {
    /// Offered the blob about to be written to `path` on `tier`. Return
    /// `Some(corrupted)` to replace it, `None` to leave it untouched.
    fn corrupt_write(&self, tier: StorageTier, path: &str, blob: &Bytes) -> Option<Bytes> {
        let _ = (tier, path, blob);
        None
    }

    /// Whether the asynchronous flush backend of `rank` should fail to
    /// spawn its worker thread.
    fn backend_spawn_fails(&self, rank: usize) -> bool {
        let _ = rank;
        false
    }

    /// Whether `rank`'s flush worker should die now, having completed
    /// `completed` flushes. Consulted between jobs, never mid-flush — an
    /// acknowledged checkpoint is still flushed by the caller inline.
    fn flush_worker_dies(&self, rank: usize, completed: u64) -> bool {
        let _ = (rank, completed);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl FaultInjector for Noop {}

    #[test]
    fn default_hooks_are_inert() {
        let n = Noop;
        assert!(n
            .corrupt_write(StorageTier::Scratch, "ck/v1/r0", &Bytes::from_static(b"x"))
            .is_none());
        assert!(!n.backend_spawn_fails(0));
        assert!(!n.flush_worker_dies(0, 3));
        assert_eq!(StorageTier::Scratch.to_string(), "scratch");
        assert_eq!(StorageTier::Pfs.to_string(), "pfs");
    }
}
