//! Seeded effect violations, compiled only under the `lint-mutants`
//! feature (mirroring `crates/fenix/src/mutant.rs`).
//!
//! `crates/lint/tests/mutant.rs` proves the effect engine catches the
//! wall-clock sleep below *interprocedurally* — the sleep hides two helper
//! hops below the rank entry point — and that it stays invisible without
//! the opt-in, so the default workspace scan remains clean.

/// A rank entry point by name (`Governor::transfer` roots the
/// `rank-path-effects` traversal) whose effect site is two calls away.
#[cfg(feature = "lint-mutants")]
pub struct Governor;

#[cfg(feature = "lint-mutants")]
impl Governor {
    pub fn transfer(&self, bytes: usize) -> usize {
        self.warmup_settle(bytes)
    }

    /// First hop: still clean — only the helper below misbehaves.
    fn warmup_settle(&self, bytes: usize) -> usize {
        self.warmup_backoff();
        bytes
    }

    /// BUG (on purpose): burns real wall-clock time on the transfer path —
    /// exactly the effect class the DES migration must exclude, and
    /// invisible to any per-file rule because the entry point is clean.
    fn warmup_backoff(&self) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
