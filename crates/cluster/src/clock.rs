//! Governor-owned time source.
//!
//! The bandwidth layer used to read `Instant::now()` inline inside
//! [`crate::Governor::reserve`], which welded the queueing model to the
//! machine's wall clock. `Clock` hoists that read behind an interface with
//! two implementations:
//!
//! * [`Clock::wall`] — the production source; the **only** sanctioned
//!   wall-clock read on the bandwidth path lives in [`Clock::now_ns`].
//! * [`Clock::virtual_at`] — a manually advanced counter. A discrete-event
//!   scheduler owns one of these, shares it across every governor, and
//!   advances it as events fire; reservation math becomes a pure function
//!   of `(state, now_ns)` with no real-time dependence at all.
//!
//! Times are nanoseconds since the clock's epoch. A `u64` of nanoseconds
//! spans ~584 years, far beyond any campaign.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock: real (wall) or simulated (virtual).
pub enum Clock {
    /// Reads the machine's monotonic clock, offset from a fixed epoch.
    Wall { epoch: Instant },
    /// A counter advanced explicitly by a scheduler; never touches the OS.
    Virtual { now_ns: AtomicU64 },
}

impl Clock {
    /// A wall clock whose epoch is the moment of construction.
    pub fn wall() -> Self {
        // lint: sanction(wall-clock): epoch capture for the governor clock;
        // the one place the bandwidth layer is allowed to touch real time.
        // Virtual clocks never reach this. audited 2026-08.
        Clock::Wall {
            epoch: Instant::now(),
        }
    }

    /// A virtual clock starting at `now_ns` nanoseconds.
    pub fn virtual_at(now_ns: u64) -> Self {
        Clock::Virtual {
            now_ns: AtomicU64::new(now_ns),
        }
    }

    /// Nanoseconds since this clock's epoch.
    pub fn now_ns(&self) -> u64 {
        match self {
            // lint: sanction(wall-clock): the single sanctioned wall read on
            // the bandwidth path; the DES scheduler swaps in Clock::Virtual
            // and this arm goes dead. audited 2026-08.
            Clock::Wall { epoch } => epoch.elapsed().as_nanos() as u64,
            Clock::Virtual { now_ns } => now_ns.load(Ordering::Acquire),
        }
    }

    /// Advance a virtual clock by `delta_ns`; returns the new time.
    ///
    /// # Panics
    ///
    /// Panics on a wall clock — real time cannot be pushed forward.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        match self {
            Clock::Wall { .. } => panic!("cannot advance a wall clock"),
            Clock::Virtual { now_ns } => now_ns.fetch_add(delta_ns, Ordering::AcqRel) + delta_ns,
        }
    }

    /// True for [`Clock::Virtual`].
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual { .. })
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Clock::Wall { .. } => f.write_str("Clock::Wall"),
            Clock::Virtual { now_ns } => f
                .debug_struct("Clock::Virtual")
                .field("now_ns", &now_ns.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = Clock::wall();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let c = Clock::virtual_at(100);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_ns(), 150);
        assert!(c.is_virtual());
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn advancing_wall_clock_panics() {
        Clock::wall().advance(1);
    }
}
