//! Pluggable data backends — the paper's Future Work §VII.A realized:
//! "adding a new backend tier to Kokkos Resilience … would enable even more
//! simplification and open the door for more process resilience strategies."
//!
//! A [`DataBackend`] stores and restores the classified views of a
//! checkpoint region. The built-in [`VelocBackend`] wraps the VeloC client
//! in either agreement mode; the `resilience` crate provides an in-memory
//! redundancy backend on top of Fenix data groups. Each backend owns its
//! best-version agreement (`latest_agreed`); the default is the manual
//! min-reduction of the paper's single-mode pattern.

use std::sync::Arc;

use cluster::Cluster;
use kokkos::capture::Checkpointable;
use simmpi::{Comm, MpiError, MpiResult};
use telemetry::Recorder;
use veloc::{Client, Config as VelocConfig, Mode, Protected, VelocError};

/// A classified region's checkpointed views, in stable detection order.
pub type RegionViews = [(u32, Arc<dyn Checkpointable>)];

/// Storage driver for checkpoint regions.
pub trait DataBackend: Send {
    /// Update the logical rank used for checkpoint naming/placement
    /// (called on context creation and after every reset).
    fn set_rank(&self, rank: usize);

    /// Store `views` as version `version` of region `name`. `comm` is the
    /// current resilient communicator (peer-storage backends communicate).
    fn checkpoint(
        &self,
        comm: &Comm,
        name: &str,
        version: u64,
        views: &RegionViews,
    ) -> MpiResult<()>;

    /// Newest version of `name` reachable with local knowledge only.
    fn latest_local(&self, name: &str) -> Option<u64>;

    /// Collective best-version agreement. The default is the paper's
    /// manual reduction for non-collective storage: the newest version
    /// available on *every* rank (min over each rank's newest). Backends
    /// with different reachability rules override it — collective VeloC
    /// agrees internally; peer-memory IMR takes the max, because a
    /// replacement rank (with no local copy) restores from its buddy.
    fn latest_agreed(&self, comm: &Comm, name: &str) -> MpiResult<Option<u64>> {
        self.latest_agreed_below(comm, name, u64::MAX)
    }

    /// [`Self::latest_agreed`] restricted to versions `<= bound`. Restart
    /// logic uses this when the newest agreed version leaves no iterations
    /// to replay (a kill at the final commit), so the lazy region-scoped
    /// restore would never fire: re-agreeing below the final version lands
    /// recovery inside the iteration space. The default bounds the
    /// min-reduction; backends with richer version indexes override it.
    fn latest_agreed_below(&self, comm: &Comm, name: &str, bound: u64) -> MpiResult<Option<u64>> {
        let local = self
            .latest_local(name)
            .filter(|&v| v <= bound)
            .map_or(-1i64, |v| v as i64);
        let min = comm.allreduce_scalar(local, simmpi::ReduceOp::Min)?;
        Ok((min >= 0).then_some(min as u64))
    }

    /// Restore `views` from version `version` of region `name`.
    /// `recovering_ranks` lists the communicator ranks that lost their
    /// state (peer-storage backends serve them from surviving copies).
    fn restore(
        &self,
        comm: &Comm,
        name: &str,
        version: u64,
        views: &RegionViews,
        recovering_ranks: &[usize],
    ) -> MpiResult<()>;

    /// Block until asynchronous operations complete.
    fn wait(&self) {}

    /// Clear cached protection state (context reset).
    fn clear(&self) {}

    /// Attach a telemetry recorder for storage-layer lifecycle events.
    /// Backends with nothing to trace keep the default no-op.
    fn set_recorder(&self, rec: Recorder) {
        let _ = rec;
    }
}

/// Adapter: a captured view as a VeloC protected region.
struct ViewRegion(Arc<dyn Checkpointable>);

impl Protected for ViewRegion {
    fn snapshot(&self) -> bytes::Bytes {
        self.0.snapshot()
    }

    fn restore(&self, data: &[u8]) {
        self.0.restore(data);
    }

    fn byte_len(&self) -> usize {
        self.0.meta().bytes
    }

    fn generation(&self) -> Option<u64> {
        // Forwarding the view's allocation stamp (rather than minting one
        // per wrapper) is what lets delta chains survive the re-wrap that
        // every checkpoint's `protect` performs.
        self.0.generation()
    }

    fn snapshot_into(&self, out: &mut [u8]) -> bool {
        // Forward so the view's direct-copy path (no intermediate `Bytes`)
        // survives the trait-object hop into the zero-copy pack.
        self.0.snapshot_into(out)
    }
}

/// The VeloC-based backend (both agreement modes).
pub struct VelocBackend {
    client: Client,
}

impl VelocBackend {
    pub fn new(cluster: &Cluster, physical_rank: usize, mode: Mode) -> Self {
        VelocBackend {
            client: Client::init(
                cluster.clone(),
                physical_rank,
                VelocConfig {
                    mode,
                    async_flush: true,
                },
            ),
        }
    }

    fn protect(&self, views: &RegionViews) {
        // Replace the whole protection table atomically; the fresh wrappers
        // still forward each view's allocation stamp, so re-registering the
        // same views keeps their delta chains alive.
        self.client.protect_exact(
            views
                .iter()
                .map(|(id, handle)| {
                    (
                        *id,
                        Arc::new(ViewRegion(Arc::clone(handle))) as Arc<dyn Protected>,
                    )
                })
                .collect(),
        );
    }

    fn unwrap_veloc<T>(r: Result<T, VelocError>) -> MpiResult<T> {
        r.map_err(|e| match e {
            VelocError::Mpi(m) => m,
            // Local, non-MPI failures: no recovery layer can claim these, so
            // the job aborts — through the error channel, not a panic that
            // would strand the surviving ranks in their collectives.
            VelocError::NotFound { .. }
            | VelocError::Corrupt { .. }
            | VelocError::UnknownRegion { .. }
            | VelocError::NoCommunicator
            | VelocError::BackendSpawn { .. } => MpiError::Aborted,
        })
    }
}

impl DataBackend for VelocBackend {
    fn set_rank(&self, rank: usize) {
        self.client.set_rank(rank);
    }

    fn checkpoint(
        &self,
        _comm: &Comm,
        name: &str,
        version: u64,
        views: &RegionViews,
    ) -> MpiResult<()> {
        self.protect(views);
        Self::unwrap_veloc(self.client.checkpoint(name, version))
    }

    fn latest_local(&self, name: &str) -> Option<u64> {
        self.client.latest_version(name)
    }

    fn latest_agreed_below(&self, comm: &Comm, name: &str, bound: u64) -> MpiResult<Option<u64>> {
        // Both modes agree on the newest *intact* version: the paper's
        // manual min-reduction picks the newest version available
        // everywhere, but an agreed-and-corrupt blob would wedge restart —
        // the hardened agreement degrades to an older verified version.
        Self::unwrap_veloc(
            self.client
                .agree_intact_version_below(name, bound, Some(comm)),
        )
    }

    fn restore(
        &self,
        _comm: &Comm,
        name: &str,
        version: u64,
        views: &RegionViews,
        _recovering_ranks: &[usize],
    ) -> MpiResult<()> {
        self.protect(views);
        Self::unwrap_veloc(self.client.restart(name, version)).map(|_| ())
    }

    fn wait(&self) {
        self.client.checkpoint_wait();
    }

    fn clear(&self) {
        self.client.checkpoint_wait();
        self.client.clear_protected();
        // A context reset means recovery may roll this rank back; any
        // remembered delta base is a base it can no longer assume it holds.
        self.client.invalidate_deltas();
    }

    fn set_recorder(&self, rec: Recorder) {
        self.client.set_recorder(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, TimeScale};
    use kokkos::View;

    fn cluster() -> Cluster {
        let cfg = ClusterConfig {
            nodes: 1,
            time_scale: TimeScale::instant(),
            ..ClusterConfig::default()
        };
        Cluster::new(cfg)
    }

    fn views(v: &View<u64>) -> Vec<(u32, Arc<dyn Checkpointable>)> {
        vec![(0, Arc::new(v.clone()))]
    }

    #[test]
    fn unwrap_veloc_forwards_mpi_and_aborts_local_failures() {
        assert!(matches!(
            VelocBackend::unwrap_veloc::<()>(Err(VelocError::Mpi(MpiError::Revoked))),
            Err(MpiError::Revoked)
        ));
        assert!(matches!(
            VelocBackend::unwrap_veloc::<()>(Err(VelocError::Corrupt { path: "p".into() })),
            Err(MpiError::Aborted)
        ));
        assert_eq!(VelocBackend::unwrap_veloc(Ok(1)).unwrap(), 1);
    }

    #[test]
    fn veloc_backend_roundtrip_without_comm() {
        // Single-rank smoke test: store, clobber, restore.
        let c = cluster();
        let backend = VelocBackend::new(&c, 0, Mode::Single);
        let v: View<u64> = View::from_vec("data", vec![5, 6, 7]);
        let region = views(&v);
        // A dummy single-rank comm for the API.
        let router = simmpi::router::Router::new(c.clone());
        let comm = simmpi::Comm::from_group(router, 1, 0, Arc::new(vec![0]), 0);
        backend.checkpoint(&comm, "bk", 3, &region).unwrap();
        backend.wait();
        assert_eq!(backend.latest_local("bk"), Some(3));
        v.fill(0);
        backend.restore(&comm, "bk", 3, &region, &[]).unwrap();
        assert_eq!(*v.read_uncaptured(), vec![5, 6, 7]);
    }

    #[test]
    fn default_agreement_is_min_reduction() {
        // On a single-rank comm the default agreement is just latest_local.
        let c = cluster();
        let backend = VelocBackend::new(&c, 0, Mode::Single);
        let router = simmpi::router::Router::new(c.clone());
        let comm = simmpi::Comm::from_group(router, 1, 0, Arc::new(vec![0]), 0);
        assert_eq!(backend.latest_agreed(&comm, "none").unwrap(), None);
    }
}
