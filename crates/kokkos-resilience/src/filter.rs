//! Checkpoint-interval filters ("checkpoint at user-configured intervals").

/// Decides, per region execution, whether to take a checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointFilter {
    /// Never checkpoint (reference configurations).
    Never,
    /// Checkpoint when `iteration % n == n - 1` (i.e. after every `n`-th
    /// execution, counting from 0).
    EveryN(u64),
    /// Checkpoint after every execution.
    Always,
}

impl CheckpointFilter {
    /// Should iteration `iteration` end with a checkpoint?
    pub fn should_checkpoint(&self, iteration: u64) -> bool {
        match self {
            CheckpointFilter::Never => false,
            CheckpointFilter::EveryN(n) => {
                debug_assert!(*n > 0, "EveryN(0) is meaningless");
                *n > 0 && iteration % n == n - 1
            }
            CheckpointFilter::Always => true,
        }
    }

    /// The filter that produces exactly `count` checkpoints over
    /// `iterations` iterations (the paper's Heatdis setup takes 6
    /// checkpoints per run regardless of length).
    pub fn for_total(iterations: u64, count: u64) -> Self {
        if count == 0 || iterations == 0 {
            CheckpointFilter::Never
        } else {
            CheckpointFilter::EveryN((iterations / count).max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_n_fires_at_period_end() {
        let f = CheckpointFilter::EveryN(5);
        let fired: Vec<u64> = (0..20).filter(|&i| f.should_checkpoint(i)).collect();
        assert_eq!(fired, vec![4, 9, 14, 19]);
    }

    #[test]
    fn never_and_always() {
        assert!(!CheckpointFilter::Never.should_checkpoint(0));
        assert!(CheckpointFilter::Always.should_checkpoint(0));
        assert!(CheckpointFilter::Always.should_checkpoint(7));
    }

    #[test]
    fn for_total_produces_requested_count() {
        let f = CheckpointFilter::for_total(60, 6);
        let fired = (0..60).filter(|&i| f.should_checkpoint(i)).count();
        assert_eq!(fired, 6);
    }

    #[test]
    fn for_total_degenerate_cases() {
        assert_eq!(CheckpointFilter::for_total(10, 0), CheckpointFilter::Never);
        assert_eq!(CheckpointFilter::for_total(0, 5), CheckpointFilter::Never);
        // More checkpoints than iterations: every iteration.
        let f = CheckpointFilter::for_total(3, 10);
        assert_eq!((0..3).filter(|&i| f.should_checkpoint(i)).count(), 3);
    }
}
