//! Kokkos Resilience-style control-flow resilience.
//!
//! Applications wrap each checkpointable region (typically a loop body) in a
//! closure passed to [`Context::checkpoint`]. The context then:
//!
//! * **detects** the [`kokkos`] views the region uses (via a capture
//!   session around the region's first execution — the Rust rendering of
//!   Kokkos Resilience hooking view copies);
//! * **classifies** them: one *checkpointed* primary per allocation,
//!   *skipped* duplicates over the same allocation (views "copied into the
//!   checkpoint lambda by the compiler"), and user-declared *aliases*
//!   (swap-space views that must not be checkpointed) — the three classes
//!   of the paper's Figure 7;
//! * **drives the data layer**: registers the checkpointed views with an
//!   internally managed VeloC client and checkpoints at the configured
//!   interval;
//! * **manages recovery**: after [`Context::latest_version`] finds a
//!   restartable version, the next execution of the region restores the
//!   views and re-executes the closure on the restored data.
//!
//! The two library modifications this paper contributes are implemented
//! exactly:
//!
//! 1. [`BackendKind::VelocSingle`] launches VeloC in non-collective mode and
//!    performs the best-version agreement itself with a manual reduction
//!    over the current communicator (`latest_version`), making the data
//!    layer compatible with a changing process pool.
//! 2. [`Context::reset`] accepts a **new communicator** after a Fenix
//!    repair: it clears the checkpoint-metadata cache (a checkpoint that
//!    finished locally may not have finished globally), re-fetches it, and
//!    updates the cached rank id here and in VeloC.
//!
//! [`RecoveryScope`] implements the partial-rollback extension: restoring
//! "at just one rank with VeloC" while survivors keep in-progress data.

pub mod backend;
pub mod context;
pub mod filter;
pub mod stats;

pub use backend::{DataBackend, RegionViews, VelocBackend};
pub use context::{BackendKind, CheckpointOutcome, Context, ContextConfig, RecoveryScope};
pub use filter::CheckpointFilter;
pub use stats::{RegionStats, ViewClass, ViewStat};
