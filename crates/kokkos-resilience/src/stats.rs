//! View-classification statistics — the data behind the paper's Figure 7.

use kokkos::ViewMeta;

/// How a captured view was classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewClass {
    /// Primary view for its allocation: serialized into the checkpoint.
    Checkpointed,
    /// User-declared alias (e.g. a swap-space view): intentionally excluded.
    Alias,
    /// Additional view object over an already-checkpointed allocation
    /// (a duplicate "copied into the checkpoint lambda by the compiler"):
    /// automatically excluded so data is stored once and only once.
    Skipped,
}

/// One captured view with its classification.
#[derive(Clone, Debug)]
pub struct ViewStat {
    pub meta: ViewMeta,
    pub class: ViewClass,
}

/// Classification summary for one checkpoint region.
#[derive(Clone, Debug, Default)]
pub struct RegionStats {
    pub views: Vec<ViewStat>,
}

impl RegionStats {
    pub fn count(&self, class: ViewClass) -> usize {
        self.views.iter().filter(|v| v.class == class).count()
    }

    pub fn bytes(&self, class: ViewClass) -> usize {
        self.views
            .iter()
            .filter(|v| v.class == class)
            .map(|v| v.meta.bytes)
            .sum()
    }

    /// Total bytes across all captured view objects (the "% of total"
    /// denominator in Figure 7).
    pub fn total_bytes(&self) -> usize {
        self.views.iter().map(|v| v.meta.bytes).sum()
    }

    pub fn total_views(&self) -> usize {
        self.views.len()
    }

    /// Fraction of total view bytes in a class (0.0 when empty).
    pub fn fraction(&self, class: ViewClass) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.bytes(class) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, bytes: usize) -> ViewMeta {
        ViewMeta {
            view_id: id,
            alloc_id: id,
            label: format!("v{id}"),
            extents: [bytes, 1, 1],
            rank: 1,
            bytes,
        }
    }

    #[test]
    fn counts_and_bytes_by_class() {
        let stats = RegionStats {
            views: vec![
                ViewStat {
                    meta: meta(1, 100),
                    class: ViewClass::Checkpointed,
                },
                ViewStat {
                    meta: meta(2, 50),
                    class: ViewClass::Skipped,
                },
                ViewStat {
                    meta: meta(3, 25),
                    class: ViewClass::Alias,
                },
                ViewStat {
                    meta: meta(4, 25),
                    class: ViewClass::Checkpointed,
                },
            ],
        };
        assert_eq!(stats.count(ViewClass::Checkpointed), 2);
        assert_eq!(stats.bytes(ViewClass::Checkpointed), 125);
        assert_eq!(stats.total_bytes(), 200);
        assert!((stats.fraction(ViewClass::Skipped) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_fraction_is_zero() {
        let stats = RegionStats::default();
        assert_eq!(stats.fraction(ViewClass::Checkpointed), 0.0);
        assert_eq!(stats.total_views(), 0);
    }
}
