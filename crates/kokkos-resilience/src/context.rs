//! The resilience context: region detection, recovery, and backend driving.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use cluster::Cluster;
use kokkos::capture::{CaptureSession, Checkpointable};
use simmpi::{Comm, MpiError, MpiResult, Phase, Profile};
use telemetry::{Event, Recorder};
use veloc::Mode;

use crate::backend::{DataBackend, VelocBackend};
use crate::filter::CheckpointFilter;
use crate::stats::{RegionStats, ViewClass, ViewStat};

/// Which data backend the context drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// VeloC in non-collective ("single") mode; the context performs the
    /// best-version agreement itself. **This is the configuration the paper
    /// adds** — the only one compatible with Fenix process recovery.
    VelocSingle,
    /// VeloC in collective mode (stock Kokkos Resilience behaviour); the
    /// client owns the agreement. Incompatible with a changing process
    /// pool.
    VelocCollective,
    /// A caller-supplied [`DataBackend`] (see [`Context::with_backend`]) —
    /// the paper's future-work "backend tier", e.g. Fenix in-memory
    /// redundancy.
    Custom,
}

/// Which ranks restore data during recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryScope {
    /// Every rank restores (full rollback — default).
    All,
    /// Only the listed communicator ranks restore; others keep their
    /// in-progress data (the paper's partial-rollback extension, "restoring
    /// at just one rank with VeloC").
    OnlyRanks(Vec<usize>),
}

impl RecoveryScope {
    fn includes(&self, rank: usize) -> bool {
        match self {
            RecoveryScope::All => true,
            RecoveryScope::OnlyRanks(rs) => rs.contains(&rank),
        }
    }
}

/// Context construction options.
#[derive(Clone, Debug)]
pub struct ContextConfig {
    /// Base name for checkpoint sets (combined with each region label).
    pub name: String,
    pub filter: CheckpointFilter,
    pub backend: BackendKind,
    /// View labels excluded from checkpointing as user-declared aliases.
    pub aliases: Vec<String>,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            name: "kr".into(),
            filter: CheckpointFilter::Always,
            backend: BackendKind::VelocSingle,
            aliases: Vec::new(),
        }
    }
}

/// What a `checkpoint` call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// How many times the region closure ran (2 when a detection pass was
    /// followed by a post-restore re-execution).
    pub executions: u32,
    /// Whether view data was restored from a checkpoint.
    pub restored: bool,
    /// Whether a checkpoint was taken after the region.
    pub checkpointed: bool,
}

/// Per-region cached metadata (cleared by [`Context::reset`]).
struct RegionMeta {
    stats: RegionStats,
    /// `(veloc region id, handle)` for each checkpointed view, in detection
    /// order — identical on every rank because the region code is.
    checkpointed: Vec<(u32, Arc<dyn Checkpointable>)>,
}

/// A per-rank Kokkos Resilience context (`KokkosResilience::make_context`).
pub struct Context {
    comm: RefCell<Comm>,
    data: Box<dyn DataBackend>,
    name: String,
    filter: CheckpointFilter,
    backend: BackendKind,
    aliases: RefCell<HashSet<String>>,
    regions: RefCell<HashMap<String, RegionMeta>>,
    /// Best restartable version per label, agreed across the communicator.
    agreed_latest: RefCell<HashMap<String, Option<u64>>>,
    /// Labels whose next region execution must perform recovery.
    pending_recovery: RefCell<HashSet<String>>,
    scope: RefCell<RecoveryScope>,
    /// Communicator ranks that lost their state in the last repair (needed
    /// by peer-storage backends such as IMR to route surviving copies).
    recovering_ranks: RefCell<Vec<usize>>,
    profile: RefCell<Option<Arc<Profile>>>,
    recorder: RefCell<Recorder>,
}

impl Context {
    /// Create a context over `comm` (`make_context(res_comm)` in Figure 4).
    pub fn new(cluster: &Cluster, comm: Comm, config: ContextConfig) -> Self {
        let mode = match config.backend {
            BackendKind::VelocSingle => Mode::Single,
            BackendKind::VelocCollective => Mode::Collective,
            BackendKind::Custom => {
                panic!("BackendKind::Custom requires Context::with_backend")
            }
        };
        let data = Box::new(VelocBackend::new(cluster, comm.my_global(), mode));
        Self::assemble(comm, config, data)
    }

    /// Create a context over a caller-supplied data backend — the paper's
    /// future-work backend tier (e.g. Fenix in-memory redundancy).
    pub fn with_backend(comm: Comm, mut config: ContextConfig, data: Box<dyn DataBackend>) -> Self {
        config.backend = BackendKind::Custom;
        Self::assemble(comm, config, data)
    }

    fn assemble(comm: Comm, config: ContextConfig, data: Box<dyn DataBackend>) -> Self {
        data.set_rank(comm.rank());
        Context {
            comm: RefCell::new(comm),
            data,
            name: config.name,
            filter: config.filter,
            backend: config.backend,
            aliases: RefCell::new(config.aliases.into_iter().collect()),
            regions: RefCell::new(HashMap::new()),
            agreed_latest: RefCell::new(HashMap::new()),
            pending_recovery: RefCell::new(HashSet::new()),
            scope: RefCell::new(RecoveryScope::All),
            recovering_ranks: RefCell::new(Vec::new()),
            profile: RefCell::new(None),
            recorder: RefCell::new(Recorder::disabled()),
        }
    }

    /// Attach a profile; checkpoint and recovery costs are booked to it.
    pub fn set_profile(&self, profile: Arc<Profile>) {
        *self.profile.borrow_mut() = Some(profile);
    }

    /// Attach a telemetry recorder; region lifecycle events
    /// (enter/capture/commit/restore) are emitted through it, and it is
    /// forwarded to the data backend for storage-layer events.
    pub fn set_recorder(&self, rec: Recorder) {
        self.data.set_recorder(rec.clone());
        *self.recorder.borrow_mut() = rec;
    }

    fn recorder(&self) -> Recorder {
        self.recorder.borrow().clone()
    }

    fn book<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let profile = self.profile.borrow().clone();
        match profile {
            Some(p) => p.time(phase, f),
            None => f(),
        }
    }

    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    pub fn comm_rank(&self) -> usize {
        self.comm.borrow().rank()
    }

    /// **Paper extension:** reset the context after a Fenix repair.
    ///
    /// Replaces the communicator, clears the checkpoint-metadata cache ("a
    /// checkpoint finished locally may not have finished globally"), and
    /// updates the cached rank id in the context and in VeloC.
    pub fn reset(&self, new_comm: Comm) {
        self.book(Phase::ResilienceInit, || {
            self.data.clear();
            self.data.set_rank(new_comm.rank());
            *self.comm.borrow_mut() = new_comm;
            self.regions.borrow_mut().clear();
            self.agreed_latest.borrow_mut().clear();
            self.pending_recovery.borrow_mut().clear();
            *self.scope.borrow_mut() = RecoveryScope::All;
            self.recovering_ranks.borrow_mut().clear();
        });
    }

    /// Tell peer-storage backends which communicator ranks lost their
    /// state in the last repair (typically `Fenix::recovered_ranks`).
    pub fn set_recovering_ranks(&self, ranks: Vec<usize>) {
        *self.recovering_ranks.borrow_mut() = ranks;
    }

    /// Declare a view label as an alias (not checkpointed).
    pub fn mark_alias(&self, view_label: impl Into<String>) {
        self.aliases.borrow_mut().insert(view_label.into());
    }

    /// Limit which ranks restore on the next recovery (partial rollback).
    pub fn set_recovery_scope(&self, scope: RecoveryScope) {
        *self.scope.borrow_mut() = scope;
    }

    fn qualified(&self, label: &str) -> String {
        format!("{}.{}", self.name, label)
    }

    /// Best restartable version of a region across the communicator.
    ///
    /// Collective: every rank of the communicator must call it. In
    /// `VelocSingle` mode this performs the paper's **manual reduction**
    /// (min over each rank's locally newest version); in `VelocCollective`
    /// mode VeloC itself agrees. A `Some` result arms recovery: the next
    /// `checkpoint` call for this label restores the data.
    pub fn latest_version(&self, label: &str) -> MpiResult<Option<u64>> {
        self.latest_version_below(label, u64::MAX)
    }

    /// [`Self::latest_version`] restricted to versions `<= bound`.
    ///
    /// Recovery in this model is *lazy*: an armed restore only fires when
    /// the region next executes. A restart agreement that lands on the
    /// final iteration's version leaves no region execution to carry it,
    /// so callers re-agree bounded below that version — recovery then
    /// replays at least one iteration and the restore is guaranteed to
    /// run. Collective, like [`Self::latest_version`]; overwrites any
    /// previously armed recovery version for `label`.
    pub fn latest_version_below(&self, label: &str, bound: u64) -> MpiResult<Option<u64>> {
        let name = self.qualified(label);
        let comm = self.comm.borrow();
        let agreed = self.data.latest_agreed_below(&comm, &name, bound)?;
        self.agreed_latest
            .borrow_mut()
            .insert(label.to_owned(), agreed);
        if agreed.is_some() {
            self.pending_recovery.borrow_mut().insert(label.to_owned());
        } else {
            self.pending_recovery.borrow_mut().remove(label);
        }
        Ok(agreed)
    }

    /// Classification statistics for a detected region (Figure 7).
    pub fn region_stats(&self, label: &str) -> Option<RegionStats> {
        self.regions.borrow().get(label).map(|m| m.stats.clone())
    }

    /// Bytes a checkpoint of this region serializes.
    pub fn checkpoint_bytes(&self, label: &str) -> usize {
        self.regions
            .borrow()
            .get(label)
            .map(|m| m.stats.bytes(ViewClass::Checkpointed))
            .unwrap_or(0)
    }

    /// Block until outstanding asynchronous flushes complete.
    pub fn checkpoint_wait(&self) {
        // lint: sanction(blocks): checkpoint_wait is the documented drain
        // barrier; the DES scheduler parks the rank task here instead of the
        // thread. audited 2026-08.
        self.data.wait();
    }

    fn detect(&self, label: &str, session: &CaptureSession) {
        let aliases = self.aliases.borrow();
        let mut stats = RegionStats::default();
        let mut checkpointed = Vec::new();
        let mut seen_allocs = HashSet::new();
        let mut next_id = 0u32;
        for rec in session.unique_views() {
            let class = if aliases.contains(&rec.meta.label) {
                ViewClass::Alias
            } else if !seen_allocs.insert(rec.meta.alloc_id) {
                ViewClass::Skipped
            } else {
                checkpointed.push((next_id, Arc::clone(&rec.handle)));
                next_id += 1;
                ViewClass::Checkpointed
            };
            stats.views.push(ViewStat {
                meta: rec.meta,
                class,
            });
        }
        self.regions.borrow_mut().insert(
            label.to_owned(),
            RegionMeta {
                stats,
                checkpointed,
            },
        );
    }

    /// Execute a checkpoint region (`KokkosResilience::checkpoint` of
    /// Figure 4).
    ///
    /// On the first execution after context creation or reset, the region's
    /// views are detected by running `body` under a capture session; if a
    /// prior [`Context::latest_version`] call found a restartable version,
    /// the views are then restored (subject to the [`RecoveryScope`]) and
    /// `body` re-executes on the restored data. Every rank therefore runs
    /// `body` the same number of times, keeping collective operations
    /// matched. Finally, the configured filter decides whether this
    /// iteration ends with a checkpoint of the detected views.
    pub fn checkpoint<F>(
        &self,
        label: &str,
        iteration: u64,
        mut body: F,
    ) -> MpiResult<CheckpointOutcome>
    where
        F: FnMut() -> MpiResult<()>,
    {
        let first = !self.regions.borrow().contains_key(label);
        let mut executions = 0u32;
        let rec = self.recorder();
        rec.emit_with(|| Event::RegionEnter {
            label: label.to_owned(),
            iteration,
        });

        if first {
            let session = CaptureSession::new();
            let result = session.record(&mut body);
            result?;
            executions += 1;
            self.detect(label, &session);
            rec.emit_with(|| Event::RegionCapture {
                label: label.to_owned(),
                views: self
                    .regions
                    .borrow()
                    .get(label)
                    .map_or(0, |m| m.checkpointed.len() as u64),
                bytes: self.checkpoint_bytes(label) as u64,
            });
        }

        let pending = self.pending_recovery.borrow_mut().remove(label);
        let mut restored = false;
        if pending {
            // Pending recovery implies an agreed version; both facts come
            // from the same collective agreement, so a mismatch is a
            // protocol violation — identical on every rank, and surfaced
            // through the error channel rather than a panic.
            let Some(version) = self.agreed_latest.borrow().get(label).copied().flatten() else {
                return Err(MpiError::Aborted);
            };
            if self.scope.borrow().includes(self.comm.borrow().rank()) {
                let name = self.qualified(label);
                let regions = self.regions.borrow();
                // Detection precedes restore on every path; a missing region
                // here is the same class of protocol violation as above.
                let Some(meta) = regions.get(label) else {
                    return Err(MpiError::Aborted);
                };
                let comm = self.comm.borrow();
                let recovering = self.recovering_ranks.borrow().clone();
                self.book(Phase::DataRecovery, || {
                    self.data
                        .restore(&comm, &name, version, &meta.checkpointed, &recovering)
                })?;
                rec.emit_with(|| Event::RegionRestore {
                    label: label.to_owned(),
                    version,
                });
                restored = true;
            }
            // All ranks re-execute on (possibly) restored data so that
            // collective operations inside the region stay matched.
            body()?;
            executions += 1;
        } else if !first {
            body()?;
            executions += 1;
        }

        let mut checkpointed = false;
        if self.filter.should_checkpoint(iteration) {
            let name = self.qualified(label);
            let regions = self.regions.borrow();
            let Some(meta) = regions.get(label) else {
                // Detection precedes checkpoint; see the restore arm above.
                return Err(MpiError::Aborted);
            };
            let comm = self.comm.borrow();
            self.book(Phase::CheckpointFn, || {
                self.data
                    .checkpoint(&comm, &name, iteration, &meta.checkpointed)
            })?;
            rec.emit_with(|| Event::RegionCommit {
                label: label.to_owned(),
                version: iteration,
            });
            checkpointed = true;
        }

        Ok(CheckpointOutcome {
            executions,
            restored,
            checkpointed,
        })
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("name", &self.name)
            .field("backend", &self.backend)
            .field("rank", &self.comm_rank())
            .field("regions", &self.regions.borrow().len())
            .finish()
    }
}
