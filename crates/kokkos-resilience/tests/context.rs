//! Context behaviour over launched universes: detection, classification,
//! checkpoint/recovery cycles, reset-with-new-comm, and recovery scopes.

use std::sync::Arc;

use cluster::{Cluster, ClusterConfig, TimeScale};
use kokkos::View;
use kokkos_resilience::{
    BackendKind, CheckpointFilter, Context, ContextConfig, RecoveryScope, ViewClass,
};
use simmpi::{FaultPlan, MpiResult, RankCtx, Universe, UniverseConfig};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

fn launch<F>(c: &Cluster, f: F) -> simmpi::LaunchReport
where
    F: Fn(&mut RankCtx) -> MpiResult<()> + Send + Sync,
{
    Universe::launch(c, UniverseConfig::default(), Arc::new(FaultPlan::none()), f)
}

fn config(name: &str, filter: CheckpointFilter) -> ContextConfig {
    ContextConfig {
        name: name.into(),
        filter,
        backend: BackendKind::VelocSingle,
        aliases: Vec::new(),
    }
}

#[test]
fn detection_classifies_views() {
    let c = cluster(1);
    let report = launch(&c, |ctx| {
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            config("t1", CheckpointFilter::Never),
        );
        kr.mark_alias("swap");
        let x: View<f64> = View::new_1d("x", 100);
        let x_dup = x.duplicate_handle("x_lambda_copy");
        let swap: View<f64> = View::new_1d("swap", 100);
        let y: View<u32> = View::new_1d("y", 10);

        kr.checkpoint("loop", 0, || {
            let _ = x.write();
            let _ = x_dup.read(); // duplicate over x's allocation
            let _ = swap.write(); // declared alias
            let _ = y.write();
            Ok(())
        })?;

        let stats = kr.region_stats("loop").expect("region detected");
        assert_eq!(stats.total_views(), 4);
        assert_eq!(stats.count(ViewClass::Checkpointed), 2); // x, y
        assert_eq!(stats.count(ViewClass::Skipped), 1); // x_dup
        assert_eq!(stats.count(ViewClass::Alias), 1); // swap
        assert_eq!(stats.bytes(ViewClass::Checkpointed), 800 + 40);
        assert_eq!(kr.checkpoint_bytes("loop"), 840);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn checkpoint_and_recover_across_contexts() {
    // Simulates a relaunch: first "job" checkpoints, second starts from the
    // latest version and recovers the data.
    let c = cluster(2);
    let report = launch(&c, |ctx| {
        let data: View<u64> = View::new_1d("data", 8);
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            config("job", CheckpointFilter::EveryN(2)),
        );
        assert_eq!(kr.latest_version("loop")?, None);
        for i in 0..6u64 {
            kr.checkpoint("loop", i, || {
                let mut d = data.write();
                for x in d.iter_mut() {
                    *x += 1;
                }
                Ok(())
            })?;
        }
        kr.checkpoint_wait();
        assert!(data.read().iter().all(|&x| x == 6));
        Ok(())
    });
    assert!(report.all_ok());

    let report = launch(&c, |ctx| {
        let data: View<u64> = View::new_1d("data", 8);
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            config("job", CheckpointFilter::EveryN(2)),
        );
        // Checkpoints fired at iterations 1, 3, 5.
        let latest = kr.latest_version("loop")?;
        assert_eq!(latest, Some(5));
        let mut resumed = latest.map_or(0, |v| v + 1);
        assert_eq!(resumed, 6);
        // One more iteration; the first checkpoint call restores v5 (data
        // value 6) and then executes on the restored data.
        let out = kr.checkpoint("loop", resumed, || {
            let mut d = data.write();
            for x in d.iter_mut() {
                *x += 1;
            }
            Ok(())
        })?;
        assert!(out.restored);
        assert_eq!(out.executions, 2, "detection pass + post-restore run");
        resumed += 1;
        assert_eq!(resumed, 7);
        // Restored 6, one increment applied on restored data -> 7.
        assert!(
            data.read().iter().all(|&x| x == 7),
            "{:?}",
            &data.read()[..]
        );
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn filter_controls_checkpoint_count() {
    let c = cluster(1);
    let report = launch(&c, |ctx| {
        let data: View<u8> = View::new_1d("d", 4);
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            config("filt", CheckpointFilter::EveryN(5)),
        );
        let mut taken = 0;
        for i in 0..20u64 {
            let out = kr.checkpoint("loop", i, || {
                let _ = data.write();
                Ok(())
            })?;
            if out.checkpointed {
                taken += 1;
            }
        }
        assert_eq!(taken, 4);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn reset_clears_metadata_and_reranks() {
    // After a "repair", the context must forget cached metadata and adopt
    // the new communicator's rank for checkpoint naming.
    let c = cluster(2);
    let report = launch(&c, |ctx| {
        let data: View<u64> = View::new_1d("d", 4);
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            config("rst", CheckpointFilter::Always),
        );
        kr.checkpoint("loop", 0, || {
            let mut d = data.write();
            d[0] = 10 + ctx.rank() as u64;
            Ok(())
        })?;
        kr.checkpoint_wait();

        // Build a "repaired" communicator with the same membership (the
        // repair path exercises comm replacement; membership is unchanged
        // in this failure-free test).
        let new_comm = simmpi::Comm::from_group(
            Arc::clone(ctx.router()),
            simmpi::router::Router::derive_comm_id(0, 999),
            0,
            Arc::new(vec![0, 1]),
            ctx.rank(),
        );
        kr.reset(new_comm);
        assert!(kr.region_stats("loop").is_none(), "metadata cache cleared");

        // Recovery across the reset: version 0 is found and restored.
        assert_eq!(kr.latest_version("loop")?, Some(0));
        let out = kr.checkpoint("loop", 1, || {
            let _ = data.write();
            Ok(())
        })?;
        assert!(out.restored);
        assert_eq!(data.read()[0], 10 + ctx.rank() as u64);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn recovery_scope_limits_restores() {
    let c = cluster(2);
    // Round 1: both ranks checkpoint value 100+rank.
    let report = launch(&c, |ctx| {
        let data: View<u64> = View::new_1d("d", 1);
        data.write()[0] = 100 + ctx.rank() as u64;
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            config("scope", CheckpointFilter::Always),
        );
        kr.checkpoint("loop", 0, || {
            let _ = data.read();
            Ok(())
        })?;
        kr.checkpoint_wait();
        Ok(())
    });
    assert!(report.all_ok());

    // Round 2: only rank 1 restores; rank 0 keeps its in-progress value.
    let report = launch(&c, |ctx| {
        let data: View<u64> = View::new_1d("d", 1);
        data.write()[0] = 555; // "in-progress" value
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            config("scope", CheckpointFilter::Never),
        );
        kr.set_recovery_scope(RecoveryScope::OnlyRanks(vec![1]));
        assert_eq!(kr.latest_version("loop")?, Some(0));
        let out = kr.checkpoint("loop", 1, || {
            let _ = data.read();
            Ok(())
        })?;
        if ctx.rank() == 1 {
            assert!(out.restored);
            assert_eq!(data.read()[0], 101);
        } else {
            assert!(!out.restored);
            assert_eq!(data.read()[0], 555, "survivor keeps in-progress data");
        }
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn collective_backend_agrees_on_version() {
    let c = cluster(3);
    let report = launch(&c, |ctx| {
        let data: View<u64> = View::new_1d("d", 2);
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            ContextConfig {
                name: "coll".into(),
                filter: CheckpointFilter::Always,
                backend: BackendKind::VelocCollective,
                aliases: Vec::new(),
            },
        );
        for i in 0..3u64 {
            kr.checkpoint("loop", i, || {
                let _ = data.write();
                Ok(())
            })?;
        }
        kr.checkpoint_wait();
        assert_eq!(kr.latest_version("loop")?, Some(2));
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn redetection_after_reset_sees_new_views() {
    let c = cluster(1);
    let report = launch(&c, |ctx| {
        let kr = Context::new(
            ctx.cluster(),
            ctx.world().clone(),
            config("redet", CheckpointFilter::Never),
        );
        let a: View<u8> = View::new_1d("a", 4);
        kr.checkpoint("loop", 0, || {
            let _ = a.write();
            Ok(())
        })?;
        assert_eq!(kr.region_stats("loop").unwrap().total_views(), 1);

        kr.reset(ctx.world().clone());
        let b: View<u8> = View::new_1d("b", 8);
        kr.checkpoint("loop", 1, || {
            let _ = a.write();
            let _ = b.write();
            Ok(())
        })?;
        assert_eq!(kr.region_stats("loop").unwrap().total_views(), 2);
        Ok(())
    });
    assert!(report.all_ok());
}
