//! Error model following MPI-ULFM.

/// Errors raised by simulated MPI operations.
///
/// The first three variants mirror ULFM's error classes:
/// `MPI_ERR_PROC_FAILED`, `MPI_ERR_REVOKED`, and the local condition of the
/// failing process itself. `Aborted` models `MPI_Abort` semantics — the whole
/// job is being torn down (the default response to a failure when no
/// fault-tolerant layer such as Fenix is attached).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpiError {
    /// One or more peer processes have failed. Ranks are *global* (world)
    /// ranks. Raised by operations that require the failed process.
    ProcFailed { ranks: Vec<usize> },
    /// The communicator has been revoked (by `ulfm::revoke`); every pending
    /// and future operation on it fails with this error.
    Revoked,
    /// This process itself has been killed by fault injection; the caller
    /// must unwind out of the application.
    Killed,
    /// The job is aborting (a failure occurred and no recovery layer claimed
    /// it, or `abort` was called).
    Aborted,
    /// A rank argument was outside the communicator.
    RankOutOfRange { rank: usize, size: usize },
    /// Payload length did not match the receive buffer.
    TypeMismatch { expected: usize, got: usize },
}

impl MpiError {
    /// True for the failure classes a fault-tolerant layer can recover from.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, MpiError::ProcFailed { .. } | MpiError::Revoked)
    }

    /// Convenience constructor.
    pub fn proc_failed(rank: usize) -> Self {
        MpiError::ProcFailed { ranks: vec![rank] }
    }
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::ProcFailed { ranks } => write!(f, "process failure at ranks {ranks:?}"),
            MpiError::Revoked => write!(f, "communicator revoked"),
            MpiError::Killed => write!(f, "this process was killed"),
            MpiError::Aborted => write!(f, "job aborted"),
            MpiError::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::TypeMismatch { expected, got } => {
                write!(
                    f,
                    "payload size mismatch: expected {expected} bytes, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias used throughout the MPI simulation.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverable_classes() {
        assert!(MpiError::proc_failed(3).is_recoverable());
        assert!(MpiError::Revoked.is_recoverable());
        assert!(!MpiError::Killed.is_recoverable());
        assert!(!MpiError::Aborted.is_recoverable());
    }

    #[test]
    fn display_is_informative() {
        let s = MpiError::proc_failed(7).to_string();
        assert!(s.contains('7'));
    }
}
