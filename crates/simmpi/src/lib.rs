//! Simulated MPI with ULFM fault-tolerance semantics.
//!
//! Rust has no production MPI binding with User-Level Fault Mitigation
//! support, so this crate provides an in-process stand-in that preserves the
//! *interface and failure semantics* the paper's Fenix layer depends on:
//!
//! * Ranks are OS threads launched by a [`universe::Universe`]; each receives
//!   a [`RankCtx`] holding its `MPI_COMM_WORLD` equivalent.
//! * Point-to-point messages and collectives move through a shared
//!   [`router::Router`] of per-rank mailboxes, and every payload is charged
//!   against the modeled [`cluster::Network`] — so checkpoint traffic and
//!   application traffic genuinely contend.
//! * Failures follow ULFM: a process failure is first observed only by ranks
//!   that communicate with the victim (as [`MpiError::ProcFailed`] from an
//!   MPI call); knowledge is propagated explicitly with
//!   [`ulfm`] `revoke`, after which every pending or future operation on the
//!   communicator raises [`MpiError::Revoked`]. Survivors then use
//!   [`ulfm`] `shrink`/`agree` to rebuild a working communicator.
//! * [`fault::FaultPlan`] injects deterministic failures: an application
//!   fault point kills the rank mid-computation, mimicking the paper's
//!   "rank exits early, ~95% of the way between two checkpoints".
//!
//! Everything above the router (collective algorithms, ULFM recovery, Fenix)
//! is implemented with message passing and per-rank state only; the shared
//! memory underneath is an implementation detail of the simulation.

pub mod comm;
pub mod error;
pub mod fault;
pub mod mutant;
pub mod pod;
pub mod profile;
pub mod rendezvous;
pub mod router;
pub mod sched;
pub mod ulfm;
pub mod universe;

pub use comm::{Comm, ReduceOp, Tag};
pub use error::{MpiError, MpiResult};
pub use fault::{
    BackendFault, CorruptKind, CorruptTier, Corruption, FaultPlan, FaultSchedule, Kill,
};
pub use pod::Pod;
pub use profile::{Phase, Profile};
pub use sched::Scheduler;
pub use universe::{Backend, LaunchReport, RankCtx, RankOutcome, Universe, UniverseConfig};
