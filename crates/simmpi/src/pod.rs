//! Plain-old-data marshalling between typed slices and byte payloads.
//!
//! MPI moves raw bytes; the typed convenience API needs a cheap, safe-enough
//! bridge. `Pod` is restricted to primitive numeric types whose every bit
//! pattern is valid and which carry no padding, so the slice casts below are
//! sound. This mirrors what `bytemuck::Pod` provides without adding the
//! dependency.

use bytes::Bytes;

/// Types that can be viewed as raw bytes and reconstructed from them.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding bytes, no interior
/// mutability, and every bit pattern must be a valid value.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// SAFETY: (this comment applies to every impl below, which cite it) each
// type is a primitive numeric —
// `Copy`, exactly `size_of` bytes with no padding, no interior mutability,
// no pointers/references, and every bit pattern is a valid value (for the
// floats, any bit pattern is some f32/f64, NaNs included).
unsafe impl Pod for u8 {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for i8 {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for u16 {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for i16 {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for u32 {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for i32 {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for u64 {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for i64 {}
// SAFETY: usize is a fixed-width integer (platform word) with no padding;
// every bit pattern is a valid value.
unsafe impl Pod for usize {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for f32 {}
// SAFETY: see the block comment above the u8 impl.
unsafe impl Pod for f64 {}

/// View a typed slice as its underlying bytes (zero copy).
pub fn as_bytes<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding, all bit patterns valid), and u8 has
    // alignment 1, so reinterpreting the memory of the slice is sound.
    unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), std::mem::size_of_val(slice)) }
}

/// Copy a typed slice into an owned byte payload.
pub fn to_bytes<T: Pod>(slice: &[T]) -> Bytes {
    Bytes::copy_from_slice(as_bytes(slice))
}

/// Copy a byte payload into a typed buffer. Panics if lengths mismatch or
/// the payload length is not a multiple of `size_of::<T>()`.
pub fn copy_from_bytes<T: Pod>(dst: &mut [T], src: &[u8]) {
    let want = std::mem::size_of_val(dst);
    assert_eq!(
        src.len(),
        want,
        "payload is {} bytes but buffer wants {}",
        src.len(),
        want
    );
    // SAFETY: dst is Pod; writing arbitrary bytes over it yields valid values.
    let dst_bytes = unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast::<u8>(), want) };
    dst_bytes.copy_from_slice(src);
}

/// Decode a byte payload into a freshly allocated `Vec<T>`.
pub fn vec_from_bytes<T: Pod + Default>(src: &[u8]) -> Vec<T> {
    let sz = std::mem::size_of::<T>();
    assert!(
        src.len().is_multiple_of(sz),
        "payload length {} is not a multiple of element size {}",
        src.len(),
        sz
    );
    let mut v = vec![T::default(); src.len() / sz];
    copy_from_bytes(&mut v, src);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let xs = [1.5f64, -2.25, 0.0, f64::MAX];
        let b = to_bytes(&xs);
        let mut ys = [0.0f64; 4];
        copy_from_bytes(&mut ys, &b);
        assert_eq!(xs, ys);
    }

    #[test]
    fn roundtrip_vec_u32() {
        let xs = vec![1u32, 2, 3, u32::MAX];
        let b = to_bytes(&xs);
        assert_eq!(vec_from_bytes::<u32>(&b), xs);
    }

    #[test]
    fn empty_slice_is_empty_bytes() {
        let xs: [f64; 0] = [];
        assert!(to_bytes(&xs).is_empty());
    }

    #[test]
    #[should_panic(expected = "payload")]
    fn size_mismatch_panics() {
        let mut ys = [0.0f64; 2];
        copy_from_bytes(&mut ys, &[0u8; 9]);
    }

    #[test]
    fn bytes_are_little_endian_native() {
        let xs = [0x0102_0304u32];
        let b = to_bytes(&xs);
        assert_eq!(u32::from_ne_bytes([b[0], b[1], b[2], b[3]]), xs[0]);
    }
}
