//! Per-rank phase timing (compatibility shim over `telemetry`).
//!
//! `Phase` and the accumulator storage moved to the `telemetry` crate so
//! every layer and the exporters share one set of cost categories;
//! [`Profile`] remains the interface the rest of the workspace books time
//! through. It now wraps a shared [`telemetry::PhaseAccumulator`] and, when
//! a [`telemetry::Recorder`] is attached, routes `time(..)` through span
//! guards so the same measurement also produces `SpanBegin`/`SpanEnd`
//! events (and exclusive-time attribution) in the trace.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

pub use telemetry::Phase;
use telemetry::{PhaseAccumulator, Recorder};

/// Thread-safe phase-time accumulator (nanosecond resolution).
#[derive(Default)]
pub struct Profile {
    acc: Arc<PhaseAccumulator>,
    recorder: OnceLock<Recorder>,
}

impl Profile {
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared accumulator backing this profile. Hand this to
    /// [`telemetry::Telemetry::recorder`] so spans and `Profile` bookings
    /// land in the same totals.
    pub fn accumulator(&self) -> &Arc<PhaseAccumulator> {
        &self.acc
    }

    /// Attach a recorder so [`Profile::time`] emits span events. Only the
    /// first enabled recorder sticks; disabled recorders are ignored.
    /// The recorder must have been created with this profile's
    /// [`Profile::accumulator`], or times would book twice in different
    /// places.
    pub fn attach_recorder(&self, rec: Recorder) {
        if rec.is_enabled() {
            let _ = self.recorder.set(rec);
        }
    }

    /// The attached recorder, if any (disabled recorder otherwise).
    pub fn recorder(&self) -> Recorder {
        self.recorder.get().cloned().unwrap_or_default()
    }

    /// Add a measured duration to a phase.
    pub fn add(&self, phase: Phase, d: Duration) {
        self.acc.add(phase, d);
    }

    /// Time a closure and book it under `phase`.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        match self.recorder.get() {
            // The recorder's span books inclusive time into `self.acc`.
            Some(rec) => rec.time(phase, f),
            None => {
                // lint: sanction(wall-clock): phase-time accounting for the
                // paper's figures; read-only instrumentation, never feeds
                // control flow. audited 2026-08.
                let t0 = Instant::now();
                let out = f();
                self.acc.add(phase, t0.elapsed());
                out
            }
        }
    }

    /// Accumulated time in a phase.
    pub fn get(&self, phase: Phase) -> Duration {
        self.acc.get(phase)
    }

    /// Sum across all phases (the in-app accounted time).
    pub fn total(&self) -> Duration {
        self.acc.total()
    }

    /// Snapshot all phases as (phase, duration) pairs.
    pub fn snapshot(&self) -> Vec<(Phase, Duration)> {
        self.acc.snapshot()
    }

    /// Zero every accumulator (used when an app section re-runs and the
    /// caller wants to rebook it, e.g. recompute after rollback).
    pub fn reset(&self) {
        self.acc.reset();
    }

    /// Merge another profile into this one (used when a relaunched job's
    /// profile is folded into the overall experiment record).
    pub fn merge_from(&self, other: &Profile) {
        self.acc.merge_from(&other.acc);
    }
}

impl std::fmt::Debug for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Profile");
        for &p in &Phase::ALL {
            let d = self.get(p);
            if !d.is_zero() {
                s.field(p.name(), &d);
            }
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let p = Profile::new();
        p.add(Phase::AppCompute, Duration::from_millis(5));
        p.add(Phase::AppCompute, Duration::from_millis(7));
        assert_eq!(p.get(Phase::AppCompute), Duration::from_millis(12));
        assert_eq!(p.get(Phase::AppMpi), Duration::ZERO);
    }

    #[test]
    fn time_books_elapsed() {
        let p = Profile::new();
        let v = p.time(Phase::CheckpointFn, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(p.get(Phase::CheckpointFn) >= Duration::from_millis(2));
    }

    #[test]
    fn total_sums_phases() {
        let p = Profile::new();
        p.add(Phase::AppCompute, Duration::from_millis(1));
        p.add(Phase::AppMpi, Duration::from_millis(2));
        assert_eq!(p.total(), Duration::from_millis(3));
    }

    #[test]
    fn merge_accumulates() {
        let a = Profile::new();
        let b = Profile::new();
        a.add(Phase::Recompute, Duration::from_millis(3));
        b.add(Phase::Recompute, Duration::from_millis(4));
        a.merge_from(&b);
        assert_eq!(a.get(Phase::Recompute), Duration::from_millis(7));
    }

    #[test]
    fn reset_zeroes() {
        let p = Profile::new();
        p.add(Phase::AppInit, Duration::from_millis(9));
        p.reset();
        assert_eq!(p.total(), Duration::ZERO);
    }

    #[test]
    fn attached_recorder_times_through_spans() {
        use telemetry::{Telemetry, TelemetryConfig};
        let tel = Telemetry::new(TelemetryConfig::default());
        let p = Profile::new();
        p.attach_recorder(tel.recorder(0, Arc::clone(p.accumulator())));
        p.time(Phase::AppCompute, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        // Time landed in the shared accumulator exactly once.
        assert!(p.get(Phase::AppCompute) >= Duration::from_millis(2));
        assert!(p.get(Phase::AppCompute) < Duration::from_millis(500));
        // And the span shows up in the trace.
        let snap = tel.snapshot();
        assert_eq!(snap.of_kind("span_begin").len(), 1);
        assert_eq!(snap.of_kind("span_end").len(), 1);
    }

    #[test]
    fn disabled_recorder_attachment_is_ignored() {
        let p = Profile::new();
        p.attach_recorder(Recorder::disabled());
        assert!(!p.recorder().is_enabled());
        p.time(Phase::AppMpi, || {});
    }
}
