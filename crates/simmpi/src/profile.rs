//! Per-rank phase timing.
//!
//! The paper reports stacked cost breakdowns; every run in this repo carries
//! a `Profile` per rank that accumulates wall time into the same categories:
//! Heatdis uses `AppCompute`/`AppMpi`, MiniMD uses
//! `ForceCompute`/`Neighboring`/`Communicator`, and the resilience layers
//! book their own costs (`ResilienceInit`, `CheckpointFn`, `DataRecovery`,
//! `Recompute`). Whatever the harness measures beyond the in-app phases
//! lands in the paper's "Other" category (job startup/teardown, data
//! initialization).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cost categories matching the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Heatdis: local stencil compute.
    AppCompute,
    /// Heatdis: time blocked in MPI calls.
    AppMpi,
    /// Fenix + Kokkos Resilience + VeloC initialization.
    ResilienceInit,
    /// Synchronous portion of checkpoint calls.
    CheckpointFn,
    /// Restoring data after a failure (restart reads + deserialization).
    DataRecovery,
    /// Re-executing iterations lost since the last checkpoint.
    Recompute,
    /// MiniMD: force computation (compute-bound).
    ForceCompute,
    /// MiniMD: neighbor-list construction (mostly compute-bound).
    Neighboring,
    /// MiniMD: atom exchange/ghost communication (communication-bound).
    Communicator,
    /// Application initialization (counted toward "Other" on relaunch).
    AppInit,
}

impl Phase {
    pub const COUNT: usize = 10;

    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::AppCompute,
        Phase::AppMpi,
        Phase::ResilienceInit,
        Phase::CheckpointFn,
        Phase::DataRecovery,
        Phase::Recompute,
        Phase::ForceCompute,
        Phase::Neighboring,
        Phase::Communicator,
        Phase::AppInit,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::AppCompute => "App compute",
            Phase::AppMpi => "App MPI",
            Phase::ResilienceInit => "Resilience Initialization",
            Phase::CheckpointFn => "Checkpoint Function",
            Phase::DataRecovery => "Data Recovery",
            Phase::Recompute => "Recompute",
            Phase::ForceCompute => "Force Compute",
            Phase::Neighboring => "Neighboring",
            Phase::Communicator => "Communicator",
            Phase::AppInit => "App Init",
        }
    }
}

/// Thread-safe phase-time accumulator (nanosecond resolution).
#[derive(Default)]
pub struct Profile {
    nanos: [AtomicU64; Phase::COUNT],
}

impl Profile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a measured duration to a phase.
    pub fn add(&self, phase: Phase, d: Duration) {
        self.nanos[phase as usize].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Time a closure and book it under `phase`.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(phase, t0.elapsed());
        out
    }

    /// Accumulated time in a phase.
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase as usize].load(Ordering::Relaxed))
    }

    /// Sum across all phases (the in-app accounted time).
    pub fn total(&self) -> Duration {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }

    /// Snapshot all phases as (phase, duration) pairs.
    pub fn snapshot(&self) -> Vec<(Phase, Duration)> {
        Phase::ALL.iter().map(|&p| (p, self.get(p))).collect()
    }

    /// Zero every accumulator (used when an app section re-runs and the
    /// caller wants to rebook it, e.g. recompute after rollback).
    pub fn reset(&self) {
        for n in &self.nanos {
            n.store(0, Ordering::Relaxed);
        }
    }

    /// Merge another profile into this one (used when a relaunched job's
    /// profile is folded into the overall experiment record).
    pub fn merge_from(&self, other: &Profile) {
        for &p in &Phase::ALL {
            self.add(p, other.get(p));
        }
    }
}

impl std::fmt::Debug for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Profile");
        for &p in &Phase::ALL {
            let d = self.get(p);
            if !d.is_zero() {
                s.field(p.name(), &d);
            }
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let p = Profile::new();
        p.add(Phase::AppCompute, Duration::from_millis(5));
        p.add(Phase::AppCompute, Duration::from_millis(7));
        assert_eq!(p.get(Phase::AppCompute), Duration::from_millis(12));
        assert_eq!(p.get(Phase::AppMpi), Duration::ZERO);
    }

    #[test]
    fn time_books_elapsed() {
        let p = Profile::new();
        let v = p.time(Phase::CheckpointFn, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(p.get(Phase::CheckpointFn) >= Duration::from_millis(2));
    }

    #[test]
    fn total_sums_phases() {
        let p = Profile::new();
        p.add(Phase::AppCompute, Duration::from_millis(1));
        p.add(Phase::AppMpi, Duration::from_millis(2));
        assert_eq!(p.total(), Duration::from_millis(3));
    }

    #[test]
    fn merge_accumulates() {
        let a = Profile::new();
        let b = Profile::new();
        a.add(Phase::Recompute, Duration::from_millis(3));
        b.add(Phase::Recompute, Duration::from_millis(4));
        a.merge_from(&b);
        assert_eq!(a.get(Phase::Recompute), Duration::from_millis(7));
    }

    #[test]
    fn reset_zeroes() {
        let p = Profile::new();
        p.add(Phase::AppInit, Duration::from_millis(9));
        p.reset();
        assert_eq!(p.total(), Duration::ZERO);
    }

    #[test]
    fn phase_names_unique() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
    }
}
