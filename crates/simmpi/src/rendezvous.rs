//! Fault-tolerant agreement rendezvous.
//!
//! ULFM's `MPI_Comm_agree` and `MPI_Comm_shrink` must complete *despite*
//! process failures, including failures that happen mid-operation. Real
//! implementations run a fault-tolerant consensus protocol; the simulation
//! provides the same guarantees with a shared combiner table:
//!
//! * Every live participant deposits a contribution under a key that all
//!   callers of the same logical operation share.
//! * The operation completes once every group member has either contributed
//!   or died; the completing participant combines the contributions
//!   (deterministically, in group-rank order) and publishes the result.
//! * Participants learn, alongside the result, whether any group member was
//!   dead at completion time — ULFM's "agree acknowledges failures" flag.
//!
//! Entries are garbage collected when the last live participant picks up the
//! result.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::error::{MpiError, MpiResult};
use crate::router::{CommId, Router};
use crate::sched;

/// Uniquely names one logical agreement operation. All participants must use
/// the same key; the `purpose`/`seq` pair orders successive operations on
/// the same communicator (e.g. Fenix repair #N).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RendezvousKey {
    pub comm: CommId,
    pub epoch: u32,
    pub purpose: u8,
    pub seq: u64,
}

/// Purposes used by the ULFM layer.
pub mod purpose {
    pub const AGREE: u8 = 1;
    pub const SHRINK: u8 = 2;
    pub const FENIX: u8 = 3;
}

/// Outcome of a rendezvous: combined payload plus whether any group member
/// was dead when the operation completed.
#[derive(Clone, Debug, PartialEq)]
pub struct RendezvousOutcome {
    pub value: Bytes,
    pub failures_observed: Vec<usize>,
}

struct Entry {
    state: Mutex<EntryState>,
    cv: Condvar,
}

#[derive(Default)]
struct EntryState {
    contribs: HashMap<usize, Bytes>,
    result: Option<RendezvousOutcome>,
    picked_up: usize,
}

/// Table of in-flight agreement operations.
pub struct RendezvousTable {
    entries: Mutex<HashMap<RendezvousKey, Arc<Entry>>>,
}

impl RendezvousTable {
    pub fn new() -> Self {
        RendezvousTable {
            entries: Mutex::new(HashMap::new()),
        }
    }

    fn entry(&self, key: RendezvousKey) -> Arc<Entry> {
        let mut map = self.entries.lock();
        Arc::clone(map.entry(key).or_insert_with(|| {
            Arc::new(Entry {
                state: Mutex::new(EntryState::default()),
                cv: Condvar::new(),
            })
        }))
    }

    fn retire(&self, key: RendezvousKey) {
        self.entries.lock().remove(&key);
    }

    /// Wake every participant so it re-evaluates completeness (called by the
    /// router whenever a rank dies or the job aborts).
    pub fn wake_all(&self) {
        let entries: Vec<Arc<Entry>> = self.entries.lock().values().cloned().collect();
        for e in entries {
            let _g = e.state.lock();
            e.cv.notify_all();
        }
    }

    /// Number of in-flight operations (tests).
    pub fn in_flight(&self) -> usize {
        self.entries.lock().len()
    }
}

impl Default for RendezvousTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// Participate in a fault-tolerant agreement.
    ///
    /// `group` is the set of global ranks expected to participate; `combine`
    /// folds the contributions (presented in ascending rank order) into the
    /// agreed value. Completes when every group member has contributed or
    /// died. Returns `Killed`/`Aborted` if this rank dies or the job aborts
    /// while waiting.
    pub fn rendezvous(
        &self,
        key: RendezvousKey,
        me: usize,
        group: &[usize],
        contribution: Bytes,
        combine: impl Fn(&[(usize, Bytes)]) -> Bytes,
    ) -> MpiResult<RendezvousOutcome> {
        debug_assert!(group.contains(&me), "rank {me} not in rendezvous group");
        let entry = self.rendezvous.entry(key);
        let mut st = entry.state.lock();
        st.contribs.insert(me, contribution);

        loop {
            if let Some(result) = st.result.clone() {
                st.picked_up += 1;
                // The last live participant retires the entry.
                let live_participants = group
                    .iter()
                    .filter(|&&r| st.contribs.contains_key(&r) && !self.is_dead(r))
                    .count();
                if st.picked_up >= live_participants {
                    drop(st);
                    self.rendezvous.retire(key);
                }
                return Ok(result);
            }

            if self.is_aborted() {
                return Err(MpiError::Aborted);
            }
            if self.is_dead(me) {
                return Err(MpiError::Killed);
            }
            // A revoked communicator means some participants have abandoned
            // this operation for failure recovery and will never contribute;
            // waiting on would deadlock (observed with Fenix-IMR commits
            // racing a repair). Published results are still delivered — the
            // result check above runs first — so an agreement either
            // completes everywhere or aborts everywhere.
            if self.is_revoked(key.comm, key.epoch) {
                return Err(MpiError::Revoked);
            }

            // Complete if every group member contributed or died.
            let dead = self.dead_snapshot();
            let complete = group
                .iter()
                .all(|r| st.contribs.contains_key(r) || dead.contains(r));
            if complete {
                let mut parts: Vec<(usize, Bytes)> =
                    st.contribs.iter().map(|(&r, b)| (r, b.clone())).collect();
                parts.sort_by_key(|(r, _)| *r);
                let value = combine(&parts);
                let failures_observed =
                    group.iter().copied().filter(|r| dead.contains(r)).collect();
                st.result = Some(RendezvousOutcome {
                    value,
                    failures_observed,
                });
                entry.cv.notify_all();
                if let Some(s) = self.sched() {
                    // Publication wakes the whole group; pushes are in
                    // ascending rank order so the seeded tiebreak alone
                    // decides who resumes first.
                    for &r in group {
                        if r != me {
                            s.wake(r);
                        }
                    }
                }
                continue; // next loop iteration picks the result up
            }

            // Not complete: yield. DES ranks hand the baton back to the
            // scheduler and resume when a contribution, publication, or
            // failure transition wakes them; threads-backend ranks park on
            // the entry condvar with a bounded re-check timeout.
            match self.sched() {
                Some(s) => {
                    drop(st);
                    s.yield_blocked(me);
                    st = entry.state.lock();
                }
                None => sched::park_on(&entry.cv, &mut st),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterConfig, TimeScale};
    use std::time::Duration;

    fn router(n: usize) -> Arc<Router> {
        let cfg = ClusterConfig {
            nodes: n,
            ranks_per_node: 1,
            time_scale: TimeScale::instant(),
            ..ClusterConfig::default()
        };
        Router::new(Cluster::new(cfg))
    }

    fn key(seq: u64) -> RendezvousKey {
        RendezvousKey {
            comm: 0,
            epoch: 0,
            purpose: purpose::AGREE,
            seq,
        }
    }

    fn sum_combine(parts: &[(usize, Bytes)]) -> Bytes {
        let s: u64 = parts
            .iter()
            .map(|(_, b)| u64::from_le_bytes(b[..8].try_into().unwrap()))
            .sum();
        Bytes::copy_from_slice(&s.to_le_bytes())
    }

    fn contrib(v: u64) -> Bytes {
        Bytes::copy_from_slice(&v.to_le_bytes())
    }

    #[test]
    fn all_participants_agree_on_combined_value() {
        let r = router(3);
        let group = vec![0usize, 1, 2];
        let handles: Vec<_> = (0..3)
            .map(|me| {
                let r = Arc::clone(&r);
                let group = group.clone();
                std::thread::spawn(move || {
                    r.rendezvous(key(1), me, &group, contrib(me as u64 + 1), sum_combine)
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap().unwrap();
            assert_eq!(u64::from_le_bytes(out.value[..8].try_into().unwrap()), 6);
            assert!(out.failures_observed.is_empty());
        }
        assert_eq!(r.rendezvous.in_flight(), 0, "entry retired");
    }

    #[test]
    fn completes_when_member_dead_before_joining() {
        let r = router(3);
        r.kill(2);
        let group = vec![0usize, 1, 2];
        let handles: Vec<_> = (0..2)
            .map(|me| {
                let r = Arc::clone(&r);
                let group = group.clone();
                std::thread::spawn(move || {
                    r.rendezvous(key(2), me, &group, contrib(10), sum_combine)
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap().unwrap();
            assert_eq!(u64::from_le_bytes(out.value[..8].try_into().unwrap()), 20);
            assert_eq!(out.failures_observed, vec![2]);
        }
    }

    #[test]
    fn completes_when_member_dies_while_waiting() {
        let r = router(3);
        let group = vec![0usize, 1, 2];
        let handles: Vec<_> = (0..2)
            .map(|me| {
                let r = Arc::clone(&r);
                let group = group.clone();
                std::thread::spawn(move || {
                    r.rendezvous(key(3), me, &group, contrib(5), sum_combine)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        r.kill(2); // the missing participant dies; waiters must complete
        for h in handles {
            let out = h.join().unwrap().unwrap();
            assert_eq!(out.failures_observed, vec![2]);
        }
    }

    #[test]
    fn own_death_while_waiting_returns_killed() {
        let r = router(2);
        let group = vec![0usize, 1];
        let r2 = Arc::clone(&r);
        let g2 = group.clone();
        let h = std::thread::spawn(move || r2.rendezvous(key(4), 0, &g2, contrib(1), sum_combine));
        std::thread::sleep(Duration::from_millis(20));
        r.kill(0);
        assert_eq!(h.join().unwrap(), Err(MpiError::Killed));
    }

    #[test]
    fn abort_unblocks_rendezvous() {
        let r = router(2);
        let group = vec![0usize, 1];
        let r2 = Arc::clone(&r);
        let g2 = group.clone();
        let h = std::thread::spawn(move || r2.rendezvous(key(5), 0, &g2, contrib(1), sum_combine));
        std::thread::sleep(Duration::from_millis(20));
        r.abort();
        assert_eq!(h.join().unwrap(), Err(MpiError::Aborted));
    }

    #[test]
    fn distinct_seqs_do_not_interfere() {
        let r = router(2);
        let group = vec![0usize, 1];
        let mut handles = Vec::new();
        for seq in [10u64, 11] {
            for me in 0..2usize {
                let r = Arc::clone(&r);
                let group = group.clone();
                handles.push(std::thread::spawn(move || {
                    r.rendezvous(key(seq), me, &group, contrib(seq), sum_combine)
                        .unwrap()
                }));
            }
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Each op sums its own contributions: 2*seq.
        let sums: Vec<u64> = results
            .iter()
            .map(|o| u64::from_le_bytes(o.value[..8].try_into().unwrap()))
            .collect();
        assert!(sums.contains(&20) && sums.contains(&22));
    }
}
