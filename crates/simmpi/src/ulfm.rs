//! ULFM fault-tolerance extensions on [`Comm`].
//!
//! The four primitives the paper's Fenix layer builds on, with the semantics
//! of the MPI-ULFM specification (Bland et al. 2013):
//!
//! * [`Comm::revoke`] — non-collective; permanently poisons the communicator
//!   so every pending/future operation on it raises
//!   [`MpiError::Revoked`]. This is how one rank's local failure knowledge
//!   is propagated to ranks that would otherwise block forever.
//! * [`Comm::agree`] — fault-tolerant agreement on a bitwise-AND of flags;
//!   completes despite failures (including failures *during* the call) and
//!   reports the failed ranks it observed. Works on revoked communicators.
//! * [`Comm::shrink`] — collectively builds a new communicator containing
//!   the survivors, preserving their relative order. Works on revoked
//!   communicators.
//! * [`Comm::failed_ranks`] — local knowledge of failed group members
//!   (`MPI_Comm_failure_ack` + `get_acked` folded into one query).

use std::sync::Arc;

use bytes::Bytes;
use telemetry::Event;

use crate::comm::Comm;
use crate::error::{MpiError, MpiResult};
use crate::rendezvous::{purpose, RendezvousKey};
use crate::router::Router;

/// Result of [`Comm::agree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AgreeOutcome {
    /// Bitwise AND of every live participant's flags.
    pub flags: u64,
    /// Global ranks of group members observed dead during the agreement.
    pub failed: Vec<usize>,
}

/// Decode a little-endian `u64` agreement contribution; `None` when the
/// payload is short. Peers always send exactly 8 bytes, but the recovery
/// path must degrade on a malformed frame, not panic on it.
fn u64_contribution(b: &[u8]) -> Option<u64> {
    let head = b.get(..8)?;
    let mut word = [0u8; 8];
    word.copy_from_slice(head);
    Some(u64::from_le_bytes(word))
}

impl Comm {
    /// Revoke this communicator (ULFM `MPI_Comm_revoke`): every rank blocked
    /// on it wakes with `Revoked`, and all future operations fail likewise.
    /// Idempotent; any rank may call it at any time.
    pub fn revoke(&self) {
        self.router().recorder(self.my_global()).emit(Event::Revoke);
        self.router().revoke(self.id(), self.epoch());
    }

    /// Whether this communicator has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.router().is_revoked(self.id(), self.epoch())
    }

    /// Locally-known failed members of this communicator, as communicator
    /// ranks (ULFM `failure_ack`/`get_acked`).
    pub fn failed_ranks(&self) -> Vec<usize> {
        let dead = self.router().dead_snapshot();
        (0..self.size())
            .filter(|&r| dead.contains(&self.global_of(r)))
            .collect()
    }

    /// Fault-tolerant agreement (ULFM `MPI_Comm_agree`).
    ///
    /// All live members must call with the same `seq` (successive agreements
    /// on one communicator must use increasing sequence numbers — the caller
    /// owns that ordering, which in Fenix is the repair counter). Returns the
    /// AND of all live contributions plus the failures observed. Completes
    /// even on a revoked communicator.
    pub fn agree(&self, seq: u64, flags: u64) -> MpiResult<AgreeOutcome> {
        let key = RendezvousKey {
            comm: self.id(),
            epoch: self.epoch(),
            purpose: purpose::AGREE,
            seq,
        };
        let outcome = self.router().rendezvous(
            key,
            self.my_global(),
            self.group(),
            Bytes::copy_from_slice(&flags.to_le_bytes()),
            |parts| {
                // Every `agree` peer contributes exactly 8 bytes; a short
                // contribution is excluded from the AND rather than
                // panicking the combiner on the recovery path.
                let agreed = parts
                    .iter()
                    .filter_map(|(_, b)| u64_contribution(b))
                    .fold(u64::MAX, |a, b| a & b);
                Bytes::copy_from_slice(&agreed.to_le_bytes())
            },
        )?;
        let flags = u64_contribution(&outcome.value).ok_or(MpiError::TypeMismatch {
            expected: 8,
            got: outcome.value.len(),
        })?;
        let agreed = AgreeOutcome {
            flags,
            failed: outcome.failures_observed,
        };
        self.router().recorder(self.my_global()).emit(Event::Agree {
            seq,
            flags: agreed.flags,
        });
        Ok(agreed)
    }

    /// Fault-tolerant shrink (ULFM `MPI_Comm_shrink`): survivors collectively
    /// agree on the dead set and build a new communicator containing only
    /// the survivors, preserving relative rank order. All live members must
    /// call with the same `seq`.
    pub fn shrink(&self, seq: u64) -> MpiResult<Comm> {
        let key = RendezvousKey {
            comm: self.id(),
            epoch: self.epoch(),
            purpose: purpose::SHRINK,
            seq,
        };
        let outcome = self.router().rendezvous(
            key,
            self.my_global(),
            self.group(),
            Bytes::new(),
            |_parts| Bytes::new(),
        )?;
        // The agreed dead set is the snapshot taken by the completing
        // participant; every rank derives the identical survivor group.
        let dead = &outcome.failures_observed;
        let survivors: Vec<usize> = self
            .group()
            .iter()
            .copied()
            .filter(|g| !dead.contains(g))
            .collect();
        let new_id = Router::derive_comm_id(self.id(), ((self.epoch() as u64) << 32) | seq);
        self.router()
            .recorder(self.my_global())
            .emit(Event::Shrink {
                survivors: survivors.len() as u64,
            });
        Ok(Comm::from_group(
            Arc::clone(self.router()),
            new_id,
            0,
            Arc::new(survivors),
            self.my_global(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_contribution_decodes_and_rejects_short_frames() {
        assert_eq!(u64_contribution(&42u64.to_le_bytes()), Some(42));
        let mut long = 7u64.to_le_bytes().to_vec();
        long.push(0xff);
        assert_eq!(u64_contribution(&long), Some(7));
        assert_eq!(u64_contribution(&[1, 2, 3]), None);
    }
}
