//! Job launch: one OS thread per MPI rank.
//!
//! [`Universe::launch`] is the `mpirun` of the simulation. It spawns the
//! rank threads, hands each a [`RankCtx`], runs the application closure, and
//! collects per-rank outcomes plus the job's wall time. When a rank fails
//! and `abort_on_failure` is set (plain-MPI semantics, used by the paper's
//! relaunch-based baselines), the whole job is aborted — surviving ranks
//! observe [`MpiError::Aborted`] and unwind, exactly like `MPI_Abort` after
//! an unhandled fault.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster::Cluster;
use telemetry::{Event, Recorder, Telemetry};

use crate::comm::Comm;
use crate::error::{MpiError, MpiResult};
use crate::fault::FaultPlan;
use crate::profile::Profile;
use crate::router::Router;
use crate::sched::Scheduler;

/// Which execution engine drives the rank bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One free-running OS thread per rank; modeled time is burned as
    /// scaled real sleeps. The production default and the differential
    /// oracle for the DES backend.
    Threads,
    /// Discrete-event simulation: ranks are cooperative tasks on virtual
    /// time, one running at a time, schedules a pure function of `seed`
    /// (see [`crate::sched`]).
    Des { seed: u64 },
}

impl Default for Backend {
    /// `Threads`, unless `SIMMPI_BACKEND=des` is set in the environment
    /// (with an optional `SIMMPI_SEED` for the schedule seed).
    fn default() -> Self {
        match std::env::var("SIMMPI_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("des") => {
                let seed = std::env::var("SIMMPI_SEED")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                Backend::Des { seed }
            }
            _ => Backend::Threads,
        }
    }
}

/// Launch-time options.
#[derive(Clone, Debug, Default)]
pub struct UniverseConfig {
    /// If true, any rank failure aborts the whole job (plain MPI). If false,
    /// failures only surface as ULFM errors and a fault-tolerant layer
    /// (Fenix) is expected to recover (the job keeps running).
    pub abort_on_failure: bool,
    /// Whether to charge the modeled job-startup cost before running ranks
    /// (the harness accounts it under "Other").
    pub charge_startup: bool,
    /// Observability hub for this launch. When set, every rank gets a
    /// recorder feeding the shared event rings/metrics and `fault_point`,
    /// ULFM, and kill paths emit structured events. `None` (the default)
    /// records nothing.
    pub telemetry: Option<Telemetry>,
    /// Execution engine (threads by default; see [`Backend`]). Full
    /// determinism on the DES backend additionally wants a cluster built
    /// with `virtual_time: true` and a telemetry hub stamping events from
    /// the cluster clock.
    pub backend: Backend,
}

/// Per-rank execution context handed to the application closure.
pub struct RankCtx {
    rank: usize,
    world: Comm,
    router: Arc<Router>,
    fault: Arc<FaultPlan>,
    profile: Arc<Profile>,
    recorder: Recorder,
}

impl RankCtx {
    /// Global (world) rank of this thread.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The world communicator (`MPI_COMM_WORLD` equivalent).
    pub fn world(&self) -> &Comm {
        &self.world
    }

    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    pub fn cluster(&self) -> &Cluster {
        self.router.cluster()
    }

    pub fn profile(&self) -> &Arc<Profile> {
        &self.profile
    }

    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.fault
    }

    /// This rank's telemetry recorder (disabled when telemetry is off).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Application fault point: dies here if the fault plan says so.
    /// The returned error must be propagated (`?`) so the rank unwinds.
    pub fn fault_point(&self, label: &str, count: u64) -> MpiResult<()> {
        if self.fault.check(self.rank, label, count) {
            self.recorder.emit_with(|| Event::FaultInjected {
                site: label.to_string(),
                count,
            });
            self.router.kill(self.rank);
            return Err(MpiError::Killed);
        }
        Ok(())
    }

    /// Unconditionally kill this rank (tests, custom failure modes).
    pub fn die(&self) -> MpiError {
        self.router.kill(self.rank);
        MpiError::Killed
    }
}

/// Outcome of one rank's execution.
#[derive(Debug)]
pub struct RankOutcome {
    pub rank: usize,
    pub result: MpiResult<()>,
    pub profile: Arc<Profile>,
}

/// Outcome of a whole launch.
#[derive(Debug)]
pub struct LaunchReport {
    pub outcomes: Vec<RankOutcome>,
    /// Wall time of the launch (excluding modeled startup, which the
    /// harness accounts separately).
    pub wall: Duration,
    /// Whether the job ended in an abort.
    pub aborted: bool,
}

impl LaunchReport {
    /// True when every rank completed without error.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// Ranks that ended with `Killed` (the injected victims).
    pub fn killed_ranks(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .filter(|o| o.result == Err(MpiError::Killed))
            .map(|o| o.rank)
            .collect()
    }

    /// Merged per-phase profile across ranks: maximum over ranks per phase
    /// (critical-path view, matching a wall-clock measurement).
    pub fn max_profile(&self) -> Profile {
        let out = Profile::new();
        for &phase in &crate::profile::Phase::ALL {
            let m = self
                .outcomes
                .iter()
                .map(|o| o.profile.get(phase))
                .max()
                .unwrap_or_default();
            out.add(phase, m);
        }
        out
    }
}

/// The job launcher.
pub struct Universe;

impl Universe {
    /// Launch `cluster.total_ranks()` rank threads running `f`.
    ///
    /// `f` is invoked once per rank. A rank returning `Err` signals failure:
    /// with `abort_on_failure` the remaining ranks are aborted. Panics in
    /// `f` are caught, reported as `Killed`, and treated like failures so
    /// the job cannot hang.
    pub fn launch<F>(
        cluster: &Cluster,
        config: UniverseConfig,
        fault: Arc<FaultPlan>,
        f: F,
    ) -> LaunchReport
    where
        F: Fn(&mut RankCtx) -> MpiResult<()> + Send + Sync,
    {
        let n = cluster.topology().total_ranks();
        let router = Router::new(cluster.clone());

        // Storage/backend faults in the schedule are delivered through the
        // cluster's injector hook, which the VeloC storage path consults.
        // Installed only when present so launches with a kills-only plan
        // leave any externally installed injector alone.
        if fault.has_injections() {
            let injector: Arc<dyn cluster::FaultInjector> = Arc::clone(&fault) as _;
            cluster.set_injector(Some(injector));
        }

        // DES backend: build the scheduler on the cluster's virtual clock
        // (or a private one when the cluster runs on the wall), attach it
        // to the router so waits become yields, and make deadlock abort
        // the job as a typed outcome instead of hanging.
        let sched = match config.backend {
            Backend::Threads => None,
            Backend::Des { seed } => {
                let clock = if cluster.clock().is_virtual() {
                    Arc::clone(cluster.clock())
                } else {
                    Arc::new(cluster::Clock::virtual_at(0))
                };
                let s = Scheduler::new(n, seed, clock);
                router.set_sched(Some(Arc::clone(&s)));
                let r = Arc::clone(&router);
                s.set_deadlock_hook(move || r.abort());
                Some(s)
            }
        };

        // Driver-side sleeps during a DES launch (the startup charge here,
        // teardown charges in relaunch loops) advance the virtual clock
        // instead of parking the launching thread.
        let _driver_sleeper = sched.as_ref().map(|s| {
            let clock = Arc::clone(s.clock());
            cluster::install_virtual_sleeper(Arc::new(move |modeled: Duration| {
                clock.advance(modeled.as_nanos().min(u128::from(u64::MAX)) as u64);
            }))
        });

        if config.charge_startup {
            let startup = cluster.config().relaunch.startup(n);
            cluster.time_scale().sleep(startup);
        }

        let t0 = Instant::now();
        let start_ns = sched.as_ref().map(|s| s.clock().now_ns());
        let mut outcomes: Vec<Option<RankOutcome>> = Vec::new();
        outcomes.resize_with(n, || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let router = Arc::clone(&router);
                let fault = Arc::clone(&fault);
                let f = &f;
                let config = &config;
                let sched = sched.clone();
                handles.push(scope.spawn(move || {
                    // Under DES this rank is a cooperative task: its modeled
                    // sleeps become scheduler events, and it runs only while
                    // it holds the baton.
                    let _rank_sleeper = sched.as_ref().map(|s| {
                        let s = Arc::clone(s);
                        cluster::install_virtual_sleeper(Arc::new(move |modeled: Duration| {
                            s.sleep(rank, modeled);
                        }))
                    });
                    if let Some(s) = &sched {
                        s.wait_for_start(rank);
                    }
                    let profile = Arc::new(Profile::new());
                    let recorder = match &config.telemetry {
                        Some(tel) => {
                            let rec = tel.recorder(rank, Arc::clone(profile.accumulator()));
                            profile.attach_recorder(rec.clone());
                            router.set_recorder(rank, rec.clone());
                            rec
                        }
                        None => Recorder::disabled(),
                    };
                    let mut ctx = RankCtx {
                        rank,
                        world: Comm::world(Arc::clone(&router), rank),
                        router: Arc::clone(&router),
                        fault,
                        profile: Arc::clone(&profile),
                        recorder,
                    };
                    let result = match std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx))) {
                        Ok(r) => r,
                        Err(_) => {
                            // A panicking rank is indistinguishable from a
                            // crash: mark it dead so peers observe it.
                            router.kill(rank);
                            Err(MpiError::Killed)
                        }
                    };
                    if result.is_err() && config.abort_on_failure {
                        router.abort();
                    }
                    if let Some(s) = &sched {
                        // Release the baton for good: the next event (or
                        // the deadlock hook) takes over.
                        s.finish(rank);
                    }
                    RankOutcome {
                        rank,
                        result,
                        profile,
                    }
                }));
            }
            if let Some(s) = &sched {
                // All rank threads exist (parked on their batons): seed a
                // start event per task and dispatch the first. The launch
                // then runs entirely on baton hand-offs.
                s.start();
            }
            for (rank, h) in handles.into_iter().enumerate() {
                let outcome = h.join().unwrap_or_else(|_| RankOutcome {
                    rank,
                    result: Err(MpiError::Killed),
                    profile: Arc::new(Profile::new()),
                });
                outcomes[rank] = Some(outcome);
            }
        });

        // Break the scheduler↔router reference cycle and report virtual
        // wall time for DES launches (the modeled job duration — real
        // elapsed time is meaningless when no thread ever sleeps).
        let wall = match (&sched, start_ns) {
            (Some(s), Some(ns)) => {
                router.set_sched(None);
                s.clear_deadlock_hook();
                Duration::from_nanos(s.clock().now_ns().saturating_sub(ns))
            }
            _ => t0.elapsed(),
        };

        LaunchReport {
            outcomes: outcomes.into_iter().map(|o| o.expect("joined")).collect(),
            wall,
            aborted: router.is_aborted(),
        }
    }
}
