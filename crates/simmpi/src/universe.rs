//! Job launch: one OS thread per MPI rank.
//!
//! [`Universe::launch`] is the `mpirun` of the simulation. It spawns the
//! rank threads, hands each a [`RankCtx`], runs the application closure, and
//! collects per-rank outcomes plus the job's wall time. When a rank fails
//! and `abort_on_failure` is set (plain-MPI semantics, used by the paper's
//! relaunch-based baselines), the whole job is aborted — surviving ranks
//! observe [`MpiError::Aborted`] and unwind, exactly like `MPI_Abort` after
//! an unhandled fault.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster::Cluster;
use telemetry::{Event, Recorder, Telemetry};

use crate::comm::Comm;
use crate::error::{MpiError, MpiResult};
use crate::fault::FaultPlan;
use crate::profile::Profile;
use crate::router::Router;

/// Launch-time options.
#[derive(Clone, Debug, Default)]
pub struct UniverseConfig {
    /// If true, any rank failure aborts the whole job (plain MPI). If false,
    /// failures only surface as ULFM errors and a fault-tolerant layer
    /// (Fenix) is expected to recover (the job keeps running).
    pub abort_on_failure: bool,
    /// Whether to charge the modeled job-startup cost before running ranks
    /// (the harness accounts it under "Other").
    pub charge_startup: bool,
    /// Observability hub for this launch. When set, every rank gets a
    /// recorder feeding the shared event rings/metrics and `fault_point`,
    /// ULFM, and kill paths emit structured events. `None` (the default)
    /// records nothing.
    pub telemetry: Option<Telemetry>,
}

/// Per-rank execution context handed to the application closure.
pub struct RankCtx {
    rank: usize,
    world: Comm,
    router: Arc<Router>,
    fault: Arc<FaultPlan>,
    profile: Arc<Profile>,
    recorder: Recorder,
}

impl RankCtx {
    /// Global (world) rank of this thread.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The world communicator (`MPI_COMM_WORLD` equivalent).
    pub fn world(&self) -> &Comm {
        &self.world
    }

    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    pub fn cluster(&self) -> &Cluster {
        self.router.cluster()
    }

    pub fn profile(&self) -> &Arc<Profile> {
        &self.profile
    }

    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.fault
    }

    /// This rank's telemetry recorder (disabled when telemetry is off).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Application fault point: dies here if the fault plan says so.
    /// The returned error must be propagated (`?`) so the rank unwinds.
    pub fn fault_point(&self, label: &str, count: u64) -> MpiResult<()> {
        if self.fault.check(self.rank, label, count) {
            self.recorder.emit_with(|| Event::FaultInjected {
                site: label.to_string(),
                count,
            });
            self.router.kill(self.rank);
            return Err(MpiError::Killed);
        }
        Ok(())
    }

    /// Unconditionally kill this rank (tests, custom failure modes).
    pub fn die(&self) -> MpiError {
        self.router.kill(self.rank);
        MpiError::Killed
    }
}

/// Outcome of one rank's execution.
#[derive(Debug)]
pub struct RankOutcome {
    pub rank: usize,
    pub result: MpiResult<()>,
    pub profile: Arc<Profile>,
}

/// Outcome of a whole launch.
#[derive(Debug)]
pub struct LaunchReport {
    pub outcomes: Vec<RankOutcome>,
    /// Wall time of the launch (excluding modeled startup, which the
    /// harness accounts separately).
    pub wall: Duration,
    /// Whether the job ended in an abort.
    pub aborted: bool,
}

impl LaunchReport {
    /// True when every rank completed without error.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// Ranks that ended with `Killed` (the injected victims).
    pub fn killed_ranks(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .filter(|o| o.result == Err(MpiError::Killed))
            .map(|o| o.rank)
            .collect()
    }

    /// Merged per-phase profile across ranks: maximum over ranks per phase
    /// (critical-path view, matching a wall-clock measurement).
    pub fn max_profile(&self) -> Profile {
        let out = Profile::new();
        for &phase in &crate::profile::Phase::ALL {
            let m = self
                .outcomes
                .iter()
                .map(|o| o.profile.get(phase))
                .max()
                .unwrap_or_default();
            out.add(phase, m);
        }
        out
    }
}

/// The job launcher.
pub struct Universe;

impl Universe {
    /// Launch `cluster.total_ranks()` rank threads running `f`.
    ///
    /// `f` is invoked once per rank. A rank returning `Err` signals failure:
    /// with `abort_on_failure` the remaining ranks are aborted. Panics in
    /// `f` are caught, reported as `Killed`, and treated like failures so
    /// the job cannot hang.
    pub fn launch<F>(
        cluster: &Cluster,
        config: UniverseConfig,
        fault: Arc<FaultPlan>,
        f: F,
    ) -> LaunchReport
    where
        F: Fn(&mut RankCtx) -> MpiResult<()> + Send + Sync,
    {
        let n = cluster.topology().total_ranks();
        let router = Router::new(cluster.clone());

        // Storage/backend faults in the schedule are delivered through the
        // cluster's injector hook, which the VeloC storage path consults.
        // Installed only when present so launches with a kills-only plan
        // leave any externally installed injector alone.
        if fault.has_injections() {
            let injector: Arc<dyn cluster::FaultInjector> = Arc::clone(&fault) as _;
            cluster.set_injector(Some(injector));
        }

        if config.charge_startup {
            let startup = cluster.config().relaunch.startup(n);
            cluster.time_scale().sleep(startup);
        }

        let t0 = Instant::now();
        let mut outcomes: Vec<Option<RankOutcome>> = Vec::new();
        outcomes.resize_with(n, || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let router = Arc::clone(&router);
                let fault = Arc::clone(&fault);
                let f = &f;
                let config = &config;
                handles.push(scope.spawn(move || {
                    let profile = Arc::new(Profile::new());
                    let recorder = match &config.telemetry {
                        Some(tel) => {
                            let rec = tel.recorder(rank, Arc::clone(profile.accumulator()));
                            profile.attach_recorder(rec.clone());
                            router.set_recorder(rank, rec.clone());
                            rec
                        }
                        None => Recorder::disabled(),
                    };
                    let mut ctx = RankCtx {
                        rank,
                        world: Comm::world(Arc::clone(&router), rank),
                        router: Arc::clone(&router),
                        fault,
                        profile: Arc::clone(&profile),
                        recorder,
                    };
                    let result = match std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx))) {
                        Ok(r) => r,
                        Err(_) => {
                            // A panicking rank is indistinguishable from a
                            // crash: mark it dead so peers observe it.
                            router.kill(rank);
                            Err(MpiError::Killed)
                        }
                    };
                    if result.is_err() && config.abort_on_failure {
                        router.abort();
                    }
                    RankOutcome {
                        rank,
                        result,
                        profile,
                    }
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                let outcome = h.join().unwrap_or_else(|_| RankOutcome {
                    rank,
                    result: Err(MpiError::Killed),
                    profile: Arc::new(Profile::new()),
                });
                outcomes[rank] = Some(outcome);
            }
        });

        LaunchReport {
            outcomes: outcomes.into_iter().map(|o| o.expect("joined")).collect(),
            wall: t0.elapsed(),
            aborted: router.is_aborted(),
        }
    }
}
