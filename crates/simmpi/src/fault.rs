//! Deterministic fault injection.
//!
//! The paper simulates failures "through a rank exiting early, approximately
//! 95% of the way between two checkpoints". A [`FaultSchedule`] generalizes
//! that single shape into a cross-layer schedule:
//!
//! * **Process faults** ([`Kill`]) — named application fault points (e.g.
//!   `"iter"`, `"ckpt"`, `"recovery"`) fire when a chosen rank reaches a
//!   chosen count. Each kill fires at most once, even across simulated job
//!   relaunches — the schedule is shared by reference between launches so a
//!   recovered run does not re-kill itself at the same spot.
//! * **Data faults** ([`Corruption`]) — checkpoint blobs are corrupted or
//!   truncated as they are written to node-local scratch or the parallel
//!   filesystem, via the [`cluster::FaultInjector`] hook the storage layer
//!   consults.
//! * **Backend faults** ([`BackendFault`]) — the asynchronous flush worker
//!   of a rank fails to spawn, or dies after completing a given number of
//!   flushes.
//!
//! [`FaultPlan`] remains as an alias for the kills-only usage every existing
//! call site was written against; all old constructors still apply.

use std::sync::atomic::{AtomicBool, Ordering};

use bytes::Bytes;
use cluster::{FaultInjector, StorageTier};

/// One scheduled failure.
#[derive(Debug)]
pub struct Kill {
    /// Global (world) rank to kill.
    pub rank: usize,
    /// Fault-point label the application passes to `RankCtx::fault_point`.
    pub label: String,
    /// Fires when the labelled fault point reaches this count.
    pub at: u64,
    fired: AtomicBool,
}

impl Kill {
    pub fn new(rank: usize, label: impl Into<String>, at: u64) -> Self {
        Kill {
            rank,
            label: label.into(),
            at,
            fired: AtomicBool::new(false),
        }
    }

    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

/// How a matched checkpoint blob is damaged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptKind {
    /// XOR the byte at `blob.len() - 1 - back` with 0xFF (offset from the
    /// end, where region payload lives — the header is at the front).
    FlipBack { back: usize },
    /// XOR the byte at `front` with 0xFF (offset from the start, landing
    /// in the frame header/metadata rather than payload bytes).
    FlipFront { front: usize },
    /// Keep only the first `keep` bytes.
    Truncate { keep: usize },
}

/// Which storage tier(s) a corruption applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptTier {
    Scratch,
    Pfs,
    /// Corrupt the write on both tiers (the version becomes unrecoverable
    /// on the matched rank, forcing fallback to an older intact version).
    Both,
}

impl CorruptTier {
    fn matches(self, tier: StorageTier) -> bool {
        match self {
            CorruptTier::Scratch => tier == StorageTier::Scratch,
            CorruptTier::Pfs => tier == StorageTier::Pfs,
            CorruptTier::Both => true,
        }
    }
}

/// One scheduled checkpoint-blob corruption.
///
/// Checkpoint paths have the shape `"{name}/v{version}/r{rank}"` on both
/// tiers; a corruption matches on the `(version, rank)` coordinates so it
/// is independent of the region naming a particular strategy uses. Each
/// entry fires at most once per tier.
#[derive(Debug)]
pub struct Corruption {
    pub tier: CorruptTier,
    /// Checkpoint version to damage (`/v{version}/` path segment).
    pub version: u64,
    /// Logical rank whose blob is damaged (`/r{rank}` path suffix).
    pub rank: usize,
    pub kind: CorruptKind,
    fired_scratch: AtomicBool,
    fired_pfs: AtomicBool,
}

impl Corruption {
    pub fn new(tier: CorruptTier, version: u64, rank: usize, kind: CorruptKind) -> Self {
        Corruption {
            tier,
            version,
            rank,
            kind,
            fired_scratch: AtomicBool::new(false),
            fired_pfs: AtomicBool::new(false),
        }
    }

    fn fired_slot(&self, tier: StorageTier) -> &AtomicBool {
        match tier {
            StorageTier::Scratch => &self.fired_scratch,
            StorageTier::Pfs => &self.fired_pfs,
        }
    }

    pub fn has_fired(&self) -> bool {
        self.fired_scratch.load(Ordering::Acquire) || self.fired_pfs.load(Ordering::Acquire)
    }

    fn matches_path(&self, path: &str) -> bool {
        let vseg = format!("/v{}/", self.version);
        let rsuffix = format!("/r{}", self.rank);
        path.contains(&vseg) && path.ends_with(&rsuffix)
    }

    fn apply(&self, blob: &Bytes) -> Bytes {
        match self.kind {
            CorruptKind::FlipBack { back } => {
                if blob.is_empty() {
                    return blob.clone();
                }
                let idx = blob.len().saturating_sub(1 + back.min(blob.len() - 1));
                let mut out = blob.to_vec();
                if let Some(b) = out.get_mut(idx) {
                    *b ^= 0xFF;
                }
                Bytes::from(out)
            }
            CorruptKind::FlipFront { front } => {
                if blob.is_empty() {
                    return blob.clone();
                }
                let idx = front.min(blob.len() - 1);
                let mut out = blob.to_vec();
                if let Some(b) = out.get_mut(idx) {
                    *b ^= 0xFF;
                }
                Bytes::from(out)
            }
            CorruptKind::Truncate { keep } => blob.slice(0..keep.min(blob.len())),
        }
    }
}

/// One scheduled flush-backend fault.
#[derive(Debug)]
pub enum BackendFault {
    /// The backend worker thread of `rank` fails to spawn; the VeloC client
    /// degrades to synchronous flushing.
    SpawnFail { rank: usize, fired: AtomicBool },
    /// The backend worker of `rank` dies after completing `after` flushes;
    /// later flushes run inline on the caller.
    WorkerDeath {
        rank: usize,
        after: u64,
        fired: AtomicBool,
    },
}

impl BackendFault {
    pub fn spawn_fail(rank: usize) -> Self {
        BackendFault::SpawnFail {
            rank,
            fired: AtomicBool::new(false),
        }
    }

    pub fn worker_death(rank: usize, after: u64) -> Self {
        BackendFault::WorkerDeath {
            rank,
            after,
            fired: AtomicBool::new(false),
        }
    }

    pub fn has_fired(&self) -> bool {
        match self {
            BackendFault::SpawnFail { fired, .. } | BackendFault::WorkerDeath { fired, .. } => {
                fired.load(Ordering::Acquire)
            }
        }
    }
}

/// A cross-layer set of scheduled faults, shared between (re)launches.
#[derive(Debug, Default)]
pub struct FaultSchedule {
    kills: Vec<Kill>,
    corruptions: Vec<Corruption>,
    backend_faults: Vec<BackendFault>,
}

/// The kills-only view every pre-chaos call site was written against.
pub type FaultPlan = FaultSchedule;

impl FaultSchedule {
    /// No failures.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Plan a single kill.
    pub fn kill_at(rank: usize, label: impl Into<String>, at: u64) -> Self {
        FaultSchedule {
            kills: vec![Kill::new(rank, label, at)],
            ..FaultSchedule::default()
        }
    }

    /// Builder-style: add another kill.
    pub fn and_kill(mut self, rank: usize, label: impl Into<String>, at: u64) -> Self {
        self.kills.push(Kill::new(rank, label, at));
        self
    }

    /// Builder-style: add a checkpoint-blob corruption.
    pub fn and_corrupt(
        mut self,
        tier: CorruptTier,
        version: u64,
        rank: usize,
        kind: CorruptKind,
    ) -> Self {
        self.corruptions
            .push(Corruption::new(tier, version, rank, kind));
        self
    }

    /// Builder-style: add a flush-backend fault.
    pub fn and_backend(mut self, fault: BackendFault) -> Self {
        self.backend_faults.push(fault);
        self
    }

    pub fn kills(&self) -> &[Kill] {
        &self.kills
    }

    pub fn corruptions(&self) -> &[Corruption] {
        &self.corruptions
    }

    pub fn backend_faults(&self) -> &[BackendFault] {
        &self.backend_faults
    }

    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && !self.has_injections()
    }

    /// Whether this schedule carries storage/backend faults that need the
    /// cluster-level injector hook installed.
    pub fn has_injections(&self) -> bool {
        !self.corruptions.is_empty() || !self.backend_faults.is_empty()
    }

    /// Should `rank` die now at fault point `label` with counter `count`?
    /// Marks the kill as fired; returns `true` only the first time.
    pub fn check(&self, rank: usize, label: &str, count: u64) -> bool {
        for k in &self.kills {
            if k.rank == rank
                && k.at == count
                && k.label == label
                && k.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// How many kills have fired so far.
    pub fn fired_count(&self) -> usize {
        self.kills.iter().filter(|k| k.has_fired()).count()
    }
}

impl FaultInjector for FaultSchedule {
    fn corrupt_write(&self, tier: StorageTier, path: &str, blob: &Bytes) -> Option<Bytes> {
        let mut out: Option<Bytes> = None;
        for c in &self.corruptions {
            if c.tier.matches(tier)
                && c.matches_path(path)
                && c.fired_slot(tier)
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                let base = out.as_ref().unwrap_or(blob);
                out = Some(c.apply(base));
            }
        }
        out
    }

    fn backend_spawn_fails(&self, rank: usize) -> bool {
        for f in &self.backend_faults {
            if let BackendFault::SpawnFail { rank: r, fired } = f {
                if *r == rank
                    && fired
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    return true;
                }
            }
        }
        false
    }

    fn flush_worker_dies(&self, rank: usize, completed: u64) -> bool {
        for f in &self.backend_faults {
            if let BackendFault::WorkerDeath {
                rank: r,
                after,
                fired,
            } = f
            {
                if *r == rank
                    && completed >= *after
                    && fired
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once() {
        let plan = FaultPlan::kill_at(2, "iter", 10);
        assert!(!plan.check(2, "iter", 9));
        assert!(!plan.check(1, "iter", 10));
        assert!(!plan.check(2, "other", 10));
        assert!(plan.check(2, "iter", 10));
        assert!(!plan.check(2, "iter", 10), "must not re-fire");
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn multiple_kills_independent() {
        let plan = FaultPlan::kill_at(0, "iter", 5).and_kill(1, "iter", 7);
        assert!(plan.check(0, "iter", 5));
        assert!(!plan.check(1, "iter", 5));
        assert!(plan.check(1, "iter", 7));
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.check(0, "iter", 0));
    }

    #[test]
    fn duplicate_kills_at_same_site_both_fire() {
        // Two kills at the same (rank, label, at): the first check fires
        // one, and — across a simulated relaunch that replays the fault
        // point — the second check fires the other. A third never fires.
        let plan = FaultPlan::kill_at(0, "iter", 3).and_kill(0, "iter", 3);
        assert!(plan.check(0, "iter", 3), "first duplicate fires");
        assert!(plan.check(0, "iter", 3), "second duplicate fires");
        assert!(!plan.check(0, "iter", 3), "no third kill exists");
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn corruption_matches_version_and_rank_once_per_tier() {
        let plan = FaultSchedule::none().and_corrupt(
            CorruptTier::Both,
            4,
            1,
            CorruptKind::FlipBack { back: 0 },
        );
        let blob = Bytes::from_static(b"hello");
        // Wrong coordinates: untouched.
        assert!(plan
            .corrupt_write(StorageTier::Scratch, "ck/v3/r1", &blob)
            .is_none());
        assert!(plan
            .corrupt_write(StorageTier::Scratch, "ck/v4/r2", &blob)
            .is_none());
        // First matching write on each tier is corrupted, later ones not.
        let c = plan
            .corrupt_write(StorageTier::Scratch, "ck/v4/r1", &blob)
            .expect("matched");
        assert_eq!(c[4], b'o' ^ 0xFF);
        assert!(plan
            .corrupt_write(StorageTier::Scratch, "ck/v4/r1", &blob)
            .is_none());
        assert!(plan
            .corrupt_write(StorageTier::Pfs, "ck/v4/r1", &blob)
            .is_some());
        assert!(plan
            .corrupt_write(StorageTier::Pfs, "ck/v4/r1", &blob)
            .is_none());
        assert!(plan.corruptions()[0].has_fired());
    }

    #[test]
    fn truncation_keeps_prefix() {
        let plan = FaultSchedule::none().and_corrupt(
            CorruptTier::Pfs,
            1,
            0,
            CorruptKind::Truncate { keep: 2 },
        );
        let blob = Bytes::from_static(b"abcdef");
        let c = plan
            .corrupt_write(StorageTier::Pfs, "ck/v1/r0", &blob)
            .expect("matched");
        assert_eq!(&c[..], b"ab");
        // Scratch tier was not requested.
        assert!(plan
            .corrupt_write(StorageTier::Scratch, "ck/v1/r0", &blob)
            .is_none());
    }

    #[test]
    fn flip_front_hits_header_bytes() {
        let plan = FaultSchedule::none().and_corrupt(
            CorruptTier::Scratch,
            2,
            0,
            CorruptKind::FlipFront { front: 1 },
        );
        let blob = Bytes::from_static(b"abcdef");
        let c = plan
            .corrupt_write(StorageTier::Scratch, "ck/v2/r0", &blob)
            .expect("matched");
        assert_eq!(c[0], b'a');
        assert_eq!(c[1], b'b' ^ 0xFF);
        assert_eq!(&c[2..], b"cdef");
        // Offset past the end clamps to the last byte instead of panicking.
        let plan = FaultSchedule::none().and_corrupt(
            CorruptTier::Scratch,
            3,
            0,
            CorruptKind::FlipFront { front: 100 },
        );
        let short = Bytes::from_static(b"xy");
        let c = plan
            .corrupt_write(StorageTier::Scratch, "ck/v3/r0", &short)
            .expect("matched");
        assert_eq!(c[1], b'y' ^ 0xFF);
    }

    #[test]
    fn backend_faults_fire_once() {
        let plan = FaultSchedule::none()
            .and_backend(BackendFault::spawn_fail(2))
            .and_backend(BackendFault::worker_death(1, 2));
        assert!(!plan.backend_spawn_fails(1));
        assert!(plan.backend_spawn_fails(2));
        assert!(!plan.backend_spawn_fails(2), "spawn fault is one-shot");
        assert!(!plan.flush_worker_dies(1, 1), "not enough flushes yet");
        assert!(plan.flush_worker_dies(1, 2));
        assert!(!plan.flush_worker_dies(1, 3), "death is one-shot");
        assert!(plan.backend_faults().iter().all(BackendFault::has_fired));
    }
}
