//! Deterministic fault injection.
//!
//! The paper simulates failures "through a rank exiting early, approximately
//! 95% of the way between two checkpoints". A [`FaultPlan`] encodes exactly
//! that: named application fault points (e.g. `"iter"`) fire when a chosen
//! rank reaches a chosen count. Each kill fires at most once, even across
//! simulated job relaunches — the plan is shared by reference between
//! launches so a recovered run does not re-kill itself at the same spot.

use std::sync::atomic::{AtomicBool, Ordering};

/// One scheduled failure.
#[derive(Debug)]
pub struct Kill {
    /// Global (world) rank to kill.
    pub rank: usize,
    /// Fault-point label the application passes to `RankCtx::fault_point`.
    pub label: String,
    /// Fires when the labelled fault point reaches this count.
    pub at: u64,
    fired: AtomicBool,
}

impl Kill {
    pub fn new(rank: usize, label: impl Into<String>, at: u64) -> Self {
        Kill {
            rank,
            label: label.into(),
            at,
            fired: AtomicBool::new(false),
        }
    }

    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

/// A set of scheduled failures, shared between (re)launches.
#[derive(Debug, Default)]
pub struct FaultPlan {
    kills: Vec<Kill>,
}

impl FaultPlan {
    /// No failures.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Plan a single kill.
    pub fn kill_at(rank: usize, label: impl Into<String>, at: u64) -> Self {
        FaultPlan {
            kills: vec![Kill::new(rank, label, at)],
        }
    }

    /// Builder-style: add another kill.
    pub fn and_kill(mut self, rank: usize, label: impl Into<String>, at: u64) -> Self {
        self.kills.push(Kill::new(rank, label, at));
        self
    }

    pub fn kills(&self) -> &[Kill] {
        &self.kills
    }

    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    /// Should `rank` die now at fault point `label` with counter `count`?
    /// Marks the kill as fired; returns `true` only the first time.
    pub fn check(&self, rank: usize, label: &str, count: u64) -> bool {
        for k in &self.kills {
            if k.rank == rank
                && k.at == count
                && k.label == label
                && k.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// How many kills have fired so far.
    pub fn fired_count(&self) -> usize {
        self.kills.iter().filter(|k| k.has_fired()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once() {
        let plan = FaultPlan::kill_at(2, "iter", 10);
        assert!(!plan.check(2, "iter", 9));
        assert!(!plan.check(1, "iter", 10));
        assert!(!plan.check(2, "other", 10));
        assert!(plan.check(2, "iter", 10));
        assert!(!plan.check(2, "iter", 10), "must not re-fire");
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn multiple_kills_independent() {
        let plan = FaultPlan::kill_at(0, "iter", 5).and_kill(1, "iter", 7);
        assert!(plan.check(0, "iter", 5));
        assert!(!plan.check(1, "iter", 5));
        assert!(plan.check(1, "iter", 7));
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.check(0, "iter", 0));
    }
}
