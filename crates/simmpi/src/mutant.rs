//! Seeded lock-protocol violations, compiled only under the `lint-mutants`
//! feature (the static-analysis analogue of telemetry's `mc-mutants`).
//!
//! `crates/lint/tests/mutant.rs` proves the analyzer catches the
//! violations below exactly when mutants are opted in, and that they stay
//! invisible to the default workspace scan, which is required to be clean.

/// Two locks with no global acquisition order. [`Pair::ab`] and
/// [`Pair::ba`] take them in opposite orders — the classic ABBA deadlock
/// cycle `lock-order` must flag.
#[cfg(feature = "lint-mutants")]
#[derive(Default)]
pub struct Pair {
    mu_alpha: parking_lot::Mutex<u64>,
    mu_beta: parking_lot::Mutex<u64>,
}

#[cfg(feature = "lint-mutants")]
impl Pair {
    /// BUG (on purpose), half 1: alpha then beta.
    pub fn ab(&self) -> u64 {
        let a = self.mu_alpha.lock();
        let b = self.mu_beta.lock();
        *a + *b
    }

    /// BUG (on purpose), half 2: beta then alpha — with [`Pair::ab`],
    /// a two-thread schedule deadlocks with each holding one lock.
    pub fn ba(&self) -> u64 {
        let b = self.mu_beta.lock();
        let a = self.mu_alpha.lock();
        *a + *b
    }

    /// BUG (on purpose): a blocking receive while holding `mu_alpha`.
    /// The sender may need the same lock to make progress, so
    /// `blocking-while-locked` must flag the receive.
    pub fn recv_under_lock(&self, comm: &crate::Comm) -> u64 {
        let a = self.mu_alpha.lock();
        comm.recv_bytes(None, 7).ok();
        *a
    }
}
