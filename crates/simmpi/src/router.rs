//! The shared message fabric: per-rank mailboxes, death and revocation
//! registries, and the job-abort flag.
//!
//! The router is the only shared-memory component of the MPI simulation;
//! every property visible to application code (message ordering, failure
//! observability, revocation wake-ups) mirrors what a real ULFM MPI provides
//! over a network.
//!
//! Key semantics:
//!
//! * A message already enqueued is deliverable even if its sender has since
//!   died (in-flight data is not clawed back).
//! * A receive *from a specific rank* fails with `ProcFailed` once that rank
//!   is dead and no matching message is queued.
//! * A receive from `ANY` fails only when every other live member of the
//!   communicator's group is dead — otherwise it keeps waiting (exactly the
//!   ULFM situation that makes `revoke` necessary to avoid deadlock).
//! * Revoking a communicator wakes every rank blocked on it with `Revoked`.
//! * Killing a rank wakes all blocked ranks so they can re-evaluate.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

// loom facade: std atomics in production, schedule points under modelcheck
// (crates/modelcheck/tests/rendezvous.rs drives this fabric).
use loom::sync::atomic::{AtomicBool, Ordering};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use cluster::Cluster;
use telemetry::{Event, MpiOp, Recorder};

use crate::error::{MpiError, MpiResult};
use crate::rendezvous::RendezvousTable;
use crate::sched::{self, Scheduler};

/// Identifies a communicator. Derived communicators get deterministic ids so
/// all ranks agree without communication.
pub type CommId = u64;

/// A message in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    pub comm: CommId,
    pub epoch: u32,
    /// Global (world) rank of the sender.
    pub src: usize,
    pub tag: u64,
    pub payload: Bytes,
}

/// What a receive call is waiting for.
#[derive(Clone, Copy, Debug)]
pub struct MatchSpec<'a> {
    pub comm: CommId,
    pub epoch: u32,
    /// `None` = receive from any source in `group`.
    pub src: Option<usize>,
    pub tag: u64,
    /// Global ranks of the communicator's group (used for any-source
    /// deadlock detection).
    pub group: &'a [usize],
    /// Global rank of the receiver.
    pub me: usize,
}

struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }
}

/// The shared fabric.
pub struct Router {
    mailboxes: Vec<Mailbox>,
    dead: RwLock<HashSet<usize>>,
    revoked: RwLock<HashSet<(CommId, u32)>>,
    aborted: AtomicBool,
    cluster: Cluster,
    pub(crate) rendezvous: RendezvousTable,
    /// Per-rank telemetry recorders (disabled by default); set by
    /// `Universe::launch` so ULFM/fault paths can emit events without
    /// threading handles through every call signature.
    recorders: RwLock<Vec<Recorder>>,
    /// Discrete-event scheduler for this launch (DES backend only). When
    /// set, blocking waits become scheduler yields and every state change
    /// that can unblock a rank routes a wake through it.
    sched: RwLock<Option<Arc<Scheduler>>>,
}

impl Router {
    pub fn new(cluster: Cluster) -> Arc<Self> {
        let n = cluster.topology().total_ranks();
        Arc::new(Router {
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            dead: RwLock::new(HashSet::new()),
            revoked: RwLock::new(HashSet::new()),
            aborted: AtomicBool::new(false),
            cluster,
            rendezvous: RendezvousTable::new(),
            recorders: RwLock::new(vec![Recorder::disabled(); n]),
            sched: RwLock::new(None),
        })
    }

    /// Attach (or detach) the DES scheduler for this launch. Installed by
    /// `Universe::launch` before any rank runs and cleared afterwards so a
    /// reused router never wakes a dead scheduler.
    pub fn set_sched(&self, sched: Option<Arc<Scheduler>>) {
        *self.sched.write() = sched;
    }

    /// The attached DES scheduler, if this launch runs on the DES backend.
    pub(crate) fn sched(&self) -> Option<Arc<Scheduler>> {
        self.sched.read().clone()
    }

    /// Install `rank`'s telemetry recorder (see `UniverseConfig::telemetry`).
    pub fn set_recorder(&self, rank: usize, rec: Recorder) {
        if let Some(slot) = self.recorders.write().get_mut(rank) {
            *slot = rec;
        }
    }

    /// `rank`'s recorder (disabled when telemetry is off or out of range).
    pub fn recorder(&self, rank: usize) -> Recorder {
        self.recorders.read().get(rank).cloned().unwrap_or_default()
    }

    /// Record one simulated MPI entry point for `me`, if per-call events
    /// were requested (they are off by default — see
    /// `telemetry::TelemetryConfig::record_mpi_calls`).
    pub(crate) fn record_mpi(&self, me: usize, op: MpiOp, peer: Option<u32>, bytes: u64) {
        let recorders = self.recorders.read();
        if let Some(rec) = recorders.get(me) {
            if rec.wants_mpi_calls() {
                rec.emit(Event::MpiCall { op, peer, bytes });
            }
        }
    }

    pub fn ranks(&self) -> usize {
        self.mailboxes.len()
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    // ---- failure state ----------------------------------------------------

    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.read().contains(&rank)
    }

    /// Snapshot of all dead global ranks.
    pub fn dead_snapshot(&self) -> HashSet<usize> {
        self.dead.read().clone()
    }

    /// Dead ranks within a given group, in group order.
    pub fn dead_in(&self, group: &[usize]) -> Vec<usize> {
        let dead = self.dead.read();
        group.iter().copied().filter(|r| dead.contains(r)).collect()
    }

    /// Kill a rank: mark it dead, purge its node's scratch space, and wake
    /// every blocked rank so it can observe the failure.
    pub fn kill(&self, rank: usize) {
        {
            let mut dead = self.dead.write();
            if !dead.insert(rank) {
                return; // already dead
            }
        }
        self.recorder(rank).emit(Event::RankKilled);
        self.cluster.fail_node_of(rank);
        self.wake_all();
    }

    pub fn is_revoked(&self, comm: CommId, epoch: u32) -> bool {
        self.revoked.read().contains(&(comm, epoch))
    }

    /// Revoke a communicator epoch; wakes all blocked ranks.
    pub fn revoke(&self, comm: CommId, epoch: u32) {
        {
            let mut rv = self.revoked.write();
            if !rv.insert((comm, epoch)) {
                return;
            }
        }
        self.wake_all();
    }

    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Abort the job (plain-MPI response to an unrecovered failure).
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        self.wake_all();
    }

    /// Wake every rank blocked in a receive or a rendezvous.
    pub fn wake_all(&self) {
        for mb in &self.mailboxes {
            let _guard = mb.queue.lock();
            mb.cv.notify_all();
        }
        self.rendezvous.wake_all();
        if let Some(s) = self.sched() {
            s.wake_all();
        }
    }

    /// Discard queued envelopes belonging to a retired communicator epoch
    /// (called after a Fenix repair so stale traffic cannot accumulate).
    pub fn purge_comm(&self, comm: CommId, epoch: u32) {
        for mb in &self.mailboxes {
            mb.queue
                .lock()
                .retain(|e| !(e.comm == comm && e.epoch == epoch));
        }
    }

    /// Deterministically derive a child communicator id, identically
    /// computable on every rank without communication.
    pub fn derive_comm_id(parent: CommId, salt: u64) -> CommId {
        // FNV-1a over the two words; collision-free enough for the handful
        // of communicators a resilience stack creates.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in parent.to_le_bytes().into_iter().chain(salt.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h | 0x8000_0000_0000_0000 // keep derived ids out of the small-id space
    }

    // ---- messaging --------------------------------------------------------

    fn preflight(&self, me: usize, comm: CommId, epoch: u32) -> MpiResult<()> {
        if self.is_aborted() {
            return Err(MpiError::Aborted);
        }
        if self.is_dead(me) {
            return Err(MpiError::Killed);
        }
        if self.is_revoked(comm, epoch) {
            return Err(MpiError::Revoked);
        }
        Ok(())
    }

    /// Send an envelope from global rank `src` to global rank `dst`,
    /// charging the modeled network (intra-node messages skip the NIC).
    pub fn send(&self, dst: usize, env: Envelope) -> MpiResult<()> {
        self.preflight(env.src, env.comm, env.epoch)?;
        // Validate before the topology/network model touches `dst`.
        let mb = self.mailboxes.get(dst).ok_or(MpiError::RankOutOfRange {
            rank: dst,
            size: self.mailboxes.len(),
        })?;
        if self.is_dead(dst) {
            return Err(MpiError::proc_failed(dst));
        }
        if !self.cluster.topology().same_node(env.src, dst) {
            self.cluster
                .network()
                .transfer(env.src, dst, env.payload.len());
        }
        // The destination may have died while the transfer was in flight.
        if self.is_dead(dst) {
            return Err(MpiError::proc_failed(dst));
        }
        mb.queue.lock().push_back(env);
        mb.cv.notify_all();
        if let Some(s) = self.sched() {
            s.wake(dst);
        }
        Ok(())
    }

    /// Blocking receive. Returns the matched envelope.
    pub fn recv(&self, spec: MatchSpec<'_>) -> MpiResult<Envelope> {
        let mb = self
            .mailboxes
            .get(spec.me)
            .ok_or(MpiError::RankOutOfRange {
                rank: spec.me,
                size: self.mailboxes.len(),
            })?;
        let mut queue = mb.queue.lock();
        loop {
            // Deliver queued matches first: in-flight data from a
            // now-dead sender is still valid.
            if let Some(pos) = queue.iter().position(|e| {
                e.comm == spec.comm
                    && e.epoch == spec.epoch
                    && e.tag == spec.tag
                    && spec.src.is_none_or(|s| e.src == s)
            }) {
                if let Some(env) = queue.remove(pos) {
                    return Ok(env);
                }
            }

            if self.is_aborted() {
                return Err(MpiError::Aborted);
            }
            if self.is_dead(spec.me) {
                return Err(MpiError::Killed);
            }
            if self.is_revoked(spec.comm, spec.epoch) {
                return Err(MpiError::Revoked);
            }
            match spec.src {
                Some(s) if self.is_dead(s) => {
                    return Err(MpiError::proc_failed(s));
                }
                None => {
                    let dead = self.dead.read();
                    let others_alive = spec
                        .group
                        .iter()
                        .any(|&r| r != spec.me && !dead.contains(&r));
                    if !others_alive {
                        let all_dead: Vec<usize> = spec
                            .group
                            .iter()
                            .copied()
                            .filter(|&r| r != spec.me)
                            .collect();
                        return Err(MpiError::ProcFailed { ranks: all_dead });
                    }
                }
                _ => {}
            }
            // Nothing deliverable: yield. Under the DES backend the rank
            // task hands the baton to the scheduler and resumes when a
            // sender (or a failure transition) wakes it; on the threads
            // backend it parks on the mailbox condvar with a bounded
            // re-check timeout. Either way the loop re-evaluates the
            // predicate from scratch on resume.
            match self.sched() {
                Some(s) => {
                    drop(queue);
                    s.yield_blocked(spec.me);
                    queue = mb.queue.lock();
                }
                None => sched::park_on(&mb.cv, &mut queue),
            }
        }
    }

    /// Number of agreement operations currently in flight in the rendezvous
    /// table (observability for tests and the modelcheck suite).
    pub fn agreements_in_flight(&self) -> usize {
        self.rendezvous.in_flight()
    }

    /// Non-blocking probe: is a matching message queued?
    pub fn probe(&self, spec: MatchSpec<'_>) -> bool {
        self.mailboxes[spec.me].queue.lock().iter().any(|e| {
            e.comm == spec.comm
                && e.epoch == spec.epoch
                && e.tag == spec.tag
                && spec.src.is_none_or(|s| e.src == s)
        })
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("ranks", &self.mailboxes.len())
            .field("dead", &*self.dead.read())
            .field("aborted", &self.is_aborted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, TimeScale};
    use std::time::Duration;

    fn router(n: usize) -> Arc<Router> {
        let cfg = ClusterConfig {
            nodes: n,
            ranks_per_node: 1,
            time_scale: TimeScale::instant(),
            ..ClusterConfig::default()
        };
        Router::new(Cluster::new(cfg))
    }

    fn env(src: usize, tag: u64, payload: &'static [u8]) -> Envelope {
        Envelope {
            comm: 0,
            epoch: 0,
            src,
            tag,
            payload: Bytes::from_static(payload),
        }
    }

    fn spec<'a>(me: usize, src: Option<usize>, tag: u64, group: &'a [usize]) -> MatchSpec<'a> {
        MatchSpec {
            comm: 0,
            epoch: 0,
            src,
            tag,
            group,
            me,
        }
    }

    #[test]
    fn out_of_range_ranks_error_instead_of_panicking() {
        let r = router(2);
        assert!(matches!(
            r.send(9, env(0, 7, b"hi")),
            Err(MpiError::RankOutOfRange { rank: 9, size: 2 })
        ));
        let group = [0, 1];
        assert!(matches!(
            r.recv(spec(9, None, 7, &group)),
            Err(MpiError::RankOutOfRange { rank: 9, size: 2 })
        ));
    }

    #[test]
    fn send_recv_roundtrip() {
        let r = router(2);
        r.send(1, env(0, 7, b"hi")).unwrap();
        let group = [0, 1];
        let e = r.recv(spec(1, Some(0), 7, &group)).unwrap();
        assert_eq!(&e.payload[..], b"hi");
        assert_eq!(e.src, 0);
    }

    #[test]
    fn recv_filters_by_tag() {
        let r = router(2);
        r.send(1, env(0, 1, b"one")).unwrap();
        r.send(1, env(0, 2, b"two")).unwrap();
        let group = [0, 1];
        let e = r.recv(spec(1, Some(0), 2, &group)).unwrap();
        assert_eq!(&e.payload[..], b"two");
        let e = r.recv(spec(1, Some(0), 1, &group)).unwrap();
        assert_eq!(&e.payload[..], b"one");
    }

    #[test]
    fn send_to_dead_rank_fails() {
        let r = router(2);
        r.kill(1);
        assert_eq!(r.send(1, env(0, 0, b"")), Err(MpiError::proc_failed(1)));
    }

    #[test]
    fn dead_sender_cannot_send() {
        let r = router(2);
        r.kill(0);
        assert_eq!(r.send(1, env(0, 0, b"")), Err(MpiError::Killed));
    }

    #[test]
    fn recv_from_dead_rank_fails() {
        let r = router(2);
        r.kill(0);
        let group = [0, 1];
        assert_eq!(
            r.recv(spec(1, Some(0), 0, &group)),
            Err(MpiError::proc_failed(0))
        );
    }

    #[test]
    fn queued_message_from_dead_sender_still_delivers() {
        let r = router(2);
        r.send(1, env(0, 3, b"last words")).unwrap();
        r.kill(0);
        let group = [0, 1];
        let e = r.recv(spec(1, Some(0), 3, &group)).unwrap();
        assert_eq!(&e.payload[..], b"last words");
    }

    #[test]
    fn revoked_comm_fails_blocked_recv() {
        let r = router(2);
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            let group = [0, 1];
            r2.recv(spec(1, Some(0), 0, &group))
        });
        std::thread::sleep(Duration::from_millis(20));
        r.revoke(0, 0);
        assert_eq!(h.join().unwrap(), Err(MpiError::Revoked));
    }

    #[test]
    fn any_source_recv_fails_when_all_peers_dead() {
        let r = router(3);
        r.kill(0);
        r.kill(2);
        let group = [0, 1, 2];
        match r.recv(spec(1, None, 0, &group)) {
            Err(MpiError::ProcFailed { ranks }) => assert_eq!(ranks, vec![0, 2]),
            other => panic!("expected ProcFailed, got {other:?}"),
        }
    }

    #[test]
    fn any_source_recv_wakes_on_late_message() {
        let r = router(2);
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            let group = [0, 1];
            r2.recv(spec(1, None, 9, &group))
        });
        std::thread::sleep(Duration::from_millis(10));
        r.send(1, env(0, 9, b"late")).unwrap();
        let e = h.join().unwrap().unwrap();
        assert_eq!(&e.payload[..], b"late");
    }

    #[test]
    fn abort_wakes_blocked_recv() {
        let r = router(2);
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            let group = [0, 1];
            r2.recv(spec(1, Some(0), 0, &group))
        });
        std::thread::sleep(Duration::from_millis(10));
        r.abort();
        assert_eq!(h.join().unwrap(), Err(MpiError::Aborted));
    }

    #[test]
    fn kill_purges_scratch() {
        let r = router(2);
        r.cluster()
            .scratch()
            .write(1, "ck", Bytes::from_static(b"x"));
        r.kill(1);
        assert!(r.cluster().scratch().read(1, "ck").is_none());
    }

    #[test]
    fn purge_comm_drops_only_that_epoch() {
        let r = router(2);
        r.send(1, env(0, 1, b"old")).unwrap();
        let mut e2 = env(0, 1, b"new");
        e2.epoch = 1;
        r.send(1, e2).unwrap();
        r.purge_comm(0, 0);
        let group = [0, 1];
        let s = MatchSpec {
            comm: 0,
            epoch: 1,
            src: Some(0),
            tag: 1,
            group: &group,
            me: 1,
        };
        let e = r.recv(s).unwrap();
        assert_eq!(&e.payload[..], b"new");
        assert!(!r.probe(spec(1, Some(0), 1, &group)));
    }

    #[test]
    fn derived_ids_are_deterministic_and_distinct() {
        let a = Router::derive_comm_id(0, 1);
        let b = Router::derive_comm_id(0, 1);
        let c = Router::derive_comm_id(0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn double_kill_is_idempotent() {
        let r = router(2);
        r.kill(1);
        r.kill(1);
        assert!(r.is_dead(1));
        assert_eq!(r.dead_in(&[0, 1]), vec![1]);
    }
}
