//! Deterministic discrete-event scheduler: virtual-time ranks as
//! cooperative tasks.
//!
//! The thread-per-rank backend runs every rank on a free-running OS thread
//! and burns modeled time as scaled real sleeps; schedules depend on the
//! host's thread interleaving. This module replaces that with a
//! discrete-event simulation (DES) while keeping the rank code — and the
//! whole `Comm`/mailbox API — untouched:
//!
//! * Every rank still runs on its own OS thread, but the threads pass a
//!   **baton**: exactly one task is `Running` at any instant, and control
//!   transfers only at *yield points* (a mailbox wait, a rendezvous wait,
//!   or a modeled sleep routed through [`cluster::install_virtual_sleeper`]).
//!   Rank bodies are therefore resumable state machines whose suspension
//!   points are exactly the sanctioned blocking sites the effects
//!   inventory enumerated.
//! * A single binary heap orders pending events by
//!   `(virtual time, tiebreak key, push sequence)`. The tiebreak key is a
//!   pure splitmix64-style mix of the schedule seed, the push sequence
//!   number, and the task id — identical seeds give identical schedules,
//!   different seeds explore different interleavings of simultaneous
//!   events. This is the committed determinism rule: no wall clock, no
//!   RNG state, no OS scheduler input.
//! * Virtual time lives on a shared [`cluster::Clock`]; the dispatcher
//!   advances it to each event's timestamp, so bandwidth-governor queueing
//!   is an exact function of simulated time (see
//!   `Governor::with_clock`).
//!
//! Because all wake-ups originate from the currently running task (a send,
//! a rendezvous publication, a kill), there are no lost-wakeup races by
//! construction; the condvars here only implement the baton hand-off.
//!
//! **Deadlock** becomes an observable, deterministic outcome: when the
//! event heap drains while tasks are still blocked, the scheduler invokes
//! its deadlock hook (the universe installs `Router::abort`), every
//! blocked task re-runs, observes `MpiError::Aborted`, and unwinds — a
//! typed verdict instead of a hung process.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, MutexGuard};

use cluster::Clock;

/// Scheduling state of one task (one simulated rank).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    /// Spawned but not yet granted the baton for the first time.
    NotStarted,
    /// Holds the baton.
    Running,
    /// Parked at a predicate wait (mailbox/rendezvous); runnable only once
    /// another task wakes it.
    Blocked,
    /// Parked on a timed event (modeled sleep); wakes are ignored, the
    /// timer event stands.
    Sleeping,
    /// Returned; never scheduled again.
    Done,
}

/// One entry in the event heap. Ordering is the determinism contract:
/// earliest virtual time first, ties broken by the seeded key, then by
/// push order (seq is unique, so the ordering is total).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    t_ns: u64,
    key: u64,
    seq: u64,
    task: usize,
}

/// Seeded tiebreak key: a splitmix64-style finalizer over the schedule
/// seed, the push sequence number, and the task id. Pure arithmetic — the
/// same `(seed, seq, task)` always yields the same key.
fn tiebreak(seed: u64, seq: u64, task: u64) -> u64 {
    let mut z =
        seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ task.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Baton hand-off cell for one task: a token the dispatcher grants and the
/// task consumes. Token-based (not bare notify) so a grant that races
/// ahead of the park is never lost.
struct TaskSlot {
    token: Mutex<bool>,
    cv: Condvar,
}

struct Inner {
    heap: BinaryHeap<Reverse<Event>>,
    state: Vec<TaskState>,
    /// Whether a heap entry exists for the task (dedups wakes).
    queued: Vec<bool>,
    /// A wake arrived while the task held the baton (e.g. a self-send);
    /// consumed at its next blocking yield so the wake is not lost.
    pending_wake: Vec<bool>,
    /// Monotonic push counter feeding the tiebreak key.
    seq: u64,
}

impl Inner {
    /// Out-of-range task ids (impossible by construction — ids are rank
    /// numbers below `tasks`) read as `Done`: never scheduled, never woken.
    fn state_of(&self, task: usize) -> TaskState {
        self.state.get(task).copied().unwrap_or(TaskState::Done)
    }

    fn set_state(&mut self, task: usize, st: TaskState) {
        if let Some(s) = self.state.get_mut(task) {
            *s = st;
        }
    }

    fn set_pending_wake(&mut self, task: usize) {
        if let Some(p) = self.pending_wake.get_mut(task) {
            *p = true;
        }
    }

    /// Clear and return the task's pending-wake flag.
    fn take_pending_wake(&mut self, task: usize) -> bool {
        match self.pending_wake.get_mut(task) {
            Some(p) => std::mem::take(p),
            None => false,
        }
    }
}

/// The discrete-event scheduler. One instance per DES launch, shared by
/// the router, the rendezvous table, and every rank thread.
pub struct Scheduler {
    inner: Mutex<Inner>,
    slots: Vec<TaskSlot>,
    clock: Arc<Clock>,
    seed: u64,
    deadlock_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl Scheduler {
    /// A scheduler for `tasks` ranks, ordering simultaneous events by the
    /// seeded tiebreak rule, on the given (virtual) clock.
    pub fn new(tasks: usize, seed: u64, clock: Arc<Clock>) -> Arc<Self> {
        Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                state: vec![TaskState::NotStarted; tasks],
                queued: vec![false; tasks],
                pending_wake: vec![false; tasks],
                seq: 0,
            }),
            slots: (0..tasks)
                .map(|_| TaskSlot {
                    token: Mutex::new(false),
                    cv: Condvar::new(),
                })
                .collect(),
            clock,
            seed,
            deadlock_hook: Mutex::new(None),
        })
    }

    /// Number of tasks this scheduler drives.
    pub fn tasks(&self) -> usize {
        self.slots.len()
    }

    /// The virtual clock events are ordered on.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// The schedule seed (exposed for telemetry/reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Install the callback run when the event heap drains while tasks are
    /// still blocked (the universe installs `Router::abort` so deadlock
    /// becomes a typed `MpiError::Aborted` outcome).
    pub fn set_deadlock_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.deadlock_hook.lock() = Some(Box::new(hook));
    }

    /// Drop the deadlock hook. The universe's hook closes over the router,
    /// which holds the scheduler — clearing it at the end of a launch
    /// breaks that reference cycle so neither leaks.
    pub fn clear_deadlock_hook(&self) {
        *self.deadlock_hook.lock() = None;
    }

    /// Seed a start event for every task at the current virtual time and
    /// dispatch the first one. Called once by the launching thread after
    /// the rank threads are spawned; the token cells make the inherent
    /// grant/park race benign.
    pub fn start(&self) {
        let mut inner = self.inner.lock();
        let now = self.clock.now_ns();
        for task in 0..self.slots.len() {
            self.push_event(&mut inner, task, now);
        }
        self.dispatch_next(&mut inner);
    }

    /// Rank-thread entry: park until the scheduler grants this task the
    /// baton for the first time.
    pub fn wait_for_start(&self, task: usize) {
        self.park(task);
    }

    /// Yield at a predicate wait (mailbox or rendezvous): release the
    /// baton, dispatch the next event, park until woken. The caller must
    /// re-check its predicate on return — wakes are level-triggered hints,
    /// exactly like condvar wakeups.
    pub fn yield_blocked(&self, task: usize) {
        let mut inner = self.inner.lock();
        inner.set_state(task, TaskState::Blocked);
        if inner.take_pending_wake(task) {
            // A wake landed while we were running (self-send, same-task
            // rendezvous publication): convert it into an immediate event
            // so the baton comes back after any same-time peers.
            let now = self.clock.now_ns();
            self.push_event(&mut inner, task, now);
        }
        self.hand_off(inner);
        self.park(task);
    }

    /// Yield for `modeled` of virtual time: schedule our own resumption at
    /// `now + modeled`, dispatch, park. This is the [`cluster`] virtual
    /// sleeper for rank threads — every modeled transfer/startup charge on
    /// a rank path lands here.
    pub fn sleep(&self, task: usize, modeled: Duration) {
        let mut inner = self.inner.lock();
        inner.set_state(task, TaskState::Sleeping);
        let t = self
            .clock
            .now_ns()
            .saturating_add(modeled.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.push_event(&mut inner, task, t);
        self.hand_off(inner);
        self.park(task);
    }

    /// Mark `task` runnable at the current virtual time. Called by the
    /// running task when it makes another task's predicate true (message
    /// delivered, rendezvous published, rank killed). Running tasks get a
    /// pending-wake flag, sleeping tasks ignore wakes (their timer event
    /// stands), done tasks are never rescheduled.
    pub fn wake(&self, task: usize) {
        let mut inner = self.inner.lock();
        match inner.state_of(task) {
            TaskState::Running => inner.set_pending_wake(task),
            TaskState::Blocked | TaskState::NotStarted => {
                let now = self.clock.now_ns();
                self.push_event(&mut inner, task, now);
            }
            TaskState::Sleeping | TaskState::Done => {}
        }
    }

    /// Wake every blocked task (abort, revoke, kill fan-out). Tasks are
    /// pushed in ascending task order; the seeded tiebreak then fixes the
    /// wake order deterministically.
    pub fn wake_all(&self) {
        let mut inner = self.inner.lock();
        let now = self.clock.now_ns();
        for task in 0..self.slots.len() {
            match inner.state_of(task) {
                TaskState::Running => inner.set_pending_wake(task),
                TaskState::Blocked | TaskState::NotStarted => {
                    self.push_event(&mut inner, task, now);
                }
                TaskState::Sleeping | TaskState::Done => {}
            }
        }
    }

    /// Task exit: release the baton for good and dispatch the next event.
    pub fn finish(&self, task: usize) {
        let mut inner = self.inner.lock();
        inner.set_state(task, TaskState::Done);
        inner.take_pending_wake(task);
        self.hand_off(inner);
    }

    /// Dispatch the next event; if the heap is dry but tasks are still
    /// blocked, fire the deadlock hook (which wakes them with the abort
    /// flag set) and dispatch again.
    fn hand_off(&self, mut inner: MutexGuard<'_, Inner>) {
        if self.dispatch_next(&mut inner) {
            return;
        }
        let deadlocked = inner.state.iter().any(|s| {
            matches!(
                s,
                TaskState::Blocked | TaskState::Sleeping | TaskState::NotStarted
            )
        });
        if !deadlocked {
            return; // every task is Done (or Running and about to park — impossible here)
        }
        drop(inner);
        {
            // Scoped so the hook lock is released before `inner` is
            // retaken: the hook itself re-enters the scheduler
            // (router.abort → wake_all → inner), so `deadlock_hook`
            // must never be held around an `inner` acquisition.
            let hook = self.deadlock_hook.lock();
            if let Some(hook) = hook.as_ref() {
                hook();
            }
        }
        // The hook's wakes (router.abort → wake_all) refilled the heap.
        let mut inner = self.inner.lock();
        self.dispatch_next(&mut inner);
    }

    /// Pop the earliest event, advance the clock to it, grant its task the
    /// baton. Returns false when the heap is empty.
    fn dispatch_next(&self, inner: &mut Inner) -> bool {
        while let Some(Reverse(ev)) = inner.heap.pop() {
            if let Some(q) = inner.queued.get_mut(ev.task) {
                *q = false;
            }
            if inner.state_of(ev.task) == TaskState::Done {
                continue; // stale wake for a task that exited meanwhile
            }
            let now = self.clock.now_ns();
            if ev.t_ns > now {
                self.clock.advance(ev.t_ns - now);
            }
            inner.set_state(ev.task, TaskState::Running);
            self.grant(ev.task);
            return true;
        }
        false
    }

    fn push_event(&self, inner: &mut Inner, task: usize, t_ns: u64) {
        // An unknown task id is unreachable (ids are rank numbers below
        // `tasks`), but treated as already-queued rather than a panic: the
        // scheduler runs on recovery paths, where a panic would turn a
        // survivable fault into an unsurvivable one.
        if inner.queued.get(task).copied().unwrap_or(true) {
            return;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Reverse(Event {
            t_ns,
            key: tiebreak(self.seed, seq, task as u64),
            seq,
            task,
        }));
        if let Some(q) = inner.queued.get_mut(task) {
            *q = true;
        }
    }

    /// Hand the baton to `task`.
    fn grant(&self, task: usize) {
        let Some(slot) = self.slots.get(task) else {
            return;
        };
        let mut tok = slot.token.lock();
        *tok = true;
        slot.cv.notify_all();
    }

    /// Wait for the baton.
    fn park(&self, task: usize) {
        let Some(slot) = self.slots.get(task) else {
            return;
        };
        let mut tok = slot.token.lock();
        while !*tok {
            // lint: sanction(blocks): the scheduler baton hand-off — the
            // one place a DES rank thread parks; woken only by a grant
            // from the dispatcher, token-guarded against lost wakeups.
            // audited 2026-08.
            slot.cv.wait(&mut tok);
        }
        *tok = false;
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("tasks", &self.slots.len())
            .field("seed", &self.seed)
            .finish()
    }
}

/// Threads-backend predicate wait: park on `cv` with a bounded timeout so
/// missed wakeups degrade to a re-check instead of a hang. This is the one
/// sanctioned blocking site shared by the mailbox and rendezvous waits;
/// under the DES backend those call sites yield to the scheduler instead
/// and this function is never reached.
pub fn park_on<T>(cv: &Condvar, guard: &mut MutexGuard<'_, T>) {
    // lint: sanction(blocks): bounded condvar wait backing every
    // threads-backend mailbox/rendezvous wait; the DES backend replaces
    // these waits with scheduler yields. audited 2026-08.
    cv.wait_for(guard, Duration::from_millis(250));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(tasks: usize, seed: u64) -> Arc<Scheduler> {
        Scheduler::new(tasks, seed, Arc::new(Clock::virtual_at(0)))
    }

    #[test]
    fn tiebreak_is_pure() {
        assert_eq!(tiebreak(1, 2, 3), tiebreak(1, 2, 3));
        assert_ne!(tiebreak(1, 2, 3), tiebreak(2, 2, 3));
        assert_ne!(tiebreak(1, 2, 3), tiebreak(1, 3, 3));
    }

    #[test]
    fn event_order_is_time_then_key_then_seq() {
        let a = Event {
            t_ns: 5,
            key: 9,
            seq: 0,
            task: 0,
        };
        let b = Event {
            t_ns: 6,
            key: 0,
            seq: 1,
            task: 1,
        };
        let c = Event {
            t_ns: 5,
            key: 3,
            seq: 2,
            task: 2,
        };
        let mut h = BinaryHeap::new();
        for e in [a, b, c] {
            h.push(Reverse(e));
        }
        assert_eq!(h.pop().unwrap().0.task, 2); // t=5, key=3
        assert_eq!(h.pop().unwrap().0.task, 0); // t=5, key=9
        assert_eq!(h.pop().unwrap().0.task, 1); // t=6
    }

    #[test]
    fn single_task_runs_and_sleeps_in_virtual_time() {
        let s = sched(1, 42);
        let s2 = Arc::clone(&s);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                s2.wait_for_start(0);
                s2.sleep(0, Duration::from_millis(7));
                assert_eq!(s2.clock().now_ns(), 7_000_000);
                s2.finish(0);
            });
            s.start();
        });
        assert_eq!(s.clock().now_ns(), 7_000_000);
    }

    #[test]
    fn two_tasks_ping_pong_deterministically() {
        // Task 0 blocks until task 1 wakes it; both finish; the final
        // schedule is a pure function of the seed.
        for _ in 0..8 {
            let s = sched(2, 7);
            let flag = Arc::new(Mutex::new(false));
            let (s0, s1) = (Arc::clone(&s), Arc::clone(&s));
            let (f0, f1) = (Arc::clone(&flag), Arc::clone(&flag));
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    s0.wait_for_start(0);
                    while !*f0.lock() {
                        s0.yield_blocked(0);
                    }
                    s0.finish(0);
                });
                scope.spawn(move || {
                    s1.wait_for_start(1);
                    s1.sleep(1, Duration::from_millis(3));
                    *f1.lock() = true;
                    s1.wake(0);
                    s1.finish(1);
                });
                s.start();
            });
            assert_eq!(s.clock().now_ns(), 3_000_000);
        }
    }

    #[test]
    fn deadlock_hook_fires_when_heap_drains() {
        let s = sched(2, 1);
        let fired = Arc::new(Mutex::new(false));
        let released = Arc::new(Mutex::new(false));
        {
            let (s2, fired, released) = (Arc::clone(&s), Arc::clone(&fired), Arc::clone(&released));
            s.set_deadlock_hook(move || {
                *fired.lock() = true;
                *released.lock() = true;
                s2.wake_all();
            });
        }
        let (s0, s1) = (Arc::clone(&s), Arc::clone(&s));
        let (r0, r1) = (Arc::clone(&released), Arc::clone(&released));
        std::thread::scope(|scope| {
            scope.spawn(move || {
                s0.wait_for_start(0);
                while !*r0.lock() {
                    s0.yield_blocked(0);
                }
                s0.finish(0);
            });
            scope.spawn(move || {
                s1.wait_for_start(1);
                while !*r1.lock() {
                    s1.yield_blocked(1);
                }
                s1.finish(1);
            });
            s.start();
        });
        assert!(*fired.lock(), "deadlock hook must fire");
    }
}
