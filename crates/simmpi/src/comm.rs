//! Communicators: point-to-point messaging and collective operations.
//!
//! A [`Comm`] is a per-rank handle onto a communicator: an ordered group of
//! global ranks plus this rank's position in it. Collectives are implemented
//! with real message-passing algorithms (binomial trees, dissemination
//! barrier) so that each hop is charged to the modeled network and failures
//! are observed the way ULFM specifies — first by the neighbors of the dead
//! rank, with other ranks potentially stuck until the communicator is
//! revoked.

use std::cell::Cell;
use std::sync::Arc;

use bytes::Bytes;

use crate::error::{MpiError, MpiResult};
use crate::pod::{self, Pod};
use crate::router::{CommId, Envelope, MatchSpec, Router};
use telemetry::MpiOp;

/// Message tag. User tags must keep the top bit clear; collective-internal
/// traffic uses the reserved space.
pub type Tag = u64;

const COLL_BIT: u64 = 1 << 63;

/// Collective kinds, folded into internal tags so concurrent collectives on
/// the same communicator cannot cross-match.
#[derive(Clone, Copy)]
#[repr(u8)]
enum Coll {
    Barrier = 1,
    Bcast = 2,
    Reduce = 3,
    Gather = 4,
}

/// Built-in reduction operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

/// Scalar element types usable with the built-in reduction operators.
pub trait Scalar: Pod + PartialOrd + Default {
    fn add(a: Self, b: Self) -> Self;
}

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            // Wrapping: MPI sum reductions of integers wrap on overflow
            // rather than trapping (and digests rely on this).
            fn add(a: Self, b: Self) -> Self { a.wrapping_add(b) }
        }
    )*};
}
impl_scalar_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize);

macro_rules! impl_scalar_float {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            fn add(a: Self, b: Self) -> Self { a + b }
        }
    )*};
}
impl_scalar_float!(f32, f64);

impl ReduceOp {
    /// Fold `src` element-wise into `acc`.
    pub fn apply<T: Scalar>(self, acc: &mut [T], src: &[T]) {
        assert_eq!(acc.len(), src.len(), "reduction buffer size mismatch");
        match self {
            ReduceOp::Sum => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a = T::add(*a, s);
                }
            }
            ReduceOp::Min => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    if s < *a {
                        *a = s;
                    }
                }
            }
            ReduceOp::Max => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    if s > *a {
                        *a = s;
                    }
                }
            }
        }
    }
}

/// A per-rank communicator handle.
///
/// Cloning a `Comm` yields another handle for the *same* rank (useful for
/// storing in several runtime layers); it is not a `comm_dup`.
pub struct Comm {
    router: Arc<Router>,
    id: CommId,
    epoch: u32,
    /// Comm rank → global rank.
    group: Arc<Vec<usize>>,
    /// This rank's position in `group`.
    my_rank: usize,
    /// Per-handle collective sequence number. MPI requires all ranks to call
    /// collectives in the same order, which keeps these in sync.
    coll_seq: Cell<u64>,
}

impl Clone for Comm {
    fn clone(&self) -> Self {
        Comm {
            router: Arc::clone(&self.router),
            id: self.id,
            epoch: self.epoch,
            group: Arc::clone(&self.group),
            my_rank: self.my_rank,
            coll_seq: Cell::new(self.coll_seq.get()),
        }
    }
}

impl Comm {
    /// Build a communicator handle from an explicit group. `my_global` must
    /// be a member of `group`.
    pub fn from_group(
        router: Arc<Router>,
        id: CommId,
        epoch: u32,
        group: Arc<Vec<usize>>,
        my_global: usize,
    ) -> Self {
        let my_rank = group
            .iter()
            .position(|&g| g == my_global)
            .expect("rank not in communicator group");
        Comm {
            router,
            id,
            epoch,
            group,
            my_rank,
            coll_seq: Cell::new(0),
        }
    }

    /// The world communicator for a freshly launched universe.
    pub(crate) fn world(router: Arc<Router>, my_global: usize) -> Self {
        let n = router.ranks();
        let group = Arc::new((0..n).collect());
        Comm::from_group(router, 0, 0, group, my_global)
    }

    pub fn id(&self) -> CommId {
        self.id
    }

    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// This rank within the communicator.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Global (world) rank of a communicator rank.
    pub fn global_of(&self, comm_rank: usize) -> usize {
        self.group[comm_rank]
    }

    /// This rank's global (world) rank.
    pub fn my_global(&self) -> usize {
        self.group[self.my_rank]
    }

    /// Communicator rank of a global rank, if it is a member.
    pub fn rank_of_global(&self, global: usize) -> Option<usize> {
        self.group.iter().position(|&g| g == global)
    }

    pub fn group(&self) -> &Arc<Vec<usize>> {
        &self.group
    }

    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Trace hook: forwards to the router's per-rank recorder (no-op unless
    /// `TelemetryConfig::record_mpi_calls` is set).
    fn trace_call(&self, op: MpiOp, peer: Option<usize>, bytes: usize) {
        self.router
            .record_mpi(self.my_global(), op, peer.map(|p| p as u32), bytes as u64);
    }

    fn check_rank(&self, rank: usize) -> MpiResult<()> {
        if rank >= self.size() {
            Err(MpiError::RankOutOfRange {
                rank,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    // ---- point-to-point ---------------------------------------------------

    /// Send raw bytes to a communicator rank.
    pub fn send_bytes(&self, dst: usize, tag: Tag, payload: Bytes) -> MpiResult<()> {
        self.check_rank(dst)?;
        self.trace_call(MpiOp::Send, Some(dst), payload.len());
        debug_assert!(tag & COLL_BIT == 0, "user tags must keep the top bit clear");
        self.router.send(
            self.global_of(dst),
            Envelope {
                comm: self.id,
                epoch: self.epoch,
                src: self.my_global(),
                tag,
                payload,
            },
        )
    }

    /// Receive raw bytes. `src = None` receives from any source. Returns the
    /// payload and the *communicator* rank of the sender.
    pub fn recv_bytes(&self, src: Option<usize>, tag: Tag) -> MpiResult<(Bytes, usize)> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let env = self.recv_internal(src, tag)?;
        let src_rank = self
            .rank_of_global(env.src)
            .expect("sender not in communicator group");
        self.trace_call(MpiOp::Recv, Some(src_rank), env.payload.len());
        Ok((env.payload, src_rank))
    }

    fn recv_internal(&self, src: Option<usize>, tag: Tag) -> MpiResult<Envelope> {
        self.router.recv(MatchSpec {
            comm: self.id,
            epoch: self.epoch,
            src: src.map(|s| self.global_of(s)),
            tag,
            group: &self.group,
            me: self.my_global(),
        })
    }

    /// Send a typed slice.
    pub fn send<T: Pod>(&self, dst: usize, tag: Tag, data: &[T]) -> MpiResult<()> {
        self.send_bytes(dst, tag, pod::to_bytes(data))
    }

    /// Receive into a typed buffer; the incoming payload must match its size
    /// exactly. Returns the sender's communicator rank.
    pub fn recv_into<T: Pod>(
        &self,
        src: Option<usize>,
        tag: Tag,
        buf: &mut [T],
    ) -> MpiResult<usize> {
        let (payload, from) = self.recv_bytes(src, tag)?;
        let want = std::mem::size_of_val(buf);
        if payload.len() != want {
            return Err(MpiError::TypeMismatch {
                expected: want,
                got: payload.len(),
            });
        }
        pod::copy_from_bytes(buf, &payload);
        Ok(from)
    }

    /// Receive a typed vector of any length.
    pub fn recv_vec<T: Pod + Default>(
        &self,
        src: Option<usize>,
        tag: Tag,
    ) -> MpiResult<(Vec<T>, usize)> {
        let (payload, from) = self.recv_bytes(src, tag)?;
        Ok((pod::vec_from_bytes(&payload), from))
    }

    /// Combined send+receive (halo exchanges). Sends are buffered, so a
    /// plain send-then-receive cannot deadlock.
    pub fn sendrecv<T: Pod>(
        &self,
        dst: usize,
        send_tag: Tag,
        send_data: &[T],
        src: usize,
        recv_tag: Tag,
        recv_buf: &mut [T],
    ) -> MpiResult<()> {
        self.trace_call(MpiOp::SendRecv, Some(dst), std::mem::size_of_val(send_data));
        self.send(dst, send_tag, send_data)?;
        self.recv_into(Some(src), recv_tag, recv_buf)?;
        Ok(())
    }

    // ---- collectives ------------------------------------------------------

    fn next_coll_tag(&self, kind: Coll, round: u32) -> Tag {
        // seq is advanced once per collective *call* (see coll_begin).
        let seq = self.coll_seq.get();
        COLL_BIT | ((kind as u64) << 56) | (seq << 8) | round as u64
    }

    fn coll_begin(&self) {
        self.coll_seq
            .set(self.coll_seq.get().wrapping_add(1) & 0x0000_ffff_ffff_ffff);
    }

    fn coll_send(&self, kind: Coll, round: u32, dst: usize, payload: Bytes) -> MpiResult<()> {
        self.check_rank(dst)?;
        self.router.send(
            self.global_of(dst),
            Envelope {
                comm: self.id,
                epoch: self.epoch,
                src: self.my_global(),
                tag: self.next_coll_tag(kind, round),
                payload,
            },
        )
    }

    fn coll_recv(&self, kind: Coll, round: u32, src: usize) -> MpiResult<Bytes> {
        let env = self.router.recv(MatchSpec {
            comm: self.id,
            epoch: self.epoch,
            src: Some(self.global_of(src)),
            tag: self.next_coll_tag(kind, round),
            group: &self.group,
            me: self.my_global(),
        })?;
        Ok(env.payload)
    }

    /// Dissemination barrier.
    pub fn barrier(&self) -> MpiResult<()> {
        self.trace_call(MpiOp::Barrier, None, 0);
        self.coll_begin();
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let me = self.my_rank;
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let dst = (me + dist) % n;
            let src = (me + n - dist) % n;
            self.coll_send(Coll::Barrier, round, dst, Bytes::new())?;
            self.coll_recv(Coll::Barrier, round, src)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast of raw bytes from `root`. On non-root ranks
    /// the returned payload replaces `data`'s role.
    pub fn bcast_bytes(&self, root: usize, data: Bytes) -> MpiResult<Bytes> {
        self.check_rank(root)?;
        self.trace_call(MpiOp::Bcast, Some(root), data.len());
        self.coll_begin();
        let n = self.size();
        if n <= 1 {
            return Ok(data);
        }
        let vr = (self.my_rank + n - root) % n;

        // Receive phase: find the lowest set bit of vr.
        let mut mask = 1usize;
        let mut payload = data;
        while mask < n {
            if vr & mask != 0 {
                let parent = (vr - mask + root) % n;
                payload = self.coll_recv(Coll::Bcast, 0, parent)?;
                break;
            }
            mask <<= 1;
        }
        // Send phase: fan out below my lowest set bit.
        mask >>= 1;
        while mask > 0 {
            if vr + mask < n {
                let child = (vr + mask + root) % n;
                self.coll_send(Coll::Bcast, 0, child, payload.clone())?;
            }
            mask >>= 1;
        }
        Ok(payload)
    }

    /// Typed broadcast: `buf` is the source at root and the destination
    /// elsewhere.
    pub fn bcast<T: Pod>(&self, root: usize, buf: &mut [T]) -> MpiResult<()> {
        let payload = if self.my_rank == root {
            pod::to_bytes(buf)
        } else {
            Bytes::new()
        };
        let out = self.bcast_bytes(root, payload)?;
        if self.my_rank != root {
            if out.len() != std::mem::size_of_val(buf) {
                return Err(MpiError::TypeMismatch {
                    expected: std::mem::size_of_val(buf),
                    got: out.len(),
                });
            }
            pod::copy_from_bytes(buf, &out);
        }
        Ok(())
    }

    /// Binomial-tree reduction to `root` with a caller-provided combiner.
    /// On return, `buf` at root holds the reduction; elsewhere its content is
    /// unspecified (it is used as scratch).
    pub fn reduce_with<T: Pod + Default>(
        &self,
        root: usize,
        buf: &mut [T],
        combine: impl Fn(&mut [T], &[T]),
    ) -> MpiResult<()> {
        self.check_rank(root)?;
        self.trace_call(MpiOp::Reduce, Some(root), std::mem::size_of_val(buf));
        self.coll_begin();
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let vr = (self.my_rank + n - root) % n;
        let mut recv_buf = vec![T::default(); buf.len()];
        let mut mask = 1usize;
        while mask < n {
            if vr & mask != 0 {
                let dst = (vr - mask + root) % n;
                self.coll_send(Coll::Reduce, mask as u32, dst, pod::to_bytes(buf))?;
                break;
            }
            let peer = vr + mask;
            if peer < n {
                let src = (peer + root) % n;
                let payload = self.coll_recv(Coll::Reduce, mask as u32, src)?;
                if payload.len() != std::mem::size_of_val(buf) {
                    return Err(MpiError::TypeMismatch {
                        expected: std::mem::size_of_val(buf),
                        got: payload.len(),
                    });
                }
                pod::copy_from_bytes(&mut recv_buf, &payload);
                combine(buf, &recv_buf);
            }
            mask <<= 1;
        }
        Ok(())
    }

    /// Reduce with a built-in operator.
    pub fn reduce<T: Scalar>(&self, root: usize, buf: &mut [T], op: ReduceOp) -> MpiResult<()> {
        self.reduce_with(root, buf, |acc, src| op.apply(acc, src))
    }

    /// Allreduce = reduce to rank 0 + broadcast.
    pub fn allreduce<T: Scalar>(&self, buf: &mut [T], op: ReduceOp) -> MpiResult<()> {
        self.trace_call(MpiOp::Allreduce, None, std::mem::size_of_val(buf));
        self.reduce(0, buf, op)?;
        self.bcast(0, buf)
    }

    /// Allreduce with a caller-provided combiner.
    pub fn allreduce_with<T: Pod + Default>(
        &self,
        buf: &mut [T],
        combine: impl Fn(&mut [T], &[T]),
    ) -> MpiResult<()> {
        self.trace_call(MpiOp::Allreduce, None, std::mem::size_of_val(buf));
        self.reduce_with(0, buf, combine)?;
        self.bcast(0, buf)
    }

    /// Convenience: allreduce a single scalar.
    pub fn allreduce_scalar<T: Scalar>(&self, value: T, op: ReduceOp) -> MpiResult<T> {
        let mut buf = [value];
        self.allreduce(&mut buf, op)?;
        Ok(buf[0])
    }

    /// Gather equal-sized contributions to `root`. Returns
    /// `Some(concatenated-in-rank-order)` at root, `None` elsewhere.
    pub fn gather<T: Pod + Default>(&self, root: usize, data: &[T]) -> MpiResult<Option<Vec<T>>> {
        self.check_rank(root)?;
        self.trace_call(MpiOp::Gather, Some(root), std::mem::size_of_val(data));
        self.coll_begin();
        let n = self.size();
        if self.my_rank == root {
            let mut out = vec![T::default(); data.len() * n];
            out[root * data.len()..(root + 1) * data.len()].copy_from_slice(data);
            for r in 0..n {
                if r == root {
                    continue;
                }
                let payload = self.coll_recv(Coll::Gather, r as u32, r)?;
                if payload.len() != std::mem::size_of_val(data) {
                    return Err(MpiError::TypeMismatch {
                        expected: std::mem::size_of_val(data),
                        got: payload.len(),
                    });
                }
                pod::copy_from_bytes(&mut out[r * data.len()..(r + 1) * data.len()], &payload);
            }
            Ok(Some(out))
        } else {
            self.coll_send(Coll::Gather, self.my_rank as u32, root, pod::to_bytes(data))?;
            Ok(None)
        }
    }

    /// Allgather = gather to rank 0 + broadcast.
    pub fn allgather<T: Pod + Default>(&self, data: &[T]) -> MpiResult<Vec<T>> {
        self.trace_call(MpiOp::Allgather, None, std::mem::size_of_val(data));
        let gathered = self.gather(0, data)?;
        let mut full = match gathered {
            Some(v) => v,
            None => vec![T::default(); data.len() * self.size()],
        };
        self.bcast(0, &mut full)?;
        Ok(full)
    }

    /// `MPI_Comm_split`: collectively partition the communicator by
    /// `color`; within a color, new ranks are ordered by `(key, old rank)`.
    /// Returns this rank's new communicator. (Unlike MPI there is no
    /// `MPI_UNDEFINED` color — every rank lands in some sub-communicator.)
    pub fn split(&self, color: u64, key: u64) -> MpiResult<Comm> {
        self.trace_call(MpiOp::Split, None, 0);
        // Everyone learns everyone's (color, key).
        let all = self.allgather(&[color, key])?;
        let mut members: Vec<(u64, usize)> = (0..self.size())
            .filter(|&r| all[2 * r] == color)
            .map(|r| (all[2 * r + 1], r))
            .collect();
        members.sort_unstable();
        let group: Vec<usize> = members.iter().map(|&(_, r)| self.global_of(r)).collect();
        // Deterministic child id: same inputs on every member.
        let id = Router::derive_comm_id(
            self.id(),
            0x5B17_0000u64 ^ color ^ ((self.epoch() as u64) << 40),
        );
        Ok(Comm::from_group(
            Arc::clone(&self.router),
            id,
            0,
            Arc::new(group),
            self.my_global(),
        ))
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("id", &self.id)
            .field("epoch", &self.epoch)
            .field("rank", &self.my_rank)
            .field("size", &self.size())
            .finish()
    }
}
