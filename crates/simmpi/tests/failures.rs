//! ULFM failure semantics across launched universes: fault injection,
//! failure observability, revoke/agree/shrink recovery, and plain-MPI abort.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cluster::{Cluster, ClusterConfig, TimeScale};
use simmpi::{FaultPlan, MpiError, MpiResult, RankCtx, ReduceOp, Universe, UniverseConfig};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

fn run_with_faults<F>(n: usize, plan: FaultPlan, cfg: UniverseConfig, f: F) -> simmpi::LaunchReport
where
    F: Fn(&mut RankCtx) -> MpiResult<()> + Send + Sync,
{
    Universe::launch(&cluster(n), cfg, Arc::new(plan), f)
}

#[test]
fn injected_fault_kills_only_victim() {
    let report = run_with_faults(
        3,
        FaultPlan::kill_at(1, "step", 2),
        UniverseConfig::default(),
        |ctx| {
            for i in 0..5 {
                ctx.fault_point("step", i)?;
            }
            Ok(())
        },
    );
    assert_eq!(report.killed_ranks(), vec![1]);
    assert!(report.outcomes[0].result.is_ok());
    assert!(report.outcomes[2].result.is_ok());
}

#[test]
fn neighbor_observes_proc_failed() {
    // Rank 1 dies; rank 0 tries to receive from it and gets ProcFailed.
    let report = run_with_faults(
        2,
        FaultPlan::kill_at(1, "pre-send", 0),
        UniverseConfig::default(),
        |ctx| {
            let w = ctx.world();
            if ctx.rank() == 1 {
                ctx.fault_point("pre-send", 0)?;
                w.send(0, 1, &[1u8])?;
            } else {
                let mut b = [0u8];
                let e = w.recv_into(Some(1), 1, &mut b).unwrap_err();
                assert_eq!(e, MpiError::proc_failed(1));
            }
            Ok(())
        },
    );
    assert_eq!(report.killed_ranks(), vec![1]);
    assert!(report.outcomes[0].result.is_ok());
}

#[test]
fn revoke_unblocks_third_party() {
    // Rank 2 dies. Rank 1 would block forever receiving from rank 0 (which
    // is itself stuck on rank 2) — until rank 0 observes the failure and
    // revokes. This is the exact deadlock ULFM's revoke exists to solve.
    let report = run_with_faults(
        3,
        FaultPlan::kill_at(2, "boom", 0),
        UniverseConfig::default(),
        |ctx| {
            let w = ctx.world();
            match ctx.rank() {
                0 => {
                    let mut b = [0u8];
                    let e = w.recv_into(Some(2), 9, &mut b).unwrap_err();
                    assert_eq!(e, MpiError::proc_failed(2));
                    w.revoke();
                    Ok(())
                }
                1 => {
                    let mut b = [0u8];
                    let e = w.recv_into(Some(0), 9, &mut b).unwrap_err();
                    assert_eq!(e, MpiError::Revoked);
                    Ok(())
                }
                _ => Err(ctx.die()),
            }
        },
    );
    assert_eq!(report.killed_ranks(), vec![2]);
}

#[test]
fn agree_converges_despite_failure() {
    let report = run_with_faults(
        4,
        FaultPlan::kill_at(3, "boom", 0),
        UniverseConfig::default(),
        |ctx| {
            let w = ctx.world();
            if ctx.rank() == 3 {
                return Err(ctx.die());
            }
            let out = w.agree(0, 0b1110 | (1 << ctx.rank()))?;
            // AND over live ranks 0..2.
            assert_eq!(out.flags, 0b1110);
            assert_eq!(out.failed, vec![3]);
            Ok(())
        },
    );
    assert_eq!(report.killed_ranks(), vec![3]);
}

#[test]
fn shrink_builds_working_survivor_comm() {
    let survivors_sum = Arc::new(AtomicUsize::new(0));
    let ss = Arc::clone(&survivors_sum);
    let report = run_with_faults(
        4,
        FaultPlan::kill_at(1, "boom", 0),
        UniverseConfig::default(),
        move |ctx| {
            let w = ctx.world();
            if ctx.rank() == 1 {
                return Err(ctx.die());
            }
            let shrunk = w.shrink(0)?;
            assert_eq!(shrunk.size(), 3);
            // Survivor order preserved: globals [0, 2, 3].
            assert_eq!(*shrunk.group().as_slice(), [0, 2, 3]);
            // The shrunk communicator must be fully operational.
            let total = shrunk.allreduce_scalar(shrunk.rank() as u64, ReduceOp::Sum)?;
            assert_eq!(total, 3); // 0+1+2
            ss.fetch_add(1, Ordering::Relaxed);
            Ok(())
        },
    );
    assert_eq!(report.killed_ranks(), vec![1]);
    assert_eq!(survivors_sum.load(Ordering::Relaxed), 3);
}

#[test]
fn abort_on_failure_tears_down_job() {
    // Plain-MPI semantics: rank 1 dies, rank 0 is blocked in a receive from
    // rank 2 (which never sends); the abort must unblock everyone.
    let cfg = UniverseConfig {
        abort_on_failure: true,
        charge_startup: false,
        ..UniverseConfig::default()
    };
    let report = run_with_faults(3, FaultPlan::kill_at(1, "boom", 0), cfg, |ctx| {
        let w = ctx.world();
        match ctx.rank() {
            1 => ctx.fault_point("boom", 0).map(|_| ()),
            0 => {
                let mut b = [0u8];
                let e = w.recv_into(Some(2), 5, &mut b).unwrap_err();
                assert_eq!(e, MpiError::Aborted);
                Err(e)
            }
            _ => {
                let mut b = [0u8];
                // Rank 2 blocks on rank 0 and is also unblocked by abort.
                let e = w.recv_into(Some(0), 6, &mut b).unwrap_err();
                assert_eq!(e, MpiError::Aborted);
                Err(e)
            }
        }
    });
    assert!(report.aborted);
    assert_eq!(report.killed_ranks(), vec![1]);
}

#[test]
fn collective_reports_failure_not_hang() {
    // A failure before a reduction: participants that depend on the dead
    // rank's subtree observe ProcFailed (possibly after revoke).
    let report = run_with_faults(
        4,
        FaultPlan::kill_at(2, "boom", 0),
        UniverseConfig::default(),
        |ctx| {
            let w = ctx.world();
            if ctx.rank() == 2 {
                return Err(ctx.die());
            }
            match w.allreduce_scalar(1u64, ReduceOp::Sum) {
                Ok(_) => Ok(()), // completed before observing the failure
                Err(e) if e.is_recoverable() => {
                    w.revoke(); // propagate, like a Fenix error handler
                    Ok(())
                }
                Err(e) => Err(e),
            }
        },
    );
    assert_eq!(report.killed_ranks(), vec![2]);
    for o in &report.outcomes {
        if o.rank != 2 {
            assert!(
                o.result.is_ok(),
                "rank {} hung or failed: {:?}",
                o.rank,
                o.result
            );
        }
    }
}

#[test]
fn panic_in_rank_is_contained() {
    let report = run_with_faults(2, FaultPlan::none(), UniverseConfig::default(), |ctx| {
        if ctx.rank() == 1 {
            panic!("application bug");
        }
        // Rank 0 tries to talk to the panicked rank; must not hang.
        let w = ctx.world();
        let mut b = [0u8];
        let e = w.recv_into(Some(1), 3, &mut b).unwrap_err();
        assert_eq!(e, MpiError::proc_failed(1));
        Ok(())
    });
    assert_eq!(report.killed_ranks(), vec![1]);
    assert!(report.outcomes[0].result.is_ok());
}

#[test]
fn fault_plan_does_not_refire_on_relaunch() {
    let plan = Arc::new(FaultPlan::kill_at(0, "iter", 1));
    let c = cluster(2);
    let app = |ctx: &mut RankCtx| -> MpiResult<()> {
        for i in 0..3 {
            ctx.fault_point("iter", i)?;
        }
        Ok(())
    };
    let first = Universe::launch(&c, UniverseConfig::default(), Arc::clone(&plan), app);
    assert_eq!(first.killed_ranks(), vec![0]);
    // Relaunch (same plan, like a restarted job): no kill this time.
    let second = Universe::launch(&c, UniverseConfig::default(), Arc::clone(&plan), app);
    assert!(second.all_ok());
}

#[test]
fn schedule_kill_fires_at_most_once_across_many_relaunches() {
    // Regression for the chaos campaign's relaunch loop: a Kill is consumed
    // by its first firing and stays consumed across *every* later launch of
    // the same schedule — if it re-fired, any run with a finite relaunch
    // budget would be killed at the same site forever and could never
    // complete.
    let plan = Arc::new(FaultPlan::kill_at(0, "iter", 1));
    let c = cluster(2);
    let app = |ctx: &mut RankCtx| -> MpiResult<()> {
        for i in 0..3 {
            ctx.fault_point("iter", i)?;
        }
        Ok(())
    };
    let first = Universe::launch(&c, UniverseConfig::default(), Arc::clone(&plan), app);
    assert_eq!(first.killed_ranks(), vec![0]);
    assert_eq!(plan.fired_count(), 1);
    for relaunch in 0..3 {
        let again = Universe::launch(&c, UniverseConfig::default(), Arc::clone(&plan), app);
        assert!(again.all_ok(), "kill re-fired on relaunch {relaunch}");
        assert_eq!(plan.fired_count(), 1);
    }
}

#[test]
fn duplicate_kills_at_same_site_fire_on_successive_launches() {
    // Two schedule entries at the identical (rank, site, count) triple are
    // two distinct faults: the first launch consumes one, the relaunch
    // consumes the other, and only the third launch runs clean. This is how
    // a chaos schedule expresses "kill the recovered job at the same place
    // again".
    let plan = Arc::new(FaultPlan::kill_at(0, "iter", 1).and_kill(0, "iter", 1));
    let c = cluster(2);
    let app = |ctx: &mut RankCtx| -> MpiResult<()> {
        for i in 0..3 {
            ctx.fault_point("iter", i)?;
        }
        Ok(())
    };
    let first = Universe::launch(&c, UniverseConfig::default(), Arc::clone(&plan), app);
    assert_eq!(first.killed_ranks(), vec![0]);
    assert_eq!(plan.fired_count(), 1);
    let second = Universe::launch(&c, UniverseConfig::default(), Arc::clone(&plan), app);
    assert_eq!(
        second.killed_ranks(),
        vec![0],
        "duplicate kill must also fire"
    );
    assert_eq!(plan.fired_count(), 2);
    let third = Universe::launch(&c, UniverseConfig::default(), Arc::clone(&plan), app);
    assert!(third.all_ok());
}

#[test]
fn multiple_failures_shrink_twice() {
    // Two failures at different times; survivors shrink, lose another rank,
    // and shrink again.
    let report = run_with_faults(
        5,
        FaultPlan::kill_at(1, "first", 0).and_kill(3, "second", 0),
        UniverseConfig::default(),
        |ctx| {
            let w = ctx.world();
            if ctx.rank() == 1 {
                return Err(ctx.die());
            }
            let s1 = w.shrink(0)?;
            assert_eq!(s1.size(), 4);
            if ctx.rank() == 3 {
                return Err(ctx.die());
            }
            let s2 = s1.shrink(1)?;
            assert_eq!(s2.size(), 3);
            assert_eq!(*s2.group().as_slice(), [0, 2, 4]);
            let sum = s2.allreduce_scalar(1u64, ReduceOp::Sum)?;
            assert_eq!(sum, 3);
            Ok(())
        },
    );
    let mut killed = report.killed_ranks();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 3]);
}
