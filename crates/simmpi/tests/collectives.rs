//! Collective-operation correctness across launched universes.

use std::sync::Arc;

use cluster::{Cluster, ClusterConfig, TimeScale};
use simmpi::{FaultPlan, MpiResult, RankCtx, ReduceOp, Universe, UniverseConfig};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

fn run<F>(n: usize, f: F) -> simmpi::LaunchReport
where
    F: Fn(&mut RankCtx) -> MpiResult<()> + Send + Sync,
{
    Universe::launch(
        &cluster(n),
        UniverseConfig::default(),
        Arc::new(FaultPlan::none()),
        f,
    )
}

#[test]
fn world_ranks_and_sizes() {
    for n in [1, 2, 3, 5, 8] {
        let report = run(n, |ctx| {
            assert_eq!(ctx.world().size(), n);
            assert_eq!(ctx.world().rank(), ctx.rank());
            assert_eq!(ctx.world().my_global(), ctx.rank());
            Ok(())
        });
        assert!(report.all_ok());
    }
}

#[test]
fn point_to_point_ring() {
    let n = 5;
    let report = run(n, |ctx| {
        let w = ctx.world();
        let me = w.rank();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        w.send(next, 42, &[me as u64])?;
        let mut got = [0u64];
        let from = w.recv_into(Some(prev), 42, &mut got)?;
        assert_eq!(from, prev);
        assert_eq!(got[0], prev as u64);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn sendrecv_halo_exchange() {
    let n = 4;
    let report = run(n, |ctx| {
        let w = ctx.world();
        let me = w.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut from_left = [0.0f64; 3];
        w.sendrecv(right, 7, &[me as f64; 3], left, 7, &mut from_left)?;
        assert_eq!(from_left, [left as f64; 3]);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn barrier_completes_at_all_sizes() {
    for n in [1, 2, 3, 4, 7, 8] {
        let report = run(n, |ctx| {
            for _ in 0..3 {
                ctx.world().barrier()?;
            }
            Ok(())
        });
        assert!(report.all_ok(), "barrier failed at n={n}");
    }
}

#[test]
fn bcast_from_every_root() {
    let n = 6;
    for root in 0..n {
        let report = run(n, move |ctx| {
            let w = ctx.world();
            let mut buf = if w.rank() == root {
                [13u64, 17, root as u64]
            } else {
                [0u64; 3]
            };
            w.bcast(root, &mut buf)?;
            assert_eq!(buf, [13, 17, root as u64]);
            Ok(())
        });
        assert!(report.all_ok(), "bcast failed for root={root}");
    }
}

#[test]
fn allreduce_sum_matches_closed_form() {
    for n in [1, 2, 3, 5, 8] {
        let report = run(n, move |ctx| {
            let w = ctx.world();
            let me = w.rank() as u64;
            let mut buf = [me, 2 * me];
            w.allreduce(&mut buf, ReduceOp::Sum)?;
            let s: u64 = (0..n as u64).sum();
            assert_eq!(buf, [s, 2 * s]);
            Ok(())
        });
        assert!(report.all_ok(), "allreduce failed at n={n}");
    }
}

#[test]
fn allreduce_min_max() {
    let n = 7;
    let report = run(n, |ctx| {
        let w = ctx.world();
        let v = (w.rank() as f64) - 3.0;
        assert_eq!(w.allreduce_scalar(v, ReduceOp::Min)?, -3.0);
        assert_eq!(w.allreduce_scalar(v, ReduceOp::Max)?, 3.0);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn reduce_to_nonzero_root() {
    let n = 5;
    let report = run(n, |ctx| {
        let w = ctx.world();
        let mut buf = [w.rank() as i64 + 1];
        w.reduce(3, &mut buf, ReduceOp::Sum)?;
        if w.rank() == 3 {
            assert_eq!(buf[0], 15);
        }
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn gather_preserves_rank_order() {
    let n = 4;
    let report = run(n, |ctx| {
        let w = ctx.world();
        let data = [w.rank() as u32 * 10, w.rank() as u32 * 10 + 1];
        let gathered = w.gather(0, &data)?;
        if w.rank() == 0 {
            let g = gathered.expect("root gets data");
            assert_eq!(g, vec![0, 1, 10, 11, 20, 21, 30, 31]);
        } else {
            assert!(gathered.is_none());
        }
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn allgather_everyone_sees_everything() {
    let n = 3;
    let report = run(n, |ctx| {
        let w = ctx.world();
        let got = w.allgather(&[w.rank() as f32])?;
        assert_eq!(got, vec![0.0, 1.0, 2.0]);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn allreduce_with_custom_combiner() {
    let n = 4;
    let report = run(n, |ctx| {
        let w = ctx.world();
        // Product via custom combiner.
        let mut buf = [w.rank() as u64 + 1];
        w.allreduce_with(&mut buf, |acc, src| {
            for (a, s) in acc.iter_mut().zip(src) {
                *a *= s;
            }
        })?;
        assert_eq!(buf[0], 24);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn mixed_collective_sequence_stays_matched() {
    // Back-to-back different collectives must not cross-match tags.
    let n = 4;
    let report = run(n, |ctx| {
        let w = ctx.world();
        for i in 0..5u64 {
            let s = w.allreduce_scalar(i + w.rank() as u64, ReduceOp::Sum)?;
            w.barrier()?;
            let mut b = [s];
            w.bcast(0, &mut b)?;
            let all = w.allgather(&[b[0]])?;
            assert!(all.iter().all(|&x| x == all[0]));
        }
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn comm_split_partitions_by_color() {
    let n = 6;
    let report = run(n, |ctx| {
        let w = ctx.world();
        // Even/odd split; key reverses the order within each half.
        let color = (w.rank() % 2) as u64;
        let key = (n - w.rank()) as u64;
        let sub = w.split(color, key)?;
        assert_eq!(sub.size(), 3);
        // Keys descend with old rank, so new rank 0 is the highest old rank
        // of the color class.
        let expected_order: Vec<usize> = match color {
            0 => vec![4, 2, 0],
            _ => vec![5, 3, 1],
        };
        assert_eq!(*sub.group().as_slice(), expected_order[..]);
        // The sub-communicator must be fully operational.
        let sum = sub.allreduce_scalar(w.rank() as u64, ReduceOp::Sum)?;
        let expect: u64 = expected_order.iter().map(|&r| r as u64).sum();
        assert_eq!(sum, expect);
        Ok(())
    });
    assert!(report.all_ok(), "{:?}", report.outcomes);
}

#[test]
fn comm_split_single_color_is_reordered_dup() {
    let n = 4;
    let report = run(n, |ctx| {
        let w = ctx.world();
        let sub = w.split(7, w.rank() as u64)?;
        assert_eq!(sub.size(), n);
        assert_eq!(sub.rank(), w.rank(), "identity keys preserve order");
        sub.barrier()?;
        Ok(())
    });
    assert!(report.all_ok());
}
