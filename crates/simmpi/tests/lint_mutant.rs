//! Built only under `lint-mutants` (CI: `cargo test -p simmpi --features
//! lint-mutants`): the seeded lock-order violation must compile and run,
//! so `crates/lint/tests/mutant.rs` is testing against live code, not a
//! stale decoy. The deadlock itself needs a two-thread schedule each
//! holding one lock — sequentially, both halves complete, which is
//! exactly why the bug survives casual testing and needs the static rule.
#![cfg(feature = "lint-mutants")]

#[test]
fn seeded_abba_halves_each_complete_alone() {
    let p = simmpi::mutant::Pair::default();
    assert_eq!(p.ab(), 0);
    assert_eq!(p.ba(), 0);
}
