//! Property tests for router message ordering (ISSUE satellite): for any
//! interleaving of tags from one sender, each `(src, tag)` stream is
//! delivered FIFO, and tag-selective receives never lose, duplicate, or
//! reorder messages within a stream — the non-overtaking guarantee MPI
//! makes for matched point-to-point traffic.

use std::sync::Arc;

use bytes::Bytes;
use cluster::{Cluster, ClusterConfig, TimeScale};
use proptest::prelude::*;
use simmpi::router::{Envelope, MatchSpec, Router};

fn router(n: usize) -> Arc<Router> {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    Router::new(Cluster::new(cfg))
}

fn env(src: usize, tag: u64, seq: u64) -> Envelope {
    Envelope {
        comm: 0,
        epoch: 0,
        src,
        tag,
        payload: Bytes::copy_from_slice(&seq.to_le_bytes()),
    }
}

fn spec<'a>(group: &'a [usize], src: Option<usize>, tag: u64) -> MatchSpec<'a> {
    MatchSpec {
        comm: 0,
        epoch: 0,
        src,
        tag,
        group,
        me: 1,
    }
}

fn seq_of(e: &Envelope) -> u64 {
    u64::from_le_bytes(e.payload[..8].try_into().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rank 0 sends an arbitrary interleaving of tagged messages to rank
    /// 1; per-tag receives must return exactly the per-tag subsequence in
    /// send order.
    #[test]
    fn per_tag_streams_are_fifo(tags in proptest::collection::vec(0u64..3, 0..40)) {
        let r = router(2);
        let group = [0usize, 1];
        for (i, &tag) in tags.iter().enumerate() {
            r.send(1, env(0, tag, i as u64)).unwrap();
        }
        for tag in 0u64..3 {
            let expect: Vec<u64> = tags
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t == tag)
                .map(|(i, _)| i as u64)
                .collect();
            let got: Vec<u64> = (0..expect.len())
                .map(|_| seq_of(&r.recv(spec(&group, Some(0), tag)).unwrap()))
                .collect();
            prop_assert_eq!(got, expect, "tag {} stream out of order", tag);
        }
    }

    /// Receiving from ANY with a fixed tag drains that tag's stream in
    /// send order regardless of how many other tags are interleaved
    /// around it (non-overtaking within the matched stream).
    #[test]
    fn any_source_recv_preserves_stream_order(
        picked in 0u64..2,
        tags in proptest::collection::vec(0u64..2, 1..30),
    ) {
        let r = router(2);
        let group = [0usize, 1];
        for (i, &tag) in tags.iter().enumerate() {
            r.send(1, env(0, tag, i as u64)).unwrap();
        }
        let count = tags.iter().filter(|&&t| t == picked).count();
        let mut last = None;
        for _ in 0..count {
            let e = r.recv(spec(&group, None, picked)).unwrap();
            prop_assert_eq!(e.tag, picked);
            let s = seq_of(&e);
            prop_assert!(last.is_none_or(|l| l < s), "overtaking: {} after {:?}", s, last);
            last = Some(s);
        }
    }
}
