//! Determinism battery for the DES backend (ISSUE 9 satellite): for any
//! workload shape, ring size, and (optional) injected failure, launching
//! the same schedule twice with the same seed must produce **byte-identical**
//! telemetry timelines and identical per-rank digests — the schedule is a
//! pure function of the seed. A no-fault run's result must additionally be
//! independent of the seed: scheduling order may change, the answer may not.

use std::collections::BTreeMap;
use std::sync::Arc;

use cluster::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use proptest::prelude::*;
use simmpi::{Backend, FaultPlan, MpiResult, RankCtx, ReduceOp, Universe, UniverseConfig};
use telemetry::export::to_jsonl;
use telemetry::{Telemetry, TelemetryConfig, TimeSource};

fn virtual_cluster(n: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        virtual_time: true,
        ..ClusterConfig::default()
    })
}

/// Outcome of one DES launch: the exported timeline, per-rank digests of
/// everything each rank received, and the per-rank ok/err pattern.
struct RunTrace {
    timeline: String,
    digests: BTreeMap<usize, u64>,
    oks: Vec<bool>,
    killed: Vec<usize>,
}

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01b3)
}

/// Ring workload: each iteration every rank sends its running digest to
/// `(r+1) % n`, receives from the left neighbor, folds it in, and joins an
/// allreduce. Recoverable errors (a neighbor died, the job aborted) end the
/// rank early — under DES a wait that can never complete is converted into
/// a typed abort by the scheduler's deadlock detector, so this terminates.
fn run_once(n: usize, iters: u64, seed: u64, kill: Option<(usize, u64)>) -> RunTrace {
    let cluster = virtual_cluster(n);
    let clock = Arc::clone(cluster.clock());
    let tel = Telemetry::with_time_source(
        TelemetryConfig {
            record_mpi_calls: true,
            ..TelemetryConfig::default()
        },
        TimeSource::External(Arc::new(move || clock.now_ns())),
    );
    let plan = match kill {
        Some((victim, at)) => FaultPlan::kill_at(victim, "iter", at),
        None => FaultPlan::none(),
    };
    let digests: Arc<Mutex<BTreeMap<usize, u64>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = Arc::clone(&digests);
    let report = Universe::launch(
        &cluster,
        UniverseConfig {
            telemetry: Some(tel.clone()),
            backend: Backend::Des { seed },
            ..UniverseConfig::default()
        },
        Arc::new(plan),
        move |ctx: &mut RankCtx| -> MpiResult<()> {
            let w = ctx.world();
            let n = w.size();
            let me = ctx.rank();
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for i in 0..iters {
                ctx.fault_point("iter", i)?;
                let res = (|| -> MpiResult<u64> {
                    w.send((me + 1) % n, i, &h.to_le_bytes())?;
                    let mut b = [0u8; 8];
                    w.recv_into(Some((me + n - 1) % n), i, &mut b)?;
                    h = fnv(h, u64::from_le_bytes(b));
                    w.allreduce_scalar(h, ReduceOp::Max)
                })();
                match res {
                    Ok(sum) => h = fnv(h, sum),
                    // A dead neighbor or a job abort is a legitimate end of
                    // this rank's run; anything else is a real failure.
                    Err(e) if e.is_recoverable() || e == simmpi::MpiError::Aborted => break,
                    Err(e) => return Err(e),
                }
            }
            sink.lock().insert(me, h);
            Ok(())
        },
    );
    let final_digests = digests.lock().clone();
    RunTrace {
        timeline: to_jsonl(&tel.snapshot()),
        digests: final_digests,
        oks: report.outcomes.iter().map(|o| o.result.is_ok()).collect(),
        killed: report.killed_ranks(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ bitwise-identical telemetry timeline, identical final
    /// digests, identical outcome pattern — with or without a failure.
    #[test]
    fn same_seed_same_schedule(
        n in 2usize..6,
        iters in 1u64..5,
        seed in any::<u64>(),
        fault in (any::<bool>(), 0usize..8, 0u64..8),
    ) {
        let (with_fault, fr, fat) = fault;
        let kill = with_fault.then(|| (fr % n, fat % iters));
        let a = run_once(n, iters, seed, kill);
        let b = run_once(n, iters, seed, kill);
        prop_assert_eq!(&a.timeline, &b.timeline, "timelines diverged for seed {}", seed);
        prop_assert_eq!(&a.digests, &b.digests);
        prop_assert_eq!(&a.oks, &b.oks);
        prop_assert_eq!(&a.killed, &b.killed);
        prop_assert!(!a.timeline.is_empty(), "timeline must carry events");
    }

    /// Without faults the *answer* is schedule-independent: two different
    /// seeds may order the ranks differently but must agree on every
    /// rank's final digest.
    #[test]
    fn result_is_seed_independent_without_faults(
        n in 2usize..6,
        iters in 1u64..5,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = run_once(n, iters, seed_a, None);
        let b = run_once(n, iters, seed_b, None);
        prop_assert_eq!(&a.digests, &b.digests);
        prop_assert!(a.oks.iter().all(|&ok| ok));
        prop_assert!(b.oks.iter().all(|&ok| ok));
    }
}
