//! Property-based collective correctness: random rank counts, random
//! payloads, collectives must match their sequential definitions. Each case
//! launches a real universe, so case counts are kept modest.

use std::sync::Arc;
use std::sync::Mutex;

use cluster::{Cluster, ClusterConfig, TimeScale};
use proptest::prelude::*;
use simmpi::{FaultPlan, ReduceOp, Universe, UniverseConfig};

fn cluster(n: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes: n,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    };
    Cluster::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn allreduce_matches_sequential(
        n in 1usize..8,
        per_rank in proptest::collection::vec(-1e6f64..1e6, 8),
    ) {
        let vals = per_rank.clone();
        let results = Arc::new(Mutex::new(Vec::new()));
        let rc = Arc::clone(&results);
        let report = Universe::launch(
            &cluster(n),
            UniverseConfig::default(),
            Arc::new(FaultPlan::none()),
            move |ctx| {
                let w = ctx.world();
                let mine = vals[ctx.rank() % vals.len()];
                let sum = w.allreduce_scalar(mine, ReduceOp::Sum)?;
                let min = w.allreduce_scalar(mine, ReduceOp::Min)?;
                let max = w.allreduce_scalar(mine, ReduceOp::Max)?;
                rc.lock().unwrap().push((sum, min, max));
                Ok(())
            },
        );
        prop_assert!(report.all_ok());
        let contributions: Vec<f64> = (0..n).map(|r| per_rank[r % per_rank.len()]).collect();
        let expect_sum: f64 = contributions.iter().sum();
        let expect_min = contributions.iter().cloned().fold(f64::MAX, f64::min);
        let expect_max = contributions.iter().cloned().fold(f64::MIN, f64::max);
        let got = results.lock().unwrap();
        prop_assert_eq!(got.len(), n);
        for &(sum, min, max) in got.iter() {
            // Binomial-tree summation order is fixed, so every rank gets the
            // *identical* float; compare to sequential within tolerance.
            prop_assert!((sum - expect_sum).abs() <= 1e-6 * expect_sum.abs().max(1.0));
            prop_assert_eq!(min, expect_min);
            prop_assert_eq!(max, expect_max);
        }
        // All ranks agree bitwise.
        let first = got[0];
        for &x in got.iter() {
            prop_assert_eq!(x.0.to_bits(), first.0.to_bits());
        }
    }

    #[test]
    fn gather_and_bcast_roundtrip(
        n in 1usize..8,
        root_seed in 0usize..8,
        payload in proptest::collection::vec(any::<u32>(), 1..16),
    ) {
        let root = root_seed % n;
        let payload2 = payload.clone();
        let report = Universe::launch(
            &cluster(n),
            UniverseConfig::default(),
            Arc::new(FaultPlan::none()),
            move |ctx| {
                let w = ctx.world();
                // Each rank contributes payload rotated by its rank.
                let mine: Vec<u32> = payload2
                    .iter()
                    .map(|&x| x.wrapping_add(ctx.rank() as u32))
                    .collect();
                let gathered = w.gather(root, &mine)?;
                if w.rank() == root {
                    let g = gathered.expect("root receives");
                    for r in 0..n {
                        for (k, &x) in payload2.iter().enumerate() {
                            assert_eq!(g[r * payload2.len() + k], x.wrapping_add(r as u32));
                        }
                    }
                }
                // Broadcast something derived back out.
                let mut buf = vec![0u32; payload2.len()];
                if w.rank() == root {
                    buf.copy_from_slice(&mine);
                }
                w.bcast(root, &mut buf)?;
                let expect: Vec<u32> = payload2
                    .iter()
                    .map(|&x| x.wrapping_add(root as u32))
                    .collect();
                assert_eq!(buf, expect);
                Ok(())
            },
        );
        prop_assert!(report.all_ok());
    }

    #[test]
    fn allgather_concatenates_in_rank_order(
        n in 1usize..7,
        base in any::<u16>(),
    ) {
        let report = Universe::launch(
            &cluster(n),
            UniverseConfig::default(),
            Arc::new(FaultPlan::none()),
            move |ctx| {
                let w = ctx.world();
                let mine = [base as u64 + ctx.rank() as u64];
                let all = w.allgather(&mine)?;
                let expect: Vec<u64> = (0..n).map(|r| base as u64 + r as u64).collect();
                assert_eq!(all, expect);
                Ok(())
            },
        );
        prop_assert!(report.all_ok());
    }

    #[test]
    fn point_to_point_payload_sizes(
        size_bytes in 0usize..100_000,
    ) {
        // Arbitrary payload sizes, including zero, through send/recv.
        let report = Universe::launch(
            &cluster(2),
            UniverseConfig::default(),
            Arc::new(FaultPlan::none()),
            move |ctx| {
                let w = ctx.world();
                if ctx.rank() == 0 {
                    let data = vec![0xA5u8; size_bytes];
                    w.send(1, 5, &data)?;
                } else {
                    let (got, from) = w.recv_vec::<u8>(Some(0), 5)?;
                    assert_eq!(from, 0);
                    assert_eq!(got.len(), size_bytes);
                    assert!(got.iter().all(|&b| b == 0xA5));
                }
                Ok(())
            },
        );
        prop_assert!(report.all_ok());
    }
}
