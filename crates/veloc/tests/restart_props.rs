//! Equivalence properties for the parallel chain-walk restart.
//!
//! Restart's payload verification fans out across the pack pool; the
//! contract is that worker count is *invisible*: for any delta chain the
//! parallel restart (workers = 4) and the sequential baseline (workers = 1)
//! restore bitwise-identical state, report identical accounting, and — when
//! a frame in the chain is corrupted on both storage tiers — fail with the
//! identical typed error. Regions here are large enough that the chain's
//! payload volume clears the parallel threshold, so the 4-worker runs
//! genuinely exercise the pool.

use std::sync::Arc;

use cluster::{Cluster, ClusterConfig, TimeScale};
use proptest::prelude::*;
use veloc::{Client, Config, Mode, Protected, VecRegion, VelocError};

const CHAIN_REGIONS: usize = 3;
/// Big enough that a full frame alone (3 × 32 KiB) crosses the 64 KiB
/// parallel-restart threshold.
const REGION_BYTES: usize = 32 * 1024;
const CHAIN_NAME: &str = "restart-prop";

/// Run `steps` checkpoints over `CHAIN_REGIONS` regions, dirtying the
/// subset given by each step's bool mask. Returns the client, the live
/// regions, and the model state captured after every version (index v-1).
#[allow(clippy::type_complexity)]
fn run_chain(c: &Cluster, steps: &[Vec<bool>]) -> (Client, Vec<VecRegion<u8>>, Vec<Vec<Vec<u8>>>) {
    let client = Client::init(
        c.clone(),
        0,
        Config {
            mode: Mode::Single,
            async_flush: false,
        },
    );
    let regions: Vec<VecRegion<u8>> = (0..CHAIN_REGIONS)
        .map(|i| VecRegion::new(vec![i as u8; REGION_BYTES]))
        .collect();
    for (i, r) in regions.iter().enumerate() {
        client.protect(i as u32, Arc::new(r.clone()));
    }
    let mut model = Vec::new();
    for (step, dirty) in steps.iter().enumerate() {
        for (r, d) in regions.iter().zip(dirty) {
            if *d {
                let mut g = r.lock();
                if let Some(b) = g.first_mut() {
                    *b = b.wrapping_add(step as u8 + 1);
                }
            }
        }
        client
            .checkpoint(CHAIN_NAME, (step + 1) as u64)
            .expect("sync checkpoint");
        // `snapshot()` (not `lock()`): capturing the model must not stamp
        // the regions dirty, or every frame would degenerate to full.
        model.push(regions.iter().map(|r| r.snapshot().to_vec()).collect());
    }
    (client, regions, model)
}

fn chain_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: 1,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    })
}

fn garble(regions: &[VecRegion<u8>]) {
    for r in regions {
        r.lock().fill(0xEE);
    }
}

fn state(regions: &[VecRegion<u8>]) -> Vec<Vec<u8>> {
    regions.iter().map(|r| r.lock().clone()).collect()
}

fn steps_strategy() -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), CHAIN_REGIONS),
        2usize..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Parallel decode is bitwise-equal to sequential: same restored
    /// bytes, same model-state agreement, same per-restart accounting.
    #[test]
    fn parallel_restart_equals_sequential(steps in steps_strategy(), pick in 0.0f64..1.0) {
        let c = chain_cluster();
        let (client, regions, model) = run_chain(&c, &steps);
        let v = 1 + ((steps.len() as f64 - 1.0) * pick) as usize; // 1..=n

        garble(&regions);
        let par = client
            .restart_with_workers(CHAIN_NAME, v as u64, 4)
            .expect("parallel restart");
        let par_state = state(&regions);

        garble(&regions);
        let seq = client
            .restart_with_workers(CHAIN_NAME, v as u64, 1)
            .expect("sequential restart");
        let seq_state = state(&regions);

        prop_assert_eq!(&par_state, &seq_state, "worker count changed restored bytes");
        prop_assert_eq!(&par_state, &model[v - 1], "version {} state mismatch", v);
        prop_assert_eq!(par.regions, seq.regions);
        prop_assert_eq!(par.bytes_restored, seq.bytes_restored);
        prop_assert_eq!(par.frames_walked, seq.frames_walked);
        prop_assert_eq!(par.regions, CHAIN_REGIONS);
        prop_assert_eq!(par.bytes_restored, (CHAIN_REGIONS * REGION_BYTES) as u64);
    }
}

#[cfg(not(feature = "chaos-mutants"))]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Corrupting one mid-chain frame on *both* tiers degrades the
    /// parallel and sequential restarts identically: the same versions
    /// fail with the same typed error, and the versions whose chain avoids
    /// the victim still restore the same bytes under either worker count.
    #[test]
    fn corrupted_mid_chain_frame_degrades_identically(
        steps in steps_strategy(),
        pick in 0.0f64..1.0,
        pos_frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        let c = chain_cluster();
        let (client, regions, model) = run_chain(&c, &steps);
        let n = steps.len() as u64;
        let victim = 1 + ((n as f64 - 1.0) * pick) as u64; // 1..=n
        let path = format!("{CHAIN_NAME}/v{victim}/r0");
        let (blob, _) = c.scratch().read(0, &path).expect("victim exists");
        // One-byte XOR somewhere in the frame: depending on position this
        // breaks the meta (parse fails) or a payload (verify fails) — both
        // must surface as the same Corrupt error either way.
        let pos = ((blob.len() as f64) * pos_frac) as usize % blob.len();
        let mut raw = blob.to_vec();
        raw[pos] ^= mask;
        let corrupted = bytes::Bytes::from(raw);
        c.scratch().write(0, &path, corrupted.clone());
        c.pfs().write(&path, corrupted);

        for v in 1..=n {
            garble(&regions);
            let par = client.restart_with_workers(CHAIN_NAME, v, 4);
            let par_state = state(&regions);
            garble(&regions);
            let seq = client.restart_with_workers(CHAIN_NAME, v, 1);
            let seq_state = state(&regions);

            // Compare the semantic outcome (per-stage timings legitimately
            // differ between runs): same success/error variant, and on
            // success the same restore accounting.
            let semantic = |r: &Result<veloc::RestartReport, VelocError>| match r {
                Ok(rep) => Ok((rep.regions, rep.bytes_restored, rep.frames_walked)),
                Err(e) => Err(e.clone()),
            };
            prop_assert_eq!(
                semantic(&par),
                semantic(&seq),
                "version {} verdict diverged by worker count",
                v
            );
            prop_assert_eq!(&par_state, &seq_state, "version {} bytes diverged", v);
            match par {
                Ok(report) => {
                    // Chain avoided the victim: full restore, exact state.
                    prop_assert_eq!(report.regions, CHAIN_REGIONS);
                    prop_assert_eq!(&par_state, &model[v as usize - 1]);
                }
                Err(VelocError::Corrupt { .. }) => {
                    // Chain hit the victim: typed failure, and the garbled
                    // placeholder state proves no partial apply happened.
                    prop_assert!(par_state
                        .iter()
                        .all(|r| r.iter().all(|&b| b == 0xEE)));
                }
                Err(other) => {
                    prop_assert!(false, "unexpected error variant for v{}: {:?}", v, other);
                }
            }
        }
    }
}
