//! Property tests for the checkpoint blob format (`veloc::serial`).
//!
//! The format is the last line of defense between storage-tier corruption
//! and silent wrong answers, so the properties are stated adversarially:
//! every well-formed blob round-trips exactly, and every corrupted or
//! truncated blob either fails *cleanly* (`None`) or is byte-identical to
//! the original — `unpack` never panics and never returns wrong data.

use bytes::Bytes;
use proptest::prelude::*;
use veloc::serial::{crc32, pack, unpack, verify};

/// Region-list strategy: up to 5 regions with arbitrary ids and payloads
/// of 0..64 arbitrary bytes (empty payloads and duplicate ids included —
/// the format allows both, matching order and multiplicity on restore).
fn regions_strategy() -> impl Strategy<Value = Vec<(u32, Vec<u8>)>> {
    proptest::collection::vec(
        (
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0usize..64),
        ),
        0usize..5,
    )
}

fn to_bytes(regions: &[(u32, Vec<u8>)]) -> Vec<(u32, Bytes)> {
    regions
        .iter()
        .map(|(id, p)| (*id, Bytes::from(p.clone())))
        .collect()
}

proptest! {
    #[test]
    fn roundtrip_is_exact(regions in regions_strategy()) {
        let regions = to_bytes(&regions);
        let blob = pack(&regions);
        prop_assert!(verify(&blob));
        prop_assert_eq!(unpack(&blob).expect("intact blob unpacks"), regions);
    }

    #[test]
    fn truncation_fails_cleanly(regions in regions_strategy(), frac in 0.0f64..1.0) {
        // Any strict prefix must be rejected — structurally, independent of
        // the checksum (truncation is what a torn flush leaves behind).
        let blob = pack(&to_bytes(&regions));
        let cut = ((blob.len() as f64) * frac) as usize; // in 0..len
        let truncated = blob.slice(0..cut.min(blob.len() - 1));
        prop_assert!(unpack(&truncated).is_none());
        prop_assert!(!verify(&truncated));
    }

    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0usize..128)) {
        // Fully adversarial input: unpack must return, not panic. When it
        // does accept, re-packing must reproduce the input bit-for-bit —
        // acceptance implies the blob really was well-formed.
        let blob = Bytes::from(raw);
        if let Some(regions) = unpack(&blob) {
            prop_assert_eq!(pack(&regions), blob);
        }
    }
}

#[cfg(not(feature = "chaos-mutants"))]
proptest! {
    #[test]
    fn single_byte_corruption_is_detected(
        regions in regions_strategy(),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        // CRC32 detects every burst error of <= 32 bits, so a one-byte XOR
        // anywhere in the blob (magic, checksum field, or body) must be
        // caught — this is exactly the silent-garbage-restore bug class the
        // frame exists to close, and the one the `chaos-mutants` feature
        // re-seeds for the campaign self-test.
        let blob = pack(&to_bytes(&regions));
        let pos = ((blob.len() as f64) * pos_frac) as usize % blob.len();
        let mut raw = blob.to_vec();
        raw[pos] ^= mask;
        prop_assert!(unpack(&Bytes::from(raw)).is_none(), "flip at {pos} undetected");
    }

    #[test]
    fn crc_detects_any_single_byte_flip(
        data in proptest::collection::vec(any::<u8>(), 1usize..256),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        let pos = ((data.len() as f64) * pos_frac) as usize % data.len();
        let mut flipped = data.clone();
        flipped[pos] ^= mask;
        prop_assert_ne!(crc32(&data), crc32(&flipped));
    }
}
