//! Property tests for the checkpoint blob format (`veloc::serial`).
//!
//! The format is the last line of defense between storage-tier corruption
//! and silent wrong answers, so the properties are stated adversarially:
//! every well-formed blob round-trips exactly, and every corrupted or
//! truncated blob either fails *cleanly* (`None`) or is byte-identical to
//! the original — `unpack` never panics and never returns wrong data.

use std::sync::Arc;

use bytes::Bytes;
use cluster::{Cluster, ClusterConfig, TimeScale};
use proptest::prelude::*;
use veloc::serial::{
    crc32, crc32_bitwise, pack, pack_frame, unpack, unpack_any, verify, FrameBuilder, PackedRegion,
};
use veloc::{Client, Config, Mode, Protected, VecRegion};

/// Region-list strategy: up to 5 regions with arbitrary ids and payloads
/// of 0..64 arbitrary bytes (empty payloads and duplicate ids included —
/// the format allows both, matching order and multiplicity on restore).
fn regions_strategy() -> impl Strategy<Value = Vec<(u32, Vec<u8>)>> {
    proptest::collection::vec(
        (
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0usize..64),
        ),
        0usize..5,
    )
}

fn to_bytes(regions: &[(u32, Vec<u8>)]) -> Vec<(u32, Bytes)> {
    regions
        .iter()
        .map(|(id, p)| (*id, Bytes::from(p.clone())))
        .collect()
}

proptest! {
    #[test]
    fn roundtrip_is_exact(regions in regions_strategy()) {
        let regions = to_bytes(&regions);
        let blob = pack(&regions);
        prop_assert!(verify(&blob));
        prop_assert_eq!(unpack(&blob).expect("intact blob unpacks"), regions);
    }

    #[test]
    fn truncation_fails_cleanly(regions in regions_strategy(), frac in 0.0f64..1.0) {
        // Any strict prefix must be rejected — structurally, independent of
        // the checksum (truncation is what a torn flush leaves behind).
        let blob = pack(&to_bytes(&regions));
        let cut = ((blob.len() as f64) * frac) as usize; // in 0..len
        let truncated = blob.slice(0..cut.min(blob.len() - 1));
        prop_assert!(unpack(&truncated).is_none());
        prop_assert!(!verify(&truncated));
    }

    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0usize..128)) {
        // Fully adversarial input: unpack must return, not panic. When it
        // does accept, re-packing must reproduce the input bit-for-bit —
        // acceptance implies the blob really was well-formed.
        let blob = Bytes::from(raw);
        if let Some(regions) = unpack(&blob) {
            prop_assert_eq!(pack(&regions), blob);
        }
    }
}

#[cfg(not(feature = "chaos-mutants"))]
proptest! {
    #[test]
    fn single_byte_corruption_is_detected(
        regions in regions_strategy(),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        // CRC32 detects every burst error of <= 32 bits, so a one-byte XOR
        // anywhere in the blob (magic, checksum field, or body) must be
        // caught — this is exactly the silent-garbage-restore bug class the
        // frame exists to close, and the one the `chaos-mutants` feature
        // re-seeds for the campaign self-test.
        let blob = pack(&to_bytes(&regions));
        let pos = ((blob.len() as f64) * pos_frac) as usize % blob.len();
        let mut raw = blob.to_vec();
        raw[pos] ^= mask;
        prop_assert!(unpack(&Bytes::from(raw)).is_none(), "flip at {pos} undetected");
    }

    #[test]
    fn crc_detects_any_single_byte_flip(
        data in proptest::collection::vec(any::<u8>(), 1usize..256),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        let pos = ((data.len() as f64) * pos_frac) as usize % data.len();
        let mut flipped = data.clone();
        flipped[pos] ^= mask;
        prop_assert_ne!(crc32(&data), crc32(&flipped));
    }
}

// ---------------------------------------------------------------------------
// CRC slice-by-16 vs the bitwise oracle. The production `crc32` processes
// 16 bytes per iteration through precomputed tables; `crc32_bitwise` is the
// direct IEEE 802.3 recurrence kept solely as this oracle. They must agree
// on every input — in particular across the chunk remainder boundaries
// (len % 16) where table-folding bugs hide.
// ---------------------------------------------------------------------------

/// Deterministic splitmix-style fill: `len` and `seed` shrink cheaply while
/// the bytes stay arbitrary-looking.
fn fill(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

proptest! {
    #[test]
    fn crc_slice16_equals_bitwise(len in 0usize..70_000, seed in any::<u64>()) {
        let data = fill(len, seed);
        prop_assert_eq!(crc32(&data), crc32_bitwise(&data));
    }
}

#[test]
fn crc_slice16_equals_bitwise_on_empty_and_large() {
    // The explicit edge cases: the empty buffer (no chunks, no remainder)
    // and a buffer past 64 KiB (the parallel-path threshold size class).
    assert_eq!(crc32(&[]), crc32_bitwise(&[]));
    let big = fill(96 * 1024, 0x5EED);
    assert_eq!(crc32(&big), crc32_bitwise(&big));
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

// ---------------------------------------------------------------------------
// VCF2 (incremental frames): structural round-trips, per-sub-frame
// corruption detection, and chain-walk degradation at the client level.
// ---------------------------------------------------------------------------

/// Changed-region strategy for VCF2 frames.
fn changed_strategy() -> impl Strategy<Value = Vec<(u32, Vec<u8>)>> {
    proptest::collection::vec(
        (
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0usize..64),
        ),
        0usize..4,
    )
}

/// Unchanged-id strategy for VCF2 frames.
fn unchanged_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), 0usize..4)
}

/// A well-formed frame shape: a base version must be present whenever
/// anything is marked unchanged (a full frame claiming unchanged regions
/// is structurally invalid).
fn shape_base(base_raw: u64, full: bool, unchanged: &[u32]) -> Option<u64> {
    if full && unchanged.is_empty() {
        None
    } else {
        Some(base_raw)
    }
}

fn pack_v2(base: Option<u64>, changed: &[(u32, Vec<u8>)], unchanged: &[u32]) -> Bytes {
    let packed: Vec<PackedRegion> = changed
        .iter()
        .map(|(id, p)| PackedRegion::new(*id, Bytes::from(p.clone())))
        .collect();
    pack_frame(base, &packed, unchanged)
}

proptest! {
    #[test]
    fn vcf2_roundtrip_is_exact(
        base_raw in 0u64..1_000_000,
        changed in changed_strategy(),
        unchanged in unchanged_strategy(),
        full in any::<bool>(),
    ) {
        let base = shape_base(base_raw, full, &unchanged);
        let blob = pack_v2(base, &changed, &unchanged);
        let frame = unpack_any(&blob).expect("intact frame unpacks");
        prop_assert_eq!(frame.base_version, base);
        prop_assert_eq!(frame.unchanged, unchanged);
        let got: Vec<(u32, Vec<u8>)> = frame
            .changed
            .into_iter()
            .map(|(id, p)| (id, p.to_vec()))
            .collect();
        prop_assert_eq!(got, changed);
    }

    /// The zero-copy pack (slot-filling [`FrameBuilder`]) and the copying
    /// [`pack_frame`] path must emit byte-identical frames for the same
    /// inputs — the drift fallback inside the client silently switches
    /// between them, so any divergence would make checkpoint bytes depend
    /// on a race.
    #[test]
    fn frame_builder_matches_pack_frame(
        base_raw in 0u64..1_000_000,
        changed in changed_strategy(),
        unchanged in unchanged_strategy(),
        full in any::<bool>(),
    ) {
        let base = shape_base(base_raw, full, &unchanged);
        let plan: Vec<(u32, usize)> = changed.iter().map(|(id, p)| (*id, p.len())).collect();
        let mut b = FrameBuilder::new(base, &plan, &unchanged);
        for (i, (_, p)) in changed.iter().enumerate() {
            b.payload_mut(i).copy_from_slice(p);
            let crc = crc32(b.payload(i));
            b.set_crc(i, crc);
        }
        prop_assert_eq!(b.seal(), pack_v2(base, &changed, &unchanged));
    }

    #[test]
    fn vcf2_truncation_fails_cleanly(
        base_raw in 0u64..1_000_000,
        changed in changed_strategy(),
        unchanged in unchanged_strategy(),
        full in any::<bool>(),
        frac in 0.0f64..1.0,
    ) {
        let base = shape_base(base_raw, full, &unchanged);
        let blob = pack_v2(base, &changed, &unchanged);
        let cut = ((blob.len() as f64) * frac) as usize;
        let truncated = blob.slice(0..cut.min(blob.len() - 1));
        prop_assert!(unpack_any(&truncated).is_none());
    }
}

#[cfg(not(feature = "chaos-mutants"))]
proptest! {
    #[test]
    fn vcf2_single_byte_corruption_is_detected(
        base_raw in 0u64..1_000_000,
        changed in changed_strategy(),
        unchanged in unchanged_strategy(),
        full in any::<bool>(),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        let base = shape_base(base_raw, full, &unchanged);
        // Every sub-frame is covered: the magic by the sniff, the meta
        // block (base ref, counts, id tables, per-payload CRCs) by the
        // meta CRC, and each payload by its own CRC — so a one-byte XOR
        // anywhere in the blob must be rejected.
        let blob = pack_v2(base, &changed, &unchanged);
        let pos = ((blob.len() as f64) * pos_frac) as usize % blob.len();
        let mut raw = blob.to_vec();
        raw[pos] ^= mask;
        prop_assert!(
            unpack_any(&Bytes::from(raw)).is_none(),
            "flip at {} undetected", pos
        );
    }
}

// --- chain-walk degradation (client level) ---------------------------------

const CHAIN_REGIONS: usize = 3;
const CHAIN_NAME: &str = "chain-prop";

/// Run `steps` checkpoints over `CHAIN_REGIONS` regions, dirtying the
/// subset given by each step's bool mask. Returns the client, the live
/// regions, and the model state captured after every version (index v-1).
#[allow(clippy::type_complexity)]
fn run_chain(c: &Cluster, steps: &[Vec<bool>]) -> (Client, Vec<VecRegion<u8>>, Vec<Vec<Vec<u8>>>) {
    let client = Client::init(
        c.clone(),
        0,
        Config {
            mode: Mode::Single,
            async_flush: false,
        },
    );
    let regions: Vec<VecRegion<u8>> = (0..CHAIN_REGIONS)
        .map(|i| VecRegion::new(vec![i as u8; 16]))
        .collect();
    for (i, r) in regions.iter().enumerate() {
        client.protect(i as u32, Arc::new(r.clone()));
    }
    let mut model = Vec::new();
    for (step, dirty) in steps.iter().enumerate() {
        for (r, d) in regions.iter().zip(dirty) {
            if *d {
                let mut g = r.lock();
                if let Some(b) = g.first_mut() {
                    *b = b.wrapping_add(step as u8 + 1);
                }
            }
        }
        client
            .checkpoint(CHAIN_NAME, (step + 1) as u64)
            .expect("sync checkpoint");
        // `snapshot()` (not `lock()`): capturing the model must not stamp
        // the regions dirty, or every frame would degenerate to full.
        model.push(regions.iter().map(|r| r.snapshot().to_vec()).collect());
    }
    (client, regions, model)
}

fn chain_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: 1,
        ranks_per_node: 1,
        time_scale: TimeScale::instant(),
        ..ClusterConfig::default()
    })
}

/// Versions whose delta chain includes `victim` (including itself).
fn depends_on(c: &Cluster, versions: u64, victim: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for v in 1..=versions {
        let mut cur = v;
        loop {
            if cur == victim {
                out.push(v);
                break;
            }
            let path = format!("{CHAIN_NAME}/v{cur}/r0");
            let Some((blob, _)) = c.scratch().read(0, &path) else {
                break;
            };
            match unpack_any(&blob).and_then(|f| f.base_version) {
                Some(base) if base < cur => cur = base,
                _ => break,
            }
        }
    }
    out
}

fn steps_strategy() -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), CHAIN_REGIONS),
        2usize..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Delta round-trip equals full state: whatever mix of full and delta
    /// frames the dirty pattern produced, restarting from any version
    /// reproduces exactly the state the application had at that commit.
    #[test]
    fn delta_chain_restores_exact_state(steps in steps_strategy(), pick in 0.0f64..1.0) {
        let c = chain_cluster();
        let (client, regions, model) = run_chain(&c, &steps);
        let v = 1 + ((steps.len() as f64 - 1.0) * pick) as usize; // 1..=n
        for r in &regions {
            r.lock().fill(0xEE);
        }
        client.restart(CHAIN_NAME, v as u64).expect("restart");
        let got: Vec<Vec<u8>> = regions.iter().map(|r| r.lock().clone()).collect();
        prop_assert_eq!(&got, &model[v - 1], "version {} state mismatch", v);
    }
}

#[cfg(not(feature = "chaos-mutants"))]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating one version on both tiers invalidates exactly the
    /// versions whose chain passes through it; the client degrades to the
    /// newest version with an intact chain and restores its exact state.
    #[test]
    fn truncated_chain_degrades_to_newest_intact_base(
        steps in steps_strategy(),
        pick in 0.0f64..1.0,
        keep in 0usize..12,
    ) {
        let c = chain_cluster();
        let (client, regions, model) = run_chain(&c, &steps);
        let n = steps.len() as u64;
        let victim = 1 + ((n as f64 - 1.0) * pick) as u64; // 1..=n
        let broken = depends_on(&c, n, victim);
        let path = format!("{CHAIN_NAME}/v{victim}/r0");
        let (blob, _) = c.scratch().read(0, &path).expect("victim exists");
        let cut = blob.slice(0..keep.min(blob.len() - 1));
        c.scratch().write(0, &path, cut.clone());
        c.pfs().write(&path, cut);

        let expected = (1..=n).filter(|v| !broken.contains(v)).max();
        for v in 1..=n {
            prop_assert_eq!(
                client.version_intact(CHAIN_NAME, v),
                !broken.contains(&v),
                "version {} intactness", v
            );
        }
        prop_assert_eq!(client.latest_intact_version(CHAIN_NAME, u64::MAX), expected);
        if let Some(best) = expected {
            for r in &regions {
                r.lock().fill(0xEE);
            }
            client.restart(CHAIN_NAME, best).expect("degraded restart");
            let got: Vec<Vec<u8>> = regions.iter().map(|r| r.lock().clone()).collect();
            prop_assert_eq!(&got, &model[best as usize - 1]);
        }
    }
}
