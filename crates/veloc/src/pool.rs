//! Fork-join helper for the parallel checkpoint pack.
//!
//! [`map_parallel`] fans a per-item closure (snapshot + CRC in the
//! checkpoint path) out across a few short-lived workers. Spawns go through
//! the loom facade so `crates/modelcheck` can explore the join protocol, and
//! every failure mode degrades instead of erroring:
//!
//! - a refused spawn (`fail_next_spawn`, resource exhaustion) just shrinks
//!   the pool — the calling thread drains the queue regardless;
//! - a worker that dies mid-item leaves that slot `None`, and the caller
//!   recomputes it inline from its own handle.
//!
//! The pool is deliberately not persistent: checkpoint cadence is seconds,
//! thread spawn is microseconds, and short-lived workers mean there is no
//! idle-pool state for a Fenix repair to invalidate.

use std::collections::VecDeque;
use std::sync::Arc;

use loom::thread;
use parking_lot::Mutex;

/// Worker cap for [`map_parallel`], counting the calling thread.
pub const MAX_WORKERS: usize = 4;

struct Shared<T, R, F> {
    queue: Mutex<VecDeque<(usize, T)>>,
    results: Mutex<Vec<Option<R>>>,
    f: F,
}

fn drain<T, R, F>(shared: &Shared<T, R, F>)
where
    F: Fn(T) -> R,
{
    loop {
        let next = shared.queue.lock().pop_front();
        let Some((idx, item)) = next else { break };
        let r = (shared.f)(item);
        if let Some(slot) = shared.results.lock().get_mut(idx) {
            *slot = Some(r);
        }
    }
}

/// Apply `f` to every item, fanning out across up to `workers` threads
/// (including the caller). Result order matches item order; a slot is
/// `None` only if the worker computing it died, which the caller must
/// treat as "recompute inline".
pub fn map_parallel<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Option<R>>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    let fan_out = workers.clamp(1, MAX_WORKERS).min(n);
    if fan_out <= 1 {
        return items.into_iter().map(|t| Some(f(t))).collect();
    }
    let shared = Arc::new(Shared {
        queue: Mutex::new(items.into_iter().enumerate().collect::<VecDeque<_>>()),
        results: Mutex::new((0..n).map(|_| None).collect()),
        f,
    });
    let mut handles = Vec::with_capacity(fan_out - 1);
    for i in 0..fan_out - 1 {
        let shared = Arc::clone(&shared);
        // lint: sanction(spawns): bounded pack-pool workers, joined before
        // return — parallelism is invisible to callers. audited 2026-08.
        let spawned = thread::Builder::new()
            .name(format!("veloc-pack-{i}"))
            .spawn(move || drain(&shared));
        match spawned {
            Ok(h) => handles.push(h),
            // Degraded mode: the caller's own drain below still completes
            // every queued item, just with less parallelism.
            Err(_) => break,
        }
    }
    drain(&shared);
    for h in handles {
        // An Err means the worker panicked; its in-flight slot stays
        // `None` and the caller recomputes it.
        // lint: sanction(blocks): scoped join of the pack pool spawned
        // above; bounded by the workers' own drain. audited 2026-08.
        h.join().ok();
    }
    // All workers joined (even a panicking worker drops its clone while
    // unwinding), so this Arc is the last one; the empty-vec arm is
    // unreachable but panic-free, and the caller's recompute path covers
    // it like any other missing slot.
    match Arc::try_unwrap(shared).ok() {
        Some(s) => s.results.into_inner(),
        None => Vec::new(),
    }
}

/// Raw pointer to a [`Shared`] with the generics erased, made `Send` so it
/// can cross into loom-spawned workers. The full safety argument lives at
/// the spawn site in [`scoped_map`].
#[derive(Clone, Copy)]
struct SharedPtr(*const ());

// SAFETY: the pointee is a `Shared<T, R, F>` whose bounds (`T: Send`,
// `R: Send`, `F: Sync`, enforced by `scoped_map`) make it safe to use by
// shared reference from other threads, and `scoped_map` joins every worker
// before the pointee is dropped.
unsafe impl Send for SharedPtr {}

/// Monomorphic drain entry with the generics erased behind `*const ()`, so
/// the spawned closure is `'static` even when `T`, `R`, or `F` borrow the
/// caller's stack.
///
/// # Safety
/// `p` must point to a live `Shared<T, R, F>` — the same `T`/`R`/`F` this
/// function was instantiated with — and the pointee must outlive the call.
unsafe fn drain_erased<T, R, F>(p: *const ())
where
    F: Fn(T) -> R,
{
    // SAFETY: caller contract — `p` addresses a live `Shared<T, R, F>`.
    let shared = unsafe { &*p.cast::<Shared<T, R, F>>() };
    drain(shared);
}

/// Joins its workers on drop, so a panic unwinding through the caller's
/// own drain cannot free the shared state while workers still reference it.
struct JoinWorkers(Vec<thread::JoinHandle<()>>);

impl Drop for JoinWorkers {
    fn drop(&mut self) {
        for h in self.0.drain(..) {
            // An Err means the worker panicked; its in-flight slot stays
            // `None` and the caller recomputes it.
            // lint: sanction(blocks): scoped join of the pool spawned in
            // scoped_map; required for soundness (workers borrow the
            // caller's stack frame). audited 2026-08.
            h.join().ok();
        }
    }
}

/// Borrow-friendly variant of [`map_parallel`]: items, results, and the
/// closure may all borrow the caller's stack. The zero-copy pack hands
/// workers disjoint `&mut [u8]` slots inside one frame allocation, and the
/// parallel restart hands them references to decoded frames — neither can
/// meet a `'static` bound.
///
/// The loom `Builder::spawn` facade requires `'static` closures, so the
/// shared state crosses as an erased pointer; soundness rests on every
/// worker being joined before this function returns, on the normal path
/// and during unwinding alike ([`JoinWorkers`]). Degradation matches
/// `map_parallel`: a refused spawn shrinks the pool, a dead worker leaves
/// its slot `None` for the caller to recompute inline.
pub fn scoped_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let fan_out = workers.clamp(1, MAX_WORKERS).min(n);
    if fan_out <= 1 {
        return items.into_iter().map(|t| Some(f(t))).collect();
    }
    let shared = Shared {
        queue: Mutex::new(items.into_iter().enumerate().collect::<VecDeque<_>>()),
        results: Mutex::new((0..n).map(|_| None).collect()),
        f,
    };
    // SAFETY: `run` is only ever invoked (in the worker closures below)
    // with `ptr.0`, which addresses `shared` of the exact `T, R, F` this
    // instantiation erases.
    let run: unsafe fn(*const ()) = drain_erased::<T, R, F>;
    let ptr = SharedPtr(&shared as *const Shared<T, R, F> as *const ());
    let mut guard = JoinWorkers(Vec::with_capacity(fan_out - 1));
    for i in 0..fan_out - 1 {
        // SAFETY: `ptr` addresses `shared`, which outlives every worker:
        // `guard` joins all handles before `shared` drops (drop order —
        // `guard` is declared after `shared` — and the explicit drop
        // below), including when this frame unwinds. `run` is the
        // `drain_erased` instantiation for the same `T, R, F`, and the
        // `T: Send, R: Send, F: Sync` bounds make `&Shared<T, R, F>`
        // usable from the workers.
        let spawned = thread::Builder::new()
            .name(format!("veloc-pool-{i}"))
            // lint: sanction(spawns): bounded pack-pool workers, joined
            // before return — parallelism is invisible to callers. audited
            // 2026-08.
            .spawn(move || {
                // Rebind the whole wrapper: edition-2021 closures would
                // otherwise capture the raw `ptr.0` field and bypass
                // `SharedPtr`'s `Send`.
                let ptr = ptr;
                // SAFETY: see the spawn-site comment above — `ptr` stays
                // valid until `guard` joins this worker, and `run` matches
                // the erased `T, R, F`.
                unsafe { run(ptr.0) }
            });
        match spawned {
            Ok(h) => guard.0.push(h),
            // Degraded mode: the caller's own drain below still completes
            // every queued item, just with less parallelism.
            Err(_) => break,
        }
    }
    drain(&shared);
    drop(guard); // join all workers before touching the results
    shared.results.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = map_parallel((0..100u64).collect(), 4, |x| x * 2);
        assert_eq!(out.len(), 100);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 * 2));
        }
    }

    #[test]
    fn single_item_runs_inline() {
        let out = map_parallel(vec![7u32], 4, |x| x + 1);
        assert_eq!(out, vec![Some(8)]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out = map_parallel(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn spawn_failure_degrades_to_caller_thread() {
        loom::thread::fail_next_spawn();
        let out = map_parallel((0..16u64).collect(), 4, |x| x + 1);
        assert_eq!(out.len(), 16);
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, r)| *r == Some(i as u64 + 1)));
    }

    #[test]
    fn workers_clamped_to_item_count() {
        let out = map_parallel(vec![1u8, 2], 64, |x| x);
        assert_eq!(out, vec![Some(1), Some(2)]);
    }

    #[test]
    fn scoped_map_borrows_caller_stack() {
        // The whole point of scoped_map: items and closure borrow locals.
        let inputs: Vec<u64> = (0..100).collect();
        let bias = 7u64;
        let refs: Vec<&u64> = inputs.iter().collect();
        let out = scoped_map(refs, 4, |x| *x * 2 + bias);
        assert_eq!(out.len(), 100);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 * 2 + bias));
        }
    }

    #[test]
    fn scoped_map_writes_through_mut_borrows() {
        // Disjoint &mut slices into one allocation — the zero-copy pack's
        // exact shape.
        let mut buf = [0u8; 64];
        let slots: Vec<&mut [u8]> = buf.chunks_mut(16).collect();
        let out = scoped_map(slots, 4, |slot| {
            slot.fill(0xAB);
            slot.len()
        });
        assert!(out.iter().all(|r| *r == Some(16)));
        assert!(buf.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn scoped_map_spawn_failure_degrades_to_caller_thread() {
        loom::thread::fail_next_spawn();
        let out = scoped_map((0..16u64).collect(), 4, |x| x + 1);
        assert_eq!(out.len(), 16);
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, r)| *r == Some(i as u64 + 1)));
    }

    #[test]
    fn scoped_map_single_item_runs_inline() {
        let out = scoped_map(vec![7u32], 4, |x| x + 1);
        assert_eq!(out, vec![Some(8)]);
    }

    #[test]
    fn scoped_map_joins_workers_when_caller_panics() {
        // A panic on the caller's own drain must not free the shared state
        // under live workers: JoinWorkers joins during unwinding. The test
        // passes by not crashing under ASAN-like conditions; the panic
        // itself is observed normally.
        let inputs: Vec<u64> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            scoped_map(inputs.clone(), 4, |x| {
                if x == 0 {
                    // Index 0 is popped by whichever thread gets there
                    // first; when it is the caller, this unwinds scoped_map.
                    panic!("boom");
                }
                x
            })
        });
        // Either the caller hit the panic (Err) or a worker did (Ok with a
        // None slot recomputed as absent). Both must leave the process sane.
        if let Ok(out) = r {
            assert_eq!(out.len(), 64);
        }
    }
}
