//! Fork-join helper for the parallel checkpoint pack.
//!
//! [`map_parallel`] fans a per-item closure (snapshot + CRC in the
//! checkpoint path) out across a few short-lived workers. Spawns go through
//! the loom facade so `crates/modelcheck` can explore the join protocol, and
//! every failure mode degrades instead of erroring:
//!
//! - a refused spawn (`fail_next_spawn`, resource exhaustion) just shrinks
//!   the pool — the calling thread drains the queue regardless;
//! - a worker that dies mid-item leaves that slot `None`, and the caller
//!   recomputes it inline from its own handle.
//!
//! The pool is deliberately not persistent: checkpoint cadence is seconds,
//! thread spawn is microseconds, and short-lived workers mean there is no
//! idle-pool state for a Fenix repair to invalidate.

use std::collections::VecDeque;
use std::sync::Arc;

use loom::thread;
use parking_lot::Mutex;

/// Worker cap for [`map_parallel`], counting the calling thread.
pub const MAX_WORKERS: usize = 4;

struct Shared<T, R, F> {
    queue: Mutex<VecDeque<(usize, T)>>,
    results: Mutex<Vec<Option<R>>>,
    f: F,
}

fn drain<T, R, F>(shared: &Shared<T, R, F>)
where
    F: Fn(T) -> R,
{
    loop {
        let next = shared.queue.lock().pop_front();
        let Some((idx, item)) = next else { break };
        let r = (shared.f)(item);
        if let Some(slot) = shared.results.lock().get_mut(idx) {
            *slot = Some(r);
        }
    }
}

/// Apply `f` to every item, fanning out across up to `workers` threads
/// (including the caller). Result order matches item order; a slot is
/// `None` only if the worker computing it died, which the caller must
/// treat as "recompute inline".
pub fn map_parallel<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Option<R>>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    let fan_out = workers.clamp(1, MAX_WORKERS).min(n);
    if fan_out <= 1 {
        return items.into_iter().map(|t| Some(f(t))).collect();
    }
    let shared = Arc::new(Shared {
        queue: Mutex::new(items.into_iter().enumerate().collect::<VecDeque<_>>()),
        results: Mutex::new((0..n).map(|_| None).collect()),
        f,
    });
    let mut handles = Vec::with_capacity(fan_out - 1);
    for i in 0..fan_out - 1 {
        let shared = Arc::clone(&shared);
        // lint: sanction(spawns): bounded pack-pool workers, joined before
        // return — parallelism is invisible to callers. audited 2026-08.
        let spawned = thread::Builder::new()
            .name(format!("veloc-pack-{i}"))
            .spawn(move || drain(&shared));
        match spawned {
            Ok(h) => handles.push(h),
            // Degraded mode: the caller's own drain below still completes
            // every queued item, just with less parallelism.
            Err(_) => break,
        }
    }
    drain(&shared);
    for h in handles {
        // An Err means the worker panicked; its in-flight slot stays
        // `None` and the caller recomputes it.
        // lint: sanction(blocks): scoped join of the pack pool spawned
        // above; bounded by the workers' own drain. audited 2026-08.
        h.join().ok();
    }
    // All workers joined (even a panicking worker drops its clone while
    // unwinding), so this Arc is the last one; the empty-vec arm is
    // unreachable but panic-free, and the caller's recompute path covers
    // it like any other missing slot.
    match Arc::try_unwrap(shared).ok() {
        Some(s) => s.results.into_inner(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = map_parallel((0..100u64).collect(), 4, |x| x * 2);
        assert_eq!(out.len(), 100);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 * 2));
        }
    }

    #[test]
    fn single_item_runs_inline() {
        let out = map_parallel(vec![7u32], 4, |x| x + 1);
        assert_eq!(out, vec![Some(8)]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out = map_parallel(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn spawn_failure_degrades_to_caller_thread() {
        loom::thread::fail_next_spawn();
        let out = map_parallel((0..16u64).collect(), 4, |x| x + 1);
        assert_eq!(out.len(), 16);
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, r)| *r == Some(i as u64 + 1)));
    }

    #[test]
    fn workers_clamped_to_item_count() {
        let out = map_parallel(vec![1u8, 2], 64, |x| x);
        assert_eq!(out, vec![Some(1), Some(2)]);
    }
}
