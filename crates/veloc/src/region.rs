//! Protected memory regions.
//!
//! VeloC's `VELOC_Mem_protect` registers raw memory with the runtime. The
//! Rust equivalent is a trait object: anything that can serialize itself and
//! restore from bytes can be protected. Kokkos Resilience adapts its views;
//! plain applications can use [`VecRegion`].

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simmpi::pod::{self, Pod};

/// A registered checkpoint region.
pub trait Protected: Send + Sync {
    /// Serialize the current contents.
    fn snapshot(&self) -> Bytes;
    /// Overwrite the contents from a serialized snapshot.
    fn restore(&self, data: &[u8]);
    /// Size in bytes of a snapshot.
    fn byte_len(&self) -> usize;
}

/// A shared, lockable vector usable directly as a protected region —
/// the no-Kokkos path (the paper's Fenix+VeloC-without-Kokkos-Resilience
/// configuration).
pub struct VecRegion<T: Pod> {
    data: Arc<Mutex<Vec<T>>>,
}

impl<T: Pod> Clone for VecRegion<T> {
    fn clone(&self) -> Self {
        VecRegion {
            data: Arc::clone(&self.data),
        }
    }
}

impl<T: Pod> VecRegion<T> {
    pub fn new(data: Vec<T>) -> Self {
        VecRegion {
            data: Arc::new(Mutex::new(data)),
        }
    }

    /// Lock for access.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, Vec<T>> {
        self.data.lock()
    }
}

impl<T: Pod> Protected for VecRegion<T> {
    fn snapshot(&self) -> Bytes {
        pod::to_bytes(&self.data.lock())
    }

    fn restore(&self, data: &[u8]) {
        let mut guard = self.data.lock();
        pod::copy_from_bytes(&mut guard, data);
    }

    fn byte_len(&self) -> usize {
        std::mem::size_of::<T>() * self.data.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_region_roundtrip() {
        let r = VecRegion::new(vec![1.0f64, 2.0, 3.0]);
        let snap = r.snapshot();
        r.lock().iter_mut().for_each(|x| *x = 0.0);
        r.restore(&snap);
        assert_eq!(*r.lock(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn byte_len_matches() {
        let r = VecRegion::new(vec![0u32; 10]);
        assert_eq!(r.byte_len(), 40);
        assert_eq!(r.snapshot().len(), 40);
    }

    #[test]
    fn clone_shares_data() {
        let r = VecRegion::new(vec![1u8]);
        let c = r.clone();
        c.lock()[0] = 9;
        assert_eq!(r.lock()[0], 9);
    }
}
