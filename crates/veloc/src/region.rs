//! Protected memory regions.
//!
//! VeloC's `VELOC_Mem_protect` registers raw memory with the runtime. The
//! Rust equivalent is a trait object: anything that can serialize itself and
//! restore from bytes can be protected. Kokkos Resilience adapts its views;
//! plain applications can use [`VecRegion`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simmpi::pod::{self, Pod};

/// Globally-unique dirty-tracking stamps for [`VecRegion`]s. The top bit is
/// set on every stamp so a `VecRegion` stamp can never equal a stamp from
/// `kokkos`'s counter (which keeps the top bit clear) — the two crates share
/// no code, but their stamps meet in [`crate::Client`]'s delta bookkeeping.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

// Allocation-order only; stamps are compared for equality, never used to
// publish data (region contents synchronize through the `Mutex`).
fn fresh_gen() -> u64 {
    (1 << 63) | NEXT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// A registered checkpoint region.
pub trait Protected: Send + Sync {
    /// Serialize the current contents.
    fn snapshot(&self) -> Bytes;
    /// Overwrite the contents from a serialized snapshot.
    fn restore(&self, data: &[u8]);
    /// Size in bytes of a snapshot.
    fn byte_len(&self) -> usize;
    /// Dirty-tracking stamp, if the region supports one. Two `Some` stamps
    /// comparing equal across checkpoints means the region was not written
    /// in between; `None` means "assume dirty every checkpoint" — the safe
    /// default for regions without write-path instrumentation.
    fn generation(&self) -> Option<u64> {
        None
    }

    /// Serialize the current contents directly into `out` — the zero-copy
    /// pack path, where `out` is this region's payload slot inside the
    /// frame allocation. Returns `false` (leaving `out` unspecified) when
    /// the region's current byte length differs from `out.len()`, i.e. the
    /// region was resized between layout planning and serialization; the
    /// caller must then abandon the planned frame and fall back to the
    /// copying path. The default goes through [`Protected::snapshot`], so
    /// implementors only override when they can write without the
    /// intermediate allocation.
    fn snapshot_into(&self, out: &mut [u8]) -> bool {
        let snap = self.snapshot();
        if snap.len() != out.len() {
            return false;
        }
        out.copy_from_slice(&snap);
        true
    }
}

/// A shared, lockable vector usable directly as a protected region —
/// the no-Kokkos path (the paper's Fenix+VeloC-without-Kokkos-Resilience
/// configuration).
pub struct VecRegion<T: Pod> {
    data: Arc<Mutex<Vec<T>>>,
    generation: Arc<AtomicU64>,
}

impl<T: Pod> Clone for VecRegion<T> {
    fn clone(&self) -> Self {
        VecRegion {
            data: Arc::clone(&self.data),
            generation: Arc::clone(&self.generation),
        }
    }
}

impl<T: Pod> VecRegion<T> {
    pub fn new(data: Vec<T>) -> Self {
        VecRegion {
            data: Arc::new(Mutex::new(data)),
            generation: Arc::new(AtomicU64::new(fresh_gen())),
        }
    }

    /// Lock for access. Conservatively re-stamps the generation — the
    /// guard is mutable, so the caller may write (stamping *before* the
    /// lock means a racing checkpoint can only over-report dirtiness,
    /// never miss a write).
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, Vec<T>> {
        self.generation.store(fresh_gen(), Ordering::Relaxed);
        self.data.lock()
    }
}

impl<T: Pod> Protected for VecRegion<T> {
    fn snapshot(&self) -> Bytes {
        pod::to_bytes(&self.data.lock())
    }

    fn restore(&self, data: &[u8]) {
        self.generation.store(fresh_gen(), Ordering::Relaxed);
        let mut guard = self.data.lock();
        pod::copy_from_bytes(&mut guard, data);
    }

    fn byte_len(&self) -> usize {
        std::mem::size_of::<T>() * self.data.lock().len()
    }

    fn generation(&self) -> Option<u64> {
        Some(self.generation.load(Ordering::Relaxed))
    }

    fn snapshot_into(&self, out: &mut [u8]) -> bool {
        // One copy, straight from the locked vector into the frame slot —
        // no intermediate `Bytes`.
        let guard = self.data.lock();
        let src = pod::as_bytes(&guard);
        if src.len() != out.len() {
            return false;
        }
        out.copy_from_slice(src);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_region_roundtrip() {
        let r = VecRegion::new(vec![1.0f64, 2.0, 3.0]);
        let snap = r.snapshot();
        r.lock().iter_mut().for_each(|x| *x = 0.0);
        r.restore(&snap);
        assert_eq!(*r.lock(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn byte_len_matches() {
        let r = VecRegion::new(vec![0u32; 10]);
        assert_eq!(r.byte_len(), 40);
        assert_eq!(r.snapshot().len(), 40);
    }

    #[test]
    fn clone_shares_data() {
        let r = VecRegion::new(vec![1u8]);
        let c = r.clone();
        c.lock()[0] = 9;
        assert_eq!(r.lock()[0], 9);
    }

    #[test]
    fn generation_moves_on_lock_and_restore_not_snapshot() {
        let r = VecRegion::new(vec![1u8, 2, 3]);
        let g0 = r.generation().expect("VecRegion always stamps");
        assert_ne!(g0 & (1 << 63), 0, "VecRegion stamps carry the top bit");
        let snap = r.snapshot();
        assert_eq!(r.byte_len(), 3);
        assert_eq!(r.generation(), Some(g0), "reads must not dirty the region");
        let _ = r.lock();
        let g1 = r.generation().expect("stamped");
        assert_ne!(g1, g0, "lock() must re-stamp (guard may write)");
        r.restore(&snap);
        assert_ne!(r.generation(), Some(g1), "restore must re-stamp");
    }

    #[test]
    fn snapshot_into_fills_exact_slot_and_rejects_drift() {
        let r = VecRegion::new(vec![1u32, 2, 3]);
        let mut slot = vec![0u8; 12];
        assert!(r.snapshot_into(&mut slot));
        assert_eq!(Bytes::from(slot), r.snapshot());
        // A slot sized for the pre-resize layout must be refused.
        let mut stale = vec![0u8; 8];
        assert!(!r.snapshot_into(&mut stale));
        let mut oversized = vec![0u8; 16];
        assert!(!r.snapshot_into(&mut oversized));
    }

    #[test]
    fn clone_shares_generation() {
        let r = VecRegion::new(vec![1u8]);
        let c = r.clone();
        let _ = c.lock();
        assert_eq!(r.generation(), c.generation());
    }
}
