//! Checkpoint blob format.
//!
//! One checkpoint = all protected regions of one rank, packed into a single
//! integrity-framed blob:
//!
//! ```text
//! [4  bytes magic "VCF1"]
//! [u32 crc32(body)]            // IEEE 802.3 polynomial, over `body`
//! body:
//!   [u32 region_count]
//!   repeat region_count times:
//!     [u32 region_id][u64 payload_len][payload bytes]
//! ```
//!
//! Restores match regions by id, so a restart can tolerate registration in
//! a different order (Kokkos Resilience re-registers views after a context
//! reset).
//!
//! The CRC frame exists because the structural checks alone cannot catch a
//! flipped byte *inside* a region payload — without it, a corrupted blob
//! would silently restore garbage application state. [`unpack`] rejects any
//! blob whose checksum does not match, turning silent corruption into the
//! typed [`crate::VelocError::Corrupt`] the restart path degrades on.
//!
//! The `chaos-mutants` feature re-enables the garbage-restore bug by
//! skipping the checksum comparison (structure is still parsed). It exists
//! only so the chaos campaign can prove it catches exactly this class of
//! bug (`crates/chaos/tests/mutant.rs`); never enable it in normal builds.

use bytes::{BufMut, Bytes, BytesMut};

/// Leading magic of every checkpoint blob (format version 1).
pub const MAGIC: [u8; 4] = *b"VCF1";

/// CRC32 (IEEE 802.3, reflected) of `data`.
///
/// Bitwise rather than table-driven: checkpoint blobs here are small and
/// the bit loop keeps the restart path free of any indexing a corrupted
/// length could turn into a panic.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 == 1 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
        }
    }
    crc ^ 0xFFFF_FFFF
}

/// Pack `(id, payload)` pairs into one checkpoint blob.
pub fn pack(regions: &[(u32, Bytes)]) -> Bytes {
    let body_len: usize = 4 + regions.iter().map(|(_, b)| 12 + b.len()).sum::<usize>();
    let mut body = BytesMut::with_capacity(body_len);
    body.put_u32_le(regions.len() as u32);
    for (id, payload) in regions {
        body.put_u32_le(*id);
        body.put_u64_le(payload.len() as u64);
        body.put_slice(payload);
    }
    let body = body.freeze();
    let mut buf = BytesMut::with_capacity(8 + body.len());
    buf.put_slice(&MAGIC);
    buf.put_u32_le(crc32(&body));
    buf.put_slice(&body);
    buf.freeze()
}

/// Unpack a checkpoint blob into `(id, payload)` pairs.
///
/// Returns `None` on a malformed blob — wrong magic, checksum mismatch,
/// truncation, bad counts — a restart from a corrupt checkpoint must fail
/// cleanly, not panic, and must never silently return wrong data.
pub fn unpack(blob: &Bytes) -> Option<Vec<(u32, Bytes)>> {
    if blob.len() < 8 || blob[..4] != MAGIC {
        return None;
    }
    let stored_crc = u32::from_le_bytes(blob[4..8].try_into().ok()?);
    let body = blob.slice(8..);
    // The seeded chaos mutant: skipping this verification re-enables the
    // garbage-restore path the CRC frame exists to close.
    #[cfg(not(feature = "chaos-mutants"))]
    if crc32(&body) != stored_crc {
        return None;
    }
    #[cfg(feature = "chaos-mutants")]
    let _ = stored_crc;

    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    // Guard against absurd counts from corrupt headers.
    if count > body.len() {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let len = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
        if off + len > body.len() {
            return None;
        }
        out.push((id, body.slice(off..off + len)));
        off += len;
    }
    if off != body.len() {
        return None; // trailing garbage
    }
    Some(out)
}

/// Whether `blob` is a well-formed, checksum-intact checkpoint blob.
pub fn verify(blob: &Bytes) -> bool {
    unpack(blob).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_regions() {
        let regions = vec![
            (1u32, Bytes::from_static(b"alpha")),
            (7u32, Bytes::from_static(b"")),
            (3u32, Bytes::from_static(b"gamma-data")),
        ];
        let blob = pack(&regions);
        assert_eq!(unpack(&blob).unwrap(), regions);
        assert!(verify(&blob));
    }

    #[test]
    fn roundtrip_empty() {
        let blob = pack(&[]);
        assert_eq!(unpack(&blob).unwrap(), vec![]);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn truncated_blob_fails_cleanly() {
        let blob = pack(&[(1, Bytes::from_static(b"payload"))]);
        for cut in [0, 3, 5, 9, blob.len() - 1] {
            let truncated = blob.slice(0..cut);
            assert!(unpack(&truncated).is_none(), "cut at {cut} should fail");
            assert!(!verify(&truncated));
        }
    }

    #[test]
    fn trailing_garbage_fails() {
        let mut raw = pack(&[(1, Bytes::from_static(b"x"))]).to_vec();
        raw.push(0xFF);
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn bad_magic_fails() {
        let mut raw = pack(&[(1, Bytes::from_static(b"x"))]).to_vec();
        raw[0] = b'X';
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn payload_byte_flip_is_detected() {
        // A flip inside a region payload passes every structural check —
        // only the CRC catches it. This is the exact bug class the chaos
        // mutant re-introduces.
        let blob = pack(&[(1, Bytes::from_static(b"payload"))]);
        let mut raw = blob.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[cfg(not(feature = "chaos-mutants"))]
    #[test]
    fn corrupt_count_fails() {
        let mut raw = pack(&[]).to_vec();
        // Body starts at offset 8; blow up the region count.
        raw[8] = 0xFF;
        raw[9] = 0xFF;
        raw[10] = 0xFF;
        raw[11] = 0x7F;
        assert!(unpack(&Bytes::from(raw)).is_none());
    }
}
