//! Checkpoint blob format.
//!
//! One checkpoint = all protected regions of one rank, packed into a single
//! blob:
//!
//! ```text
//! [u32 region_count]
//! repeat region_count times:
//!   [u32 region_id][u64 payload_len][payload bytes]
//! ```
//!
//! Restores match regions by id, so a restart can tolerate registration in
//! a different order (Kokkos Resilience re-registers views after a context
//! reset).

use bytes::{BufMut, Bytes, BytesMut};

/// Pack `(id, payload)` pairs into one checkpoint blob.
pub fn pack(regions: &[(u32, Bytes)]) -> Bytes {
    let total: usize = 4 + regions.iter().map(|(_, b)| 12 + b.len()).sum::<usize>();
    let mut buf = BytesMut::with_capacity(total);
    buf.put_u32_le(regions.len() as u32);
    for (id, payload) in regions {
        buf.put_u32_le(*id);
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(payload);
    }
    buf.freeze()
}

/// Unpack a checkpoint blob into `(id, payload)` pairs.
///
/// Returns `None` on a malformed blob (truncation, bad counts) — a restart
/// from a corrupt checkpoint must fail cleanly, not panic.
pub fn unpack(blob: &Bytes) -> Option<Vec<(u32, Bytes)>> {
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = blob.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    // Guard against absurd counts from corrupt headers.
    if count > blob.len() {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let len = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
        if off + len > blob.len() {
            return None;
        }
        out.push((id, blob.slice(off..off + len)));
        off += len;
    }
    if off != blob.len() {
        return None; // trailing garbage
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_regions() {
        let regions = vec![
            (1u32, Bytes::from_static(b"alpha")),
            (7u32, Bytes::from_static(b"")),
            (3u32, Bytes::from_static(b"gamma-data")),
        ];
        let blob = pack(&regions);
        assert_eq!(unpack(&blob).unwrap(), regions);
    }

    #[test]
    fn roundtrip_empty() {
        let blob = pack(&[]);
        assert_eq!(unpack(&blob).unwrap(), vec![]);
    }

    #[test]
    fn truncated_blob_fails_cleanly() {
        let blob = pack(&[(1, Bytes::from_static(b"payload"))]);
        for cut in [0, 3, 5, blob.len() - 1] {
            let truncated = blob.slice(0..cut);
            assert!(unpack(&truncated).is_none(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_garbage_fails() {
        let mut raw = pack(&[(1, Bytes::from_static(b"x"))]).to_vec();
        raw.push(0xFF);
        assert!(unpack(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn corrupt_count_fails() {
        let mut raw = pack(&[]).to_vec();
        raw[0] = 0xFF;
        raw[1] = 0xFF;
        raw[2] = 0xFF;
        raw[3] = 0x7F;
        assert!(unpack(&Bytes::from(raw)).is_none());
    }
}
